"""The tiered multi-root store: placement-routed shards + hot tier.

:class:`TieredStore` is a drop-in :class:`~repro.store.cache.ConnStore`
whose ``objects/`` tree spans several roots.  Everything above the
object layer is untouched: manifests (and therefore content keys, the
service's store-state token, gen-key aliases, and the daemon tree) stay
at the primary root, so a flat store and a tiered store are
indistinguishable to ``StoreQuery``, ``run_study``, the checkpointer,
and the HTTP service — they only ever call ``put_object``/``get_object``
and the manifest API.

Reads are three-tiered:

1. **hot tier** — verified bytes in RAM (:class:`HotTier`), no I/O;
2. **assigned root** — the placement table's home for the digest's
   bucket (the destination root mid-move, so a flipping bucket never
   goes dark);
3. **every other root** — the fallback that makes rebalance crash-safe:
   whatever half-moved state a SIGKILL leaves behind, some root still
   holds the bytes and the scan finds them.

Every cold read re-verifies the content address before the bytes are
admitted to the hot tier, exactly like the flat store.

Use :func:`open_store` everywhere a store is constructed from a
directory: it returns a :class:`TieredStore` when ``tier.json`` exists
and a plain :class:`ConnStore` otherwise, so flat stores keep their
historical behavior byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from ...analysis.errors import ErrorKind
from ...chaos import fsio
from ..cache import ConnStore, DEFAULT_TMP_GRACE, _OBJECT_SUFFIX
from ..shard import ShardError
from .health import HealthTracker, UnderReplicatedQueue
from .hotcache import HotTier
from .placement import BUCKETS, DEFAULT_HOT_BYTES, TIER_MANIFEST, PlacementManifest

__all__ = [
    "TieredStore",
    "RebalanceReport",
    "ReplicaRepairReport",
    "open_store",
    "init_tier",
]


@dataclass(frozen=True)
class RebalanceReport:
    """What one :meth:`TieredStore.rebalance` pass did."""

    #: Buckets whose assignment flipped this pass (hex chars).
    moved: tuple[str, ...]
    #: Object files copied to their new root.
    copied: int
    bytes_copied: int
    #: Source/duplicate copies deleted after a verified flip.
    deleted: int
    #: Buckets still misplaced after this pass (bounded by max_buckets).
    pending: tuple[str, ...]


@dataclass
class ReplicaRepairReport:
    """What one ``repair --replicas`` pass restored."""

    #: Objects whose replica set was brought back to target.
    objects_restored: int = 0
    #: Individual object copies published (across all objects).
    copies_written: int = 0
    #: Manifests re-mirrored to their secondary roots.
    manifests_mirrored: int = 0
    #: Objects that could not reach target (every source or destination
    #: root failed) — they stay in the queue.
    failed: list[str] = field(default_factory=list)
    #: Queue entries remaining after the pass.
    remaining: int = 0

    @property
    def ok(self) -> bool:
        return not self.failed

    def render(self) -> str:
        lines = [
            f"replica repair: {self.objects_restored} object(s) restored "
            f"({self.copies_written} cop{'y' if self.copies_written == 1 else 'ies'} "
            f"written), {self.manifests_mirrored} manifest(s) re-mirrored"
        ]
        for digest in self.failed:
            lines.append(f"  FAILED {digest[:12]}… (left in the repair queue)")
        if self.remaining:
            lines.append(f"  {self.remaining} entr(ies) still queued")
        return "\n".join(lines)


class TieredStore(ConnStore):
    """A ConnStore whose objects are placed across multiple roots.

    With ``replicas: R`` in the placement manifest, every object is
    published to R distinct roots (the bucket's primary plus R-1
    secondaries in rendezvous order) and every manifest is mirrored to
    R-1 secondaries — so losing any single root loses no data, only
    redundancy.  A per-root circuit breaker (:class:`HealthTracker`)
    keeps a dead root from slowing every operation: open roots are
    skipped by reads, re-routed around by writes, and probed again
    after a cooldown.  Every copy a failure prevented is enqueued in
    ``under-replicated.json`` for ``store repair --replicas``.
    """

    def __init__(self, root: str | Path, clock=time.monotonic) -> None:
        super().__init__(root)
        placement = PlacementManifest.load(self.root)
        if placement is None:
            raise FileNotFoundError(
                f"{self.root / TIER_MANIFEST} not found — "
                "not a tiered store (use open_store / init_tier)"
            )
        self.placement = placement
        self._root_paths = placement.resolve_roots(self.root)
        self.hot = HotTier(placement.hot_bytes, placement.pinned)
        self.health = HealthTracker(
            len(self._root_paths),
            failure_threshold=placement.failure_threshold,
            cooldown_s=placement.cooldown_s,
            clock=clock,
        )
        self.repair_queue = UnderReplicatedQueue(self.root)

    # -- multi-root hooks (see ConnStore) ----------------------------------

    def roots(self) -> list[Path]:
        return list(self._root_paths)

    def object_dirs(self) -> list[Path]:
        return [path / "objects" for path in self._root_paths]

    def owning_root(self, path: Path) -> Path:
        """The declared root a file lives under (longest-prefix match,
        so a secondary root nested inside the primary still wins for
        its own files)."""
        best = self.root
        best_len = -1
        for candidate in self._root_paths:
            if not path.is_relative_to(candidate):
                continue
            score = len(candidate.parts)
            if score > best_len:
                best, best_len = candidate, score
        return best

    # -- object routing ----------------------------------------------------

    def _root_for(self, digest: str) -> Path:
        index = self.placement.active_index(PlacementManifest.bucket_of(digest))
        return self._root_paths[index]

    def _object_path_at(self, index: int, digest: str) -> Path:
        return (
            self._root_paths[index] / "objects" / digest[:2]
            / f"{digest}{_OBJECT_SUFFIX}"
        )

    def _object_path(self, digest: str) -> Path:
        return (
            self._root_for(digest) / "objects" / digest[:2]
            / f"{digest}{_OBJECT_SUFFIX}"
        )

    def _candidate_paths(self, digest: str) -> list[Path]:
        """Everywhere the digest could legally live: the replica set
        first (primary, then rendezvous secondaries), then every other
        root (mid-move duplicates, crash leftovers, re-routed writes)."""
        order = self.placement.replica_order(PlacementManifest.bucket_of(digest))
        return [self._object_path_at(index, digest) for index in order]

    def replica_paths(self, digest: str) -> list[tuple[int, Path]]:
        """The (root index, path) pairs that must each hold a copy."""
        bucket = PlacementManifest.bucket_of(digest)
        return [
            (index, self._object_path_at(index, digest))
            for index in self.placement.replica_indices(bucket)
        ]

    def _root_down(self, index: int) -> bool:
        """Is this root's *infrastructure* gone (vs. one file missing)?

        The probe routes through the fsio guard so the chaos plane's
        ``root_down``/``flaky_root`` rules fire on it exactly as a real
        unmounted disk would surface, then checks the directory itself.
        A root that has never been written is created on demand by the
        write path, so "directory missing" genuinely means lost.
        """
        root = self._root_paths[index]
        try:
            fsio.guard("probe", root)
        except OSError:
            return True
        return not root.is_dir()

    def put_object(self, data: bytes) -> str:
        """Publish shard bytes to the digest's full replica set.

        Walks the rendezvous order: the first ``replicas`` *usable*
        roots get a copy — a root whose breaker is open, or whose
        publish fails, is skipped (and counted against its health) and
        the write re-routes to the next surviving root, so one dead
        root never reduces the number of live copies.  Any deficit in
        the *strict* replica set is enqueued for repair.  Raises only
        when no root at all accepted the bytes.
        """
        digest = hashlib.sha256(data).hexdigest()
        placement = self.placement
        bucket = PlacementManifest.bucket_of(digest)
        order = placement.replica_order(bucket)
        want = placement.effective_replicas()
        strict = set(placement.replica_indices(bucket))
        copies = 0
        published = False
        last_error: OSError | None = None
        for index in order:
            if copies >= want:
                break
            path = self._object_path_at(index, digest)
            if path.exists():
                copies += 1
                continue
            if not self.health.available(index):
                last_error = last_error or OSError(
                    f"root {index} circuit breaker open"
                )
                continue
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fsio.publish_bytes(path, data, tmp_prefix=f".{digest[:12]}-")
            except OSError as exc:
                self.health.record_failure(index)
                last_error = exc
                continue
            self.health.record_ok(index)
            copies += 1
            published = True
        if copies == 0:
            raise last_error if last_error is not None else OSError(
                f"no root accepted object {digest[:12]}…"
            )
        if copies < want or any(
            not self._object_path_at(index, digest).exists() for index in strict
        ):
            self.repair_queue.add_object(digest)
        if published:
            # A (re)published shard must never be shadowed by an older
            # cache entry — repair rewrites ride through here too.
            self.hot.invalidate(digest)
        return digest

    def get_object(self, digest: str) -> bytes:
        data = self.hot.get(digest)
        if data is not None:
            return data
        corrupt: ShardError | None = None
        order = self.placement.replica_order(PlacementManifest.bucket_of(digest))
        for index in order:
            if not self.health.available(index):
                continue  # open breaker: the replica fallback serves us
            path = self._object_path_at(index, digest)
            try:
                data = fsio.read_bytes(path)
            except FileNotFoundError:
                # Ambiguous: a missing *object* on a healthy root is a
                # replica miss (read-repair's job); a missing *root* is
                # an infrastructure failure the breaker must see.
                if self._root_down(index):
                    self.health.record_failure(index)
                continue
            except OSError:
                self.health.record_failure(index)
                continue
            actual = hashlib.sha256(data).hexdigest()
            if actual != digest:
                # A rotted copy at one root must not mask a healthy one
                # at another; remember the defect, keep scanning.  The
                # root's I/O is fine — the breaker stays out of it.
                corrupt = ShardError(
                    ErrorKind.DECODE_ERROR, str(path), None,
                    f"content address mismatch: named {digest[:12]}…, "
                    f"bytes hash to {actual[:12]}…",
                )
                continue
            self.health.record_ok(index)
            self.hot.put(digest, data)
            self._read_repair(digest, data)
            return data
        if corrupt is not None:
            raise corrupt
        raise ShardError(
            ErrorKind.TRUNCATED_BODY, str(self._object_path(digest)), None,
            f"shard object missing from all {len(self._root_paths)} root(s)",
        )

    def _read_repair(self, digest: str, data: bytes) -> None:
        """Re-publish a digest-verified copy to any replica root that
        lost (or never got) its own — the read that discovered the
        damage is the cheapest moment to mend it.  Failures degrade to
        a repair-queue entry; the read itself already succeeded.
        """
        if self.placement.effective_replicas() <= 1:
            return
        for index, path in self.replica_paths(digest):
            if path.exists():
                continue
            if not self.health.available(index):
                self.repair_queue.add_object(digest)
                continue
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fsio.publish_bytes(path, data, tmp_prefix=f".{digest[:12]}-")
                self.health.record_ok(index)
            except OSError:
                self.health.record_failure(index)
                self.repair_queue.add_object(digest)

    # -- manifest mirroring ------------------------------------------------

    def manifest_dirs(self) -> list[Path]:
        if self.placement.effective_replicas() <= 1:
            return [self.manifests_dir]
        return [self.manifests_dir] + [
            root / "manifests" for root in self._root_paths[1:]
        ]

    def mirror_paths(self, key: str) -> list[tuple[int, Path]]:
        """Where one manifest's mirrors belong (rendezvous by key)."""
        return [
            (index, self._root_paths[index] / "manifests" / f"{key}.json")
            for index in self.placement.mirror_indices(key)
        ]

    def _write_manifest(self, key: str, payload: dict) -> None:
        """Publish at the primary, then mirror to R-1 secondaries.

        The primary write keeps its historical semantics — it alone
        feeds the manifest listing, so the service's store-state token
        (and therefore every ETag) never sees the mirrors.  Mirror
        failures degrade to a repair-queue entry: the manifest is live
        the moment the primary copy lands.
        """
        super()._write_manifest(key, payload)
        text = json.dumps(payload, sort_keys=True, indent=1) + "\n"
        for index, path in self.mirror_paths(key):
            if not self.health.available(index):
                self.repair_queue.add_manifest(key)
                continue
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fsio.publish_text(path, text, tmp_prefix=f".{key[:12]}-")
                self.health.record_ok(index)
            except OSError:
                self.health.record_failure(index)
                self.repair_queue.add_manifest(key)

    def _delete_manifest(self, key: str) -> None:
        super()._delete_manifest(key)
        for _, path in self.mirror_paths(key):
            path.unlink(missing_ok=True)

    def lookup(self, key: str) -> dict | None:
        """Primary manifest first; fall back to a mirror only when the
        primary root cannot produce it — a mirror is a disaster copy,
        not a second source of truth."""
        found = super().lookup(key)
        if found is not None or self.placement.effective_replicas() <= 1:
            return found
        for _, path in self.mirror_paths(key):
            try:
                payload = json.loads(fsio.read_bytes(path).decode("utf-8"))
            except (OSError, ValueError):
                continue
            ref = payload.get("ref")
            if ref is not None:
                return self.lookup(ref)
            return payload
        return None

    def referenced_objects(self) -> set[str]:
        """The flat walk plus every digest a *mirror* manifest names —
        a crash window where the primary copy is gone but the mirror
        survives must not let gc eat the objects repair still needs."""
        referenced = super().referenced_objects()
        if self.placement.effective_replicas() <= 1:
            return referenced
        primary_keys = (
            {path.stem for path in self.manifests_dir.glob("*.json")}
            if self.manifests_dir.is_dir()
            else set()
        )
        for directory in self.manifest_dirs()[1:]:
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*.json")):
                if path.stem in primary_keys:
                    continue  # the primary copy was already folded in
                try:
                    payload = json.loads(fsio.read_bytes(path).decode("utf-8"))
                except (OSError, ValueError):
                    continue
                if "ref" in payload:
                    continue
                if payload.get("kind") == "checkpoint":
                    referenced.add(payload["state"])
                    referenced.update(payload.get("batches", ()))
                elif "dataset_shard" in payload:
                    referenced.add(payload["dataset_shard"])
                    referenced.update(
                        entry["shard"] for entry in payload.get("traces", ())
                    )
        return referenced

    def gc(self, dry_run: bool = False, tmp_grace_s: float = DEFAULT_TMP_GRACE):
        """The flat gc, plus a sweep of orphaned mirror manifests —
        mirrors whose primary was retired (or quarantined) are dead
        weight that would otherwise pin their objects forever."""
        report = super().gc(dry_run=dry_run, tmp_grace_s=tmp_grace_s)
        if self.placement.effective_replicas() <= 1:
            return report
        primary_keys = (
            {path.stem for path in self.manifests_dir.glob("*.json")}
            if self.manifests_dir.is_dir()
            else set()
        )
        orphans = 0
        for directory in self.manifest_dirs()[1:]:
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*.json")):
                if path.stem in primary_keys:
                    continue
                # Only checkpoint mirrors are swept: checkpoints are the
                # one manifest kind that is legitimately *retired*, so a
                # missing primary means "done", not "lost".  Any other
                # orphan mirror is a disaster copy — `repair --replicas`
                # restores the primary from it; gc must not eat it.
                try:
                    payload = json.loads(fsio.read_bytes(path).decode("utf-8"))
                    retired = payload.get("kind") == "checkpoint"
                except (OSError, ValueError):
                    retired = True  # a torn mirror restores nothing
                if not retired:
                    continue
                orphans += 1
                if not dry_run:
                    path.unlink(missing_ok=True)
        return replace(report, orphan_mirrors=orphans)

    # -- rebalance ---------------------------------------------------------

    def add_root(self, spec: str) -> None:
        """Declare a new root (no data moves until :meth:`rebalance`)."""
        if spec in self.placement.roots:
            raise ValueError(f"root {spec!r} already declared")
        self.placement.roots.append(spec)
        self.placement.save(self.root)
        self._root_paths = self.placement.resolve_roots(self.root)

    def _bucket_files(self, bucket: str) -> list[tuple[int, Path]]:
        """(root index, path) of every object file in one bucket."""
        found: list[tuple[int, Path]] = []
        for index, root in enumerate(self._root_paths):
            objects = root / "objects"
            if not objects.is_dir():
                continue
            for prefix_dir in sorted(objects.iterdir()):
                if not prefix_dir.is_dir() or not prefix_dir.name.startswith(bucket):
                    continue
                for path in sorted(prefix_dir.glob(f"*{_OBJECT_SUFFIX}")):
                    found.append((index, path))
        return found

    def rebalance(self, max_buckets: int | None = None) -> RebalanceReport:
        """Move buckets toward the leveled placement, incrementally.

        Per bucket: record the move cursor, copy every object to the
        destination root (crash-consistent publishes; already-present
        copies are skipped, corrupt sources are left for scrub), flip
        the assignment in one atomic manifest write, then delete the
        now-duplicate source copies.  Readers are never blocked: until
        the flip they find objects at the old home, after it at the
        new one, and the any-root fallback covers every interleaving a
        crash can produce.  ``max_buckets`` bounds one pass so the
        rebalance can run as a background increment.
        """
        placement = self.placement
        target = placement.balanced_assign()
        todo = [
            bucket for bucket in BUCKETS
            if bucket in placement.moving or placement.assign[bucket] != target[bucket]
        ]
        limit = len(todo) if max_buckets is None else max(0, max_buckets)
        moved: list[str] = []
        copied = deleted = bytes_copied = 0
        for bucket in todo[:limit]:
            dest = placement.moving.get(bucket, target[bucket])
            if dest != placement.assign[bucket]:
                if placement.moving.get(bucket) != dest:
                    placement.moving[bucket] = dest
                    placement.save(self.root)
                # Populate the *entire* post-flip replica set, not just
                # the new primary — a move must never shrink redundancy.
                want = placement.replica_indices(bucket, primary=dest)
                for index, path in self._bucket_files(bucket):
                    data: bytes | None = None
                    for dest_index in want:
                        if dest_index == index:
                            continue
                        target_path = (
                            self._root_paths[dest_index] / "objects"
                            / path.parent.name / path.name
                        )
                        if target_path.exists():
                            continue
                        if data is None:
                            data = fsio.read_bytes(path)
                            if hashlib.sha256(data).hexdigest() != path.stem:
                                data = b""  # rotted source: scrub's problem
                        if not data:
                            continue
                        target_path.parent.mkdir(parents=True, exist_ok=True)
                        fsio.publish_bytes(
                            target_path, data, tmp_prefix=f".{path.stem[:12]}-"
                        )
                        copied += 1
                        bytes_copied += len(data)
                placement.assign[bucket] = dest
            placement.moving.pop(bucket, None)
            placement.save(self.root)  # the atomic flip
            moved.append(bucket)
            # Reap copies outside the replica set — and any crash-
            # orphaned duplicates — only after the flip is durable and
            # every replica-set copy of the file exists.
            keep = set(placement.replica_indices(bucket))
            for index, path in self._bucket_files(bucket):
                if index in keep:
                    continue
                replicated = all(
                    (
                        self._root_paths[keep_index] / "objects"
                        / path.parent.name / path.name
                    ).exists()
                    for keep_index in keep
                )
                if replicated:
                    path.unlink(missing_ok=True)
                    deleted += 1
        pending = tuple(placement.misplaced())
        return RebalanceReport(
            moved=tuple(moved),
            copied=copied,
            bytes_copied=bytes_copied,
            deleted=deleted,
            pending=pending,
        )

    # -- accounting --------------------------------------------------------

    def tier_status(self) -> dict:
        """Everything ``store tier status`` and ``/health`` report.

        A missing or unreadable root is *reported*, never raised: status
        is the tool an operator reaches for when a disk just died, so it
        must work hardest exactly when a root is gone.  Such a root
        shows ``"status": "down"`` with zeroed counts.
        """
        health = self.health.status()
        roots = []
        for index, root in enumerate(self._root_paths):
            entry = {
                "index": index,
                "path": str(root),
                "spec": self.placement.roots[index],
                "buckets": sum(
                    1 for b in BUCKETS if self.placement.assign[b] == index
                ),
                "objects": 0,
                "bytes": 0,
                "status": "ok",
                "health": health[index],
            }
            try:
                objects = root / "objects"
                if self._root_down(index):
                    entry["status"] = "down"
                elif objects.is_dir():
                    files = list(objects.glob(f"*/*{_OBJECT_SUFFIX}"))
                    entry["objects"] = len(files)
                    entry["bytes"] = sum(
                        path.stat().st_size for path in files
                    )
            except OSError:
                entry["status"] = "down"
                entry["objects"] = 0
                entry["bytes"] = 0
            roots.append(entry)
        queued_objects, queued_manifests = self.repair_queue.snapshot()
        return {
            "roots": roots,
            "assign": {b: self.placement.assign[b] for b in BUCKETS},
            "moving": dict(self.placement.moving),
            "misplaced": list(self.placement.misplaced()),
            "hot": self.hot.stats(),
            "replicas": self.placement.replicas,
            "effective_replicas": self.placement.effective_replicas(),
            "under_replicated": {
                "objects": len(queued_objects),
                "manifests": len(queued_manifests),
            },
        }

    def stats(self) -> dict:
        payload = super().stats()
        payload["tier"] = self.tier_status()
        return payload

    # -- replica repair ----------------------------------------------------

    def repair_replicas(self, sweep: bool = True) -> ReplicaRepairReport:
        """Drain the repair queue back to full redundancy.

        With ``sweep`` (the default) every object and manifest in the
        store is checked too — the queue is a hint, not a ledger, and a
        deficit created while no process was alive to notice (an
        operator's ``rm -rf``, a store initialized at R=1 and raised to
        R=2) is only visible to a sweep.  Copies are made strictly from
        digest-verified bytes, so repair can never change a content
        address — it only raises the number of roots holding it.
        """
        report = ReplicaRepairReport()
        placement = self.placement
        want = placement.effective_replicas()
        queued_objects, queued_manifests = self.repair_queue.snapshot()
        digests = set(queued_objects)
        keys = set(queued_manifests)
        if sweep:
            for directory in self.object_dirs():
                if not directory.is_dir():
                    continue
                for path in directory.glob(f"*/*{_OBJECT_SUFFIX}"):
                    digests.add(path.stem)
            for directory in self.manifest_dirs():
                if not directory.is_dir():
                    continue
                for path in directory.glob("*.json"):
                    keys.add(path.stem)
        repaired: set[str] = set()
        for digest in sorted(digests):
            data: bytes | None = None
            for path in self._candidate_paths(digest):
                try:
                    blob = fsio.read_bytes(path)
                except OSError:
                    continue
                if hashlib.sha256(blob).hexdigest() == digest:
                    data = blob
                    break
            if data is None:
                report.failed.append(digest)
                continue
            wrote = 0
            short = False
            for index, path in self.replica_paths(digest):
                if path.exists():
                    continue
                try:
                    path.parent.mkdir(parents=True, exist_ok=True)
                    fsio.publish_bytes(
                        path, data, tmp_prefix=f".{digest[:12]}-"
                    )
                    self.health.record_ok(index)
                    wrote += 1
                except OSError:
                    self.health.record_failure(index)
                    short = True
            if short:
                report.failed.append(digest)
                continue
            if wrote:
                report.objects_restored += 1
                report.copies_written += wrote
                self.hot.invalidate(digest)
            repaired.add(digest)
        repaired_manifests: set[str] = set()
        for key in sorted(keys):
            if self._repair_manifest(key, want, report):
                repaired_manifests.add(key)
        self.repair_queue.discard(
            objects=repaired & set(queued_objects),
            manifests=repaired_manifests & set(queued_manifests),
        )
        report.remaining = len(self.repair_queue)
        return report

    def _repair_manifest(
        self, key: str, want: int, report: ReplicaRepairReport
    ) -> bool:
        """Bring one manifest back to primary + R-1 identical mirrors."""
        primary = self._manifest_path(key)
        try:
            text = fsio.read_bytes(primary).decode("utf-8")
        except OSError:
            text = None
        if text is None:
            # The primary is gone: restore it from a mirror.  Checkpoint
            # mirrors are skipped — a checkpoint whose primary vanished
            # was *retired* by the checkpointer, and repair must not
            # resurrect it (same rule gc's orphan sweep applies).
            for _, path in self.mirror_paths(key):
                try:
                    blob = fsio.read_bytes(path).decode("utf-8")
                    payload = json.loads(blob)
                except (OSError, ValueError):
                    continue
                if payload.get("kind") == "checkpoint":
                    return True  # retired, nothing to restore
                text = blob
                break
            if text is None:
                report.failed.append(f"manifest:{key}")
                return False
            try:
                fsio.publish_text(primary, text, tmp_prefix=f".{key[:12]}-")
                report.manifests_mirrored += 1
            except OSError:
                report.failed.append(f"manifest:{key}")
                return False
        if want <= 1:
            return True
        short = False
        for index, path in self.mirror_paths(key):
            try:
                current = fsio.read_bytes(path).decode("utf-8")
            except OSError:
                current = None
            if current == text:
                continue
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fsio.publish_text(path, text, tmp_prefix=f".{key[:12]}-")
                self.health.record_ok(index)
                report.manifests_mirrored += 1
            except OSError:
                self.health.record_failure(index)
                short = True
        if short:
            report.failed.append(f"manifest:{key}")
        return not short


def init_tier(
    root: str | Path,
    roots: tuple[str, ...] = (),
    hot_bytes: int = DEFAULT_HOT_BYTES,
    pinned: tuple[str, ...] = (),
    replicas: int = 1,
) -> TieredStore:
    """Turn a store directory into a tiered store (idempotent layout).

    Existing objects stay where they are — every bucket starts assigned
    to the primary, so a freshly initialized tier answers identically
    to the flat store it replaced; ``rebalance`` then levels buckets
    across ``roots`` (extra roots beyond the implicit primary ``"."``).
    With ``replicas`` > 1, existing objects are *under-replicated* until
    ``repair --replicas`` (or the first cold read of each) copies them
    out; new writes land on the full replica set immediately.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    root = Path(root)
    if (root / TIER_MANIFEST).exists():
        raise FileExistsError(f"{root / TIER_MANIFEST} already exists")
    placement = PlacementManifest(
        roots=["."] + [spec for spec in roots if spec != "."],
        hot_bytes=hot_bytes,
        pinned=tuple(pinned),
        replicas=replicas,
    )
    root.mkdir(parents=True, exist_ok=True)
    placement.save(root)
    return TieredStore(root)


def open_store(root: str | Path) -> ConnStore:
    """The one constructor every layer uses: tiered iff tier.json exists."""
    root = Path(root)
    if (root / TIER_MANIFEST).exists():
        return TieredStore(root)
    return ConnStore(root)
