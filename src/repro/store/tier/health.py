"""Root health: per-root circuit breakers and the repair queue.

A tiered store's roots are independent failure domains — a dying disk
returns EIO for every read, an unmounted one ENOENT for everything.
Retrying a dead root on every object would turn one hardware fault into
a latency fault for every query, so each root gets a classic circuit
breaker:

* **closed** — healthy.  Every I/O result feeds the breaker: a success
  resets the failure streak, ``failure_threshold`` *consecutive*
  failures open it.
* **open** — reads skip the root entirely (the replica fallback serves
  them), writes re-route to surviving roots and enqueue the object for
  repair.  Nothing touches the root until ``cooldown_s`` elapses.
* **half-open** — after the cooldown, the next operation is let through
  as a probe.  Success closes the breaker; failure re-opens it for
  another cooldown.

Only *infrastructure* failures count: a missing object file on a
healthy root is a routine replica miss (read-repair's job), never a
breaker event.  Callers decide which is which — see
``TieredStore._root_down``.

:class:`UnderReplicatedQueue` is the durable half: every object or
manifest that could not reach its full replica set is recorded in
``under-replicated.json`` at the primary root (published through the
crash-consistent fsio seam), and ``store repair --replicas`` drains it
back to full redundancy.  The queue is a *hint*, not a ledger — repair
also sweeps the store, so a lost queue entry costs one sweep, never an
object.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from ...chaos import fsio
from .placement import DEFAULT_COOLDOWN_S, DEFAULT_FAILURE_THRESHOLD

__all__ = ["RootHealth", "HealthTracker", "UnderReplicatedQueue", "QUEUE_FILE"]

#: Filename of the repair queue at the primary root.
QUEUE_FILE = "under-replicated.json"


class RootHealth:
    """Breaker state for one root (guarded by the tracker's lock)."""

    __slots__ = ("streak", "state", "opened_at", "failures", "successes")

    def __init__(self) -> None:
        self.streak = 0
        self.state = "closed"  # closed | open | half_open
        self.opened_at = 0.0
        self.failures = 0
        self.successes = 0

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "streak": self.streak,
            "failures": self.failures,
            "successes": self.successes,
        }


class HealthTracker:
    """Per-root circuit breakers for one store's root list.

    Thread-safe (the store sits under the multi-threaded HTTP service);
    in-process only by design — a fresh process starts with every
    breaker closed and re-learns a dead root within
    ``failure_threshold`` operations, which is cheaper than trusting a
    stale verdict about hardware that may have been replaced.
    """

    def __init__(
        self,
        count: int,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        cooldown_s: float = DEFAULT_COOLDOWN_S,
        clock=time.monotonic,
    ) -> None:
        self.failure_threshold = max(1, int(failure_threshold))
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._roots = [RootHealth() for _ in range(count)]

    def available(self, index: int) -> bool:
        """May this root be touched right now?

        Open breakers answer False until the cooldown elapses; the
        first call after it transitions to half-open and answers True —
        that caller is the probe whose outcome decides the breaker.
        """
        with self._lock:
            root = self._roots[index]
            if root.state == "closed":
                return True
            if root.state == "open":
                if self._clock() - root.opened_at >= self.cooldown_s:
                    root.state = "half_open"
                    return True
                return False
            # half_open: one probe is already in flight; hold the rest
            # back so a thundering herd cannot re-hammer a sick disk.
            return False

    def record_ok(self, index: int) -> None:
        with self._lock:
            root = self._roots[index]
            root.successes += 1
            root.streak = 0
            if root.state != "closed":
                root.state = "closed"

    def record_failure(self, index: int) -> None:
        with self._lock:
            root = self._roots[index]
            root.failures += 1
            root.streak += 1
            if root.state == "half_open" or root.streak >= self.failure_threshold:
                root.state = "open"
                root.opened_at = self._clock()

    def is_open(self, index: int) -> bool:
        with self._lock:
            return self._roots[index].state == "open"

    def status(self) -> list[dict]:
        with self._lock:
            return [root.snapshot() for root in self._roots]


class UnderReplicatedQueue:
    """The durable repair queue at ``<primary>/under-replicated.json``.

    Holds the content addresses of objects — and the keys of manifests —
    known to be short of their replica target.  Adds are idempotent and
    persisted immediately (an entry that only lived in RAM would vanish
    with the process that noticed the deficit).
    """

    def __init__(self, primary: Path) -> None:
        self.path = Path(primary) / QUEUE_FILE
        self._lock = threading.Lock()

    def _load(self) -> dict:
        try:
            payload = json.loads(fsio.read_bytes(self.path).decode("utf-8"))
        except (OSError, ValueError):
            return {"schema": 1, "objects": [], "manifests": []}
        payload.setdefault("objects", [])
        payload.setdefault("manifests", [])
        return payload

    def _save(self, payload: dict) -> None:
        payload["objects"] = sorted(set(payload["objects"]))
        payload["manifests"] = sorted(set(payload["manifests"]))
        text = json.dumps(payload, sort_keys=True, indent=1) + "\n"
        try:
            fsio.publish_text(self.path, text, tmp_prefix=".urq-")
        except OSError:
            pass  # the primary itself is sick; repair's sweep still covers us

    def add_object(self, digest: str) -> None:
        with self._lock:
            payload = self._load()
            if digest not in payload["objects"]:
                payload["objects"].append(digest)
                self._save(payload)

    def add_manifest(self, key: str) -> None:
        with self._lock:
            payload = self._load()
            if key not in payload["manifests"]:
                payload["manifests"].append(key)
                self._save(payload)

    def snapshot(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """(object digests, manifest keys) currently enqueued."""
        with self._lock:
            payload = self._load()
            return tuple(payload["objects"]), tuple(payload["manifests"])

    def __len__(self) -> int:
        objects, manifests = self.snapshot()
        return len(objects) + len(manifests)

    def discard(self, objects: set[str] = frozenset(), manifests: set[str] = frozenset()) -> None:
        """Drop repaired entries (called by ``repair --replicas``)."""
        if not objects and not manifests:
            return
        with self._lock:
            payload = self._load()
            payload["objects"] = [d for d in payload["objects"] if d not in objects]
            payload["manifests"] = [
                k for k in payload["manifests"] if k not in manifests
            ]
            self._save(payload)
