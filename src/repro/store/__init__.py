"""The connection-record store: shards, caching, and querying.

Sits between generation and analysis: :func:`repro.core.study.analyze_dataset`
shards every finished analysis into the store, content-addressed by the
trace files' digests, and later runs rebuild their tables from the
shards without touching a single pcap record.

* :mod:`repro.store.codec` — deterministic pickle-free value encoding.
* :mod:`repro.store.shard` — the columnar, CRC-checked shard format.
* :mod:`repro.store.cache` — the content-addressed object store.
* :mod:`repro.store.query` — filtered scans and table aggregations.
* :mod:`repro.store.scrub` — offline integrity walks, quarantine, repair.
* :mod:`repro.store.tier` — multi-root placement, hot tier, compaction,
  incremental scrub.
"""

from .cache import DEFAULT_TMP_GRACE, CachedDataset, ConnStore, GcReport
from .query import ConnFilter, StoreQuery
from .schema import SCHEMA_VERSION
from .scrub import RepairOutcome, ScrubFinding, ScrubReport, StoreScrubber
from .shard import ShardError
from .tier import (
    CompactionReport,
    HotTier,
    IncrementalScrubber,
    PlacementManifest,
    RebalanceReport,
    TieredStore,
    compact_checkpoints,
    init_tier,
    open_store,
)

__all__ = [
    "ConnStore",
    "CachedDataset",
    "GcReport",
    "DEFAULT_TMP_GRACE",
    "ConnFilter",
    "StoreQuery",
    "ShardError",
    "StoreScrubber",
    "ScrubReport",
    "ScrubFinding",
    "RepairOutcome",
    "SCHEMA_VERSION",
    "TieredStore",
    "PlacementManifest",
    "HotTier",
    "RebalanceReport",
    "CompactionReport",
    "IncrementalScrubber",
    "compact_checkpoints",
    "init_tier",
    "open_store",
]
