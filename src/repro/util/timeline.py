"""Time-binned byte counting for utilization analysis (Figure 9).

The paper computes per-trace utilization over 1 s, 10 s, and 60 s windows.
:class:`ByteTimeline` accumulates (timestamp, bytes) points into fixed-width
bins and derives peak/percentile utilization in Mbps.
"""

from __future__ import annotations

import math
from typing import Iterable

from .stats import Cdf, Summary, summarize

__all__ = ["ByteTimeline"]


class ByteTimeline:
    """Accumulates wire bytes into fixed-width time bins.

    Parameters
    ----------
    start, end:
        The trace's time span in seconds.  Bins outside the span are
        rejected, which catches timestamp bugs early.
    bin_seconds:
        Width of each bin.
    """

    def __init__(self, start: float, end: float, bin_seconds: float = 1.0) -> None:
        if end <= start:
            raise ValueError(f"empty time span: [{start}, {end}]")
        if bin_seconds <= 0:
            raise ValueError("bin width must be positive")
        self.start = start
        self.end = end
        self.bin_seconds = bin_seconds
        self._bins = [0] * (math.ceil((end - start) / bin_seconds) or 1)

    @property
    def num_bins(self) -> int:
        """Number of bins spanning the trace."""
        return len(self._bins)

    def add(self, timestamp: float, nbytes: int) -> None:
        """Record ``nbytes`` of wire traffic at ``timestamp``."""
        if not self.start <= timestamp <= self.end:
            raise ValueError(
                f"timestamp {timestamp} outside [{self.start}, {self.end}]"
            )
        index = min(
            int((timestamp - self.start) / self.bin_seconds), len(self._bins) - 1
        )
        self._bins[index] += nbytes

    def add_many(self, points: Iterable[tuple[float, int]]) -> None:
        """Record an iterable of (timestamp, bytes) points."""
        for timestamp, nbytes in points:
            self.add(timestamp, nbytes)

    def bins(self) -> list[int]:
        """Byte counts per bin (a copy)."""
        return list(self._bins)

    def mbps(self) -> list[float]:
        """Per-bin throughput in megabits per second."""
        scale = 8.0 / (self.bin_seconds * 1e6)
        return [count * scale for count in self._bins]

    def peak_mbps(self, window_seconds: float) -> float:
        """Peak throughput over any aligned window of ``window_seconds``.

        Matches the paper's "peak utilization over 1/10/60 second
        intervals": bins are grouped into consecutive windows and the
        busiest window's average rate is returned.
        """
        if window_seconds < self.bin_seconds:
            raise ValueError("window must be at least one bin wide")
        per_window = max(int(round(window_seconds / self.bin_seconds)), 1)
        best = 0
        for i in range(0, len(self._bins), per_window):
            best = max(best, sum(self._bins[i : i + per_window]))
        return best * 8.0 / (per_window * self.bin_seconds * 1e6)

    def utilization_cdf(self) -> Cdf:
        """CDF of per-bin Mbps (the 1-second curves in Figure 9(b))."""
        return Cdf(self.mbps())

    def utilization_summary(self) -> Summary:
        """Min/quartiles/max/mean of per-bin Mbps."""
        return summarize(self.mbps())
