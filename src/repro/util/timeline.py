"""Time-binned byte counting for utilization analysis (Figure 9).

The paper computes per-trace utilization over 1 s, 10 s, and 60 s windows.
:class:`ByteTimeline` accumulates (timestamp, bytes) points into fixed-width
bins and derives peak/percentile utilization in Mbps.
"""

from __future__ import annotations

import math
from typing import Iterable

from .stats import Cdf, Summary, summarize

__all__ = ["ByteTimeline", "StreamingTimeline"]


class ByteTimeline:
    """Accumulates wire bytes into fixed-width time bins.

    Parameters
    ----------
    start, end:
        The trace's time span in seconds.  Bins outside the span are
        rejected, which catches timestamp bugs early.
    bin_seconds:
        Width of each bin.
    """

    def __init__(self, start: float, end: float, bin_seconds: float = 1.0) -> None:
        if end <= start:
            raise ValueError(f"empty time span: [{start}, {end}]")
        if bin_seconds <= 0:
            raise ValueError("bin width must be positive")
        self.start = start
        self.end = end
        self.bin_seconds = bin_seconds
        self._bins = [0] * (math.ceil((end - start) / bin_seconds) or 1)

    @property
    def num_bins(self) -> int:
        """Number of bins spanning the trace."""
        return len(self._bins)

    def add(self, timestamp: float, nbytes: int) -> None:
        """Record ``nbytes`` of wire traffic at ``timestamp``."""
        if not self.start <= timestamp <= self.end:
            raise ValueError(
                f"timestamp {timestamp} outside [{self.start}, {self.end}]"
            )
        index = min(
            int((timestamp - self.start) / self.bin_seconds), len(self._bins) - 1
        )
        self._bins[index] += nbytes

    def add_many(self, points: Iterable[tuple[float, int]]) -> None:
        """Record an iterable of (timestamp, bytes) points."""
        for timestamp, nbytes in points:
            self.add(timestamp, nbytes)

    def bins(self) -> list[int]:
        """Byte counts per bin (a copy)."""
        return list(self._bins)

    def mbps(self) -> list[float]:
        """Per-bin throughput in megabits per second."""
        scale = 8.0 / (self.bin_seconds * 1e6)
        return [count * scale for count in self._bins]

    def peak_mbps(self, window_seconds: float) -> float:
        """Peak throughput over any aligned window of ``window_seconds``.

        Matches the paper's "peak utilization over 1/10/60 second
        intervals": bins are grouped into consecutive windows and the
        busiest window's average rate is returned.
        """
        if window_seconds < self.bin_seconds:
            raise ValueError("window must be at least one bin wide")
        per_window = max(int(round(window_seconds / self.bin_seconds)), 1)
        best = 0
        for i in range(0, len(self._bins), per_window):
            best = max(best, sum(self._bins[i : i + per_window]))
        return best * 8.0 / (per_window * self.bin_seconds * 1e6)

    def utilization_cdf(self) -> Cdf:
        """CDF of per-bin Mbps (the 1-second curves in Figure 9(b))."""
        return Cdf(self.mbps())

    def utilization_summary(self) -> Summary:
        """Min/quartiles/max/mean of per-bin Mbps."""
        return summarize(self.mbps())


class StreamingTimeline:
    """Single-pass byte binning with memory bounded by trace duration.

    :class:`ByteTimeline` needs the trace's full time span up front, so
    the batch engine buffers every (timestamp, bytes) point — O(packets)
    memory.  This accumulator instead anchors its 1-second bins at the
    *first* packet's timestamp and keeps a sparse ``{bin index: bytes}``
    dict, O(duration) memory, then :meth:`freeze`\\ s into a regular
    :class:`ByteTimeline` once the span is known.

    For time-sorted traces (everything the generator writes) the frozen
    bins are byte-identical to the batch path's.  A timestamp running
    *behind* the anchor (possible only on corrupted or re-ordered input)
    is clamped into the first bin, whereas the batch path re-anchors the
    whole span — the one documented divergence, and one that only occurs
    on input the tolerant policies already flag via the
    ``timestamp_regressions`` counter.
    """

    __slots__ = ("bin_seconds", "_anchor", "_bins")

    def __init__(self, bin_seconds: float = 1.0) -> None:
        if bin_seconds <= 0:
            raise ValueError("bin width must be positive")
        self.bin_seconds = bin_seconds
        self._anchor: float | None = None
        self._bins: dict[int, int] = {}

    def add(self, timestamp: float, nbytes: int) -> None:
        """Record ``nbytes`` of wire traffic at ``timestamp``."""
        if self._anchor is None:
            self._anchor = timestamp
        index = max(int((timestamp - self._anchor) / self.bin_seconds), 0)
        self._bins[index] = self._bins.get(index, 0) + nbytes

    def freeze(self, start: float, end: float) -> ByteTimeline:
        """Materialize a :class:`ByteTimeline` over ``[start, end]``.

        Matches the batch path's clamp: bytes binned past the end of the
        span fold into the final bin.
        """
        timeline = ByteTimeline(start, end, self.bin_seconds)
        bins = timeline._bins
        last = len(bins) - 1
        for index, nbytes in self._bins.items():
            bins[min(index, last)] += nbytes
        return timeline

    def snapshot(self) -> dict:
        """Plain-data state for checkpointing."""
        return {
            "bin_seconds": self.bin_seconds,
            "anchor": self._anchor,
            "bins": dict(self._bins),
        }

    @classmethod
    def restore(cls, state: dict) -> "StreamingTimeline":
        """Rebuild an accumulator from :meth:`snapshot` output."""
        timeline = cls(state["bin_seconds"])
        timeline._anchor = state["anchor"]
        timeline._bins = {int(k): v for k, v in state["bins"].items()}
        return timeline
