"""Random-variate samplers for the workload models.

Traffic quantities in the paper (flow sizes, durations, fan-out, requests
per host-pair) are heavy-tailed; the generator models them as lognormal or
bounded-Pareto variates, with Zipf for popularity and discrete mixtures for
modal distributions such as NFS message sizes (Figure 8).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "Distribution",
    "Constant",
    "Uniform",
    "LogNormal",
    "BoundedPareto",
    "Exponential",
    "Choice",
    "Mixture",
    "zipf_weights",
    "weighted_choice",
]


class Distribution:
    """Base class for one-dimensional samplers."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def sample_int(self, rng: random.Random, minimum: int = 0) -> int:
        """Sample and round to an int, clamped below at ``minimum``."""
        return max(minimum, int(round(self.sample(rng))))


@dataclass(frozen=True)
class Constant(Distribution):
    """Degenerate distribution: always ``value``."""

    value: float

    def sample(self, rng: random.Random) -> float:
        return self.value


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform over [low, high]."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"low {self.low} > high {self.high}")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Lognormal parameterized by the median and sigma of log(X).

    ``median`` is more natural than mu for matching the medians the paper
    reports (e.g. SMTP duration medians of 0.2-0.4 s internal vs 1.5-6 s
    WAN in Figure 5).
    """

    median: float
    sigma: float

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ValueError("median must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def sample(self, rng: random.Random) -> float:
        return self.median * math.exp(self.sigma * rng.gauss(0.0, 1.0))


@dataclass(frozen=True)
class BoundedPareto(Distribution):
    """Pareto truncated to [low, high] via inverse-CDF sampling."""

    low: float
    high: float
    alpha: float

    def __post_init__(self) -> None:
        if not 0 < self.low < self.high:
            raise ValueError("need 0 < low < high")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        la = self.low**self.alpha
        ha = self.high**self.alpha
        x = (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / self.alpha)
        return x


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential with the given mean (inter-arrival times)."""

    mean: float

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError("mean must be positive")

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)


@dataclass(frozen=True)
class Choice(Distribution):
    """Uniform choice among a fixed set of values (modal sizes)."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("need at least one value")

    def sample(self, rng: random.Random) -> float:
        return rng.choice(self.values)


class Mixture(Distribution):
    """Weighted mixture of component distributions.

    Used for the dual-mode NFS/NCP message-size distributions (Figure 8):
    a ~100-byte control mode plus an ~8 KB data mode.
    """

    def __init__(self, components: Sequence[tuple[float, Distribution]]) -> None:
        if not components:
            raise ValueError("mixture needs at least one component")
        total = sum(weight for weight, _ in components)
        if total <= 0:
            raise ValueError("mixture weights must sum to a positive value")
        self._components = [(weight / total, dist) for weight, dist in components]

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        acc = 0.0
        for weight, dist in self._components:
            acc += weight
            if u <= acc:
                return dist.sample(rng)
        return self._components[-1][1].sample(rng)


def zipf_weights(n: int, alpha: float = 1.0) -> list[float]:
    """Return n Zipf(alpha) popularity weights summing to 1."""
    if n <= 0:
        raise ValueError("n must be positive")
    raw = [1.0 / (rank**alpha) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def weighted_choice(rng: random.Random, items: Sequence, weights: Sequence[float]):
    """Pick one item according to ``weights`` (need not be normalized)."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    return rng.choices(items, weights=weights, k=1)[0]
