"""Deterministic random-number streams.

Every stochastic component of the trace generator draws from its own named
substream derived from one master seed, so that (a) a whole study is exactly
reproducible from a single integer, and (b) adding draws to one application
generator does not perturb any other generator's output.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["SeedSequence", "substream"]


def _derive(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    Uses BLAKE2b over the (seed, name) pair; stable across Python versions
    and processes, unlike ``hash()``.
    """
    digest = hashlib.blake2b(
        f"{master_seed}:{name}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def substream(master_seed: int, name: str) -> random.Random:
    """Return an independent :class:`random.Random` for stream ``name``."""
    return random.Random(_derive(master_seed, name))


class SeedSequence:
    """A factory for named, independent random substreams.

    >>> seq = SeedSequence(42)
    >>> a = seq.stream("http")
    >>> b = seq.stream("dns")
    >>> a is not b
    True

    Requesting the same name twice returns a *fresh* generator positioned at
    the start of the same stream, which makes replaying a component cheap.
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed

    def stream(self, name: str) -> random.Random:
        """Return a fresh generator for substream ``name``."""
        return substream(self.master_seed, name)

    def child(self, name: str) -> "SeedSequence":
        """Return a derived :class:`SeedSequence` namespaced under ``name``.

        Used to give each dataset, then each subnet window, then each
        application generator its own seed namespace.
        """
        return SeedSequence(_derive(self.master_seed, name))

    def __repr__(self) -> str:
        return f"SeedSequence({self.master_seed})"
