"""IPv4 and MAC address helpers.

Addresses are carried as plain integers throughout the generator and the
analysis engine (packets per trace run into the millions, so we avoid
allocating an object per address).  This module holds the conversions and
the subnet arithmetic built on top of the integer representation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "ip_to_int",
    "int_to_ip",
    "ip_to_bytes",
    "bytes_to_ip",
    "mac_to_int",
    "int_to_mac",
    "mac_to_bytes",
    "bytes_to_mac",
    "is_multicast",
    "is_broadcast",
    "Subnet",
]

BROADCAST_IP = 0xFFFFFFFF
_MULTICAST_LO = ip_base = 0xE0000000  # 224.0.0.0
_MULTICAST_HI = 0xEFFFFFFF  # 239.255.255.255


def ip_to_int(text: str) -> int:
    """Parse dotted-quad notation into a 32-bit integer.

    >>> hex(ip_to_int("10.0.0.1"))
    '0xa000001'
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Render a 32-bit integer as dotted-quad notation."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"not a 32-bit address: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ip_to_bytes(value: int) -> bytes:
    """Pack an integer IPv4 address into 4 network-order bytes."""
    return struct.pack("!I", value)


def bytes_to_ip(data: bytes) -> int:
    """Unpack 4 network-order bytes into an integer IPv4 address."""
    if len(data) != 4:
        raise ValueError(f"need 4 bytes, got {len(data)}")
    return struct.unpack("!I", data)[0]


def mac_to_int(text: str) -> int:
    """Parse ``aa:bb:cc:dd:ee:ff`` notation into a 48-bit integer."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError(f"not a MAC address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part, 16)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def int_to_mac(value: int) -> str:
    """Render a 48-bit integer as colon-separated hex notation."""
    if not 0 <= value <= 0xFFFFFFFFFFFF:
        raise ValueError(f"not a 48-bit address: {value!r}")
    return ":".join(f"{(value >> shift) & 0xFF:02x}" for shift in (40, 32, 24, 16, 8, 0))


def mac_to_bytes(value: int) -> bytes:
    """Pack an integer MAC address into 6 network-order bytes."""
    return value.to_bytes(6, "big")


def bytes_to_mac(data: bytes) -> int:
    """Unpack 6 network-order bytes into an integer MAC address."""
    if len(data) != 6:
        raise ValueError(f"need 6 bytes, got {len(data)}")
    return int.from_bytes(data, "big")


def is_multicast(ip: int) -> bool:
    """True for class-D (224/4) destinations."""
    return _MULTICAST_LO <= ip <= _MULTICAST_HI


def is_broadcast(ip: int) -> bool:
    """True for the limited-broadcast address 255.255.255.255."""
    return ip == BROADCAST_IP


@dataclass(frozen=True)
class Subnet:
    """An IPv4 subnet expressed as ``network`` (int) and prefix length.

    The generator allocates one :class:`Subnet` per monitored LBNL subnet
    and hands out host addresses from it sequentially.
    """

    network: int
    prefix: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix <= 32:
            raise ValueError(f"bad prefix length: {self.prefix}")
        if self.network & ~self.netmask:
            raise ValueError(
                f"network {int_to_ip(self.network)} has host bits set for /{self.prefix}"
            )

    @classmethod
    def parse(cls, text: str) -> "Subnet":
        """Parse ``a.b.c.d/nn`` notation."""
        addr, _, prefix = text.partition("/")
        if not prefix:
            raise ValueError(f"missing prefix length: {text!r}")
        return cls(ip_to_int(addr), int(prefix))

    @property
    def netmask(self) -> int:
        """The subnet mask as a 32-bit integer."""
        if self.prefix == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.prefix)) & 0xFFFFFFFF

    @property
    def broadcast(self) -> int:
        """The subnet's directed-broadcast address."""
        return self.network | (~self.netmask & 0xFFFFFFFF)

    @property
    def num_hosts(self) -> int:
        """Number of assignable host addresses (excludes network/broadcast)."""
        total = 1 << (32 - self.prefix)
        return max(total - 2, 0)

    def host(self, index: int) -> int:
        """Return the ``index``-th assignable host address (0-based)."""
        if not 0 <= index < self.num_hosts:
            raise IndexError(f"host index {index} out of range for /{self.prefix}")
        return self.network + 1 + index

    def __contains__(self, ip: int) -> bool:
        return (ip & self.netmask) == self.network

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.prefix}"
