"""Shared utilities: addresses, seeded RNG streams, statistics, sampling."""

from .addr import Subnet, int_to_ip, int_to_mac, ip_to_int, is_broadcast, is_multicast, mac_to_int
from .fmt import fmt_bytes, fmt_count, fmt_duration, fmt_mb, fmt_pct
from .rng import SeedSequence, substream
from .sampling import (
    BoundedPareto,
    Choice,
    Constant,
    Distribution,
    Exponential,
    LogNormal,
    Mixture,
    Uniform,
    weighted_choice,
    zipf_weights,
)
from .stats import Cdf, Summary, fraction_table, geometric_mean, summarize
from .timeline import ByteTimeline

__all__ = [
    "Subnet",
    "int_to_ip",
    "int_to_mac",
    "ip_to_int",
    "is_broadcast",
    "is_multicast",
    "mac_to_int",
    "fmt_bytes",
    "fmt_count",
    "fmt_duration",
    "fmt_mb",
    "fmt_pct",
    "SeedSequence",
    "substream",
    "BoundedPareto",
    "Choice",
    "Constant",
    "Distribution",
    "Exponential",
    "LogNormal",
    "Mixture",
    "Uniform",
    "weighted_choice",
    "zipf_weights",
    "Cdf",
    "Summary",
    "fraction_table",
    "geometric_mean",
    "summarize",
    "ByteTimeline",
]
