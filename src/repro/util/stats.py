"""Empirical statistics used throughout the analysis and reporting layers.

The paper reports most of its results either as fractions of a total or as
empirical CDFs (Figures 2-8).  :class:`Cdf` is the reproduction's common
currency for the latter; :func:`fraction_table` for the former.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Cdf",
    "Summary",
    "summarize",
    "fraction_table",
    "geometric_mean",
    "StreamingMoments",
    "P2Quantile",
]


class Cdf:
    """An empirical cumulative distribution function.

    Stores the sorted sample; evaluation is O(log n).  The ``n`` attribute
    mirrors the ``N=`` annotations in the paper's figure keys.
    """

    def __init__(self, samples: Iterable[float]) -> None:
        self._sorted = sorted(samples)
        self.n = len(self._sorted)

    def __len__(self) -> int:
        return self.n

    def __call__(self, x: float) -> float:
        """Return P(X <= x); 0.0 for an empty sample."""
        if not self.n:
            return 0.0
        return bisect.bisect_right(self._sorted, x) / self.n

    def quantile(self, q: float) -> float:
        """Return the q-th quantile (0 <= q <= 1) of the sample."""
        if not self.n:
            raise ValueError("quantile of empty CDF")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if q == 1.0:
            return self._sorted[-1]
        return self._sorted[int(q * self.n)]

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.quantile(0.5)

    @property
    def min(self) -> float:
        """Smallest sample."""
        if not self.n:
            raise ValueError("min of empty CDF")
        return self._sorted[0]

    @property
    def max(self) -> float:
        """Largest sample."""
        if not self.n:
            raise ValueError("max of empty CDF")
        return self._sorted[-1]

    def points(self, max_points: int = 200) -> list[tuple[float, float]]:
        """Return (x, F(x)) pairs suitable for plotting or text rendering.

        Downsamples evenly in rank space so huge samples stay printable.
        """
        if not self.n:
            return []
        step = max(self.n // max_points, 1)
        pts = [
            (self._sorted[i], (i + 1) / self.n)
            for i in range(0, self.n, step)
        ]
        if pts[-1][0] != self._sorted[-1]:
            pts.append((self._sorted[-1], 1.0))
        return pts

    def samples(self) -> Sequence[float]:
        """The sorted underlying sample (read-only view by convention)."""
        return self._sorted


@dataclass(frozen=True)
class Summary:
    """Five-number-plus-mean summary of a sample."""

    n: int
    mean: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float


def summarize(samples: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` of ``samples`` (must be non-empty)."""
    cdf = Cdf(samples)
    if not cdf.n:
        raise ValueError("cannot summarize an empty sample")
    data = cdf.samples()
    return Summary(
        n=cdf.n,
        mean=sum(data) / cdf.n,
        minimum=cdf.min,
        p25=cdf.quantile(0.25),
        median=cdf.median,
        p75=cdf.quantile(0.75),
        maximum=cdf.max,
    )


def fraction_table(counts: Mapping[str, float]) -> dict[str, float]:
    """Normalize a {key: count} mapping into {key: fraction}.

    An all-zero (or empty) input yields all-zero fractions rather than
    raising, since empty traffic classes are routine in small traces.
    """
    total = sum(counts.values())
    if total <= 0:
        return {key: 0.0 for key in counts}
    return {key: value / total for key, value in counts.items()}


class StreamingMoments:
    """Single-pass count/mean/variance/min/max (Welford's algorithm).

    The streaming engine's counterpart to :func:`summarize`: O(1) state,
    one update per observation, no sample retained.  ``merge`` combines
    two accumulators (Chan's parallel update), so per-window moments can
    be rolled up into per-trace ones without a second pass.
    """

    __slots__ = ("n", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, x: float) -> None:
        """Fold one observation into the running moments."""
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    @property
    def variance(self) -> float:
        """Population variance of everything seen so far (0.0 when n < 2)."""
        return self._m2 / self.n if self.n else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "StreamingMoments") -> None:
        """Fold ``other``'s observations into this accumulator."""
        if not other.n:
            return
        if not self.n:
            self.n = other.n
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.n + other.n
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / total
        self.mean += delta * other.n / total
        self.n = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def snapshot(self) -> dict:
        """Plain-data state for checkpointing."""
        return {
            "n": self.n,
            "mean": self.mean,
            "m2": self._m2,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def restore(cls, state: dict) -> "StreamingMoments":
        """Rebuild an accumulator from :meth:`snapshot` output."""
        moments = cls()
        moments.n = state["n"]
        moments.mean = state["mean"]
        moments._m2 = state["m2"]
        moments.minimum = state["min"]
        moments.maximum = state["max"]
        return moments


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm (Jain & Chlamtac).

    Five markers, O(1) memory and update time; exact until five
    observations arrive, then a piecewise-parabolic estimate.  Good
    enough for operational readouts (median/p95 window throughput on a
    live stream) where sorting every sample would defeat the point of a
    single-pass engine.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_rate", "n")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile out of range: {q}")
        self.q = q
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
        self._rate = [0.0, q / 2, q, (1 + q) / 2, 1.0]
        self.n = 0

    def add(self, x: float) -> None:
        """Fold one observation into the estimate."""
        self.n += 1
        heights = self._heights
        if len(heights) < 5:
            bisect.insort(heights, x)
            return
        if x < heights[0]:
            heights[0] = x
            cell = 0
        elif x >= heights[4]:
            heights[4] = x
            cell = 3
        else:
            cell = next(i for i in range(4) if heights[i] <= x < heights[i + 1])
        for i in range(cell + 1, 5):
            self._positions[i] += 1
        for i in range(5):
            self._desired[i] += self._rate[i]
        for i in (1, 2, 3):
            delta = self._desired[i] - self._positions[i]
            below = self._positions[i] - self._positions[i - 1]
            above = self._positions[i + 1] - self._positions[i]
            if (delta >= 1 and above > 1) or (delta <= -1 and below > 1):
                step = 1 if delta >= 1 else -1
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:  # parabolic estimate escaped: fall back to linear
                    heights[i] += step * (heights[i + step] - heights[i]) / (
                        self._positions[i + step] - self._positions[i]
                    )
                self._positions[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        h, p = self._heights, self._positions
        return h[i] + step / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + step) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - step) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        )

    @property
    def value(self) -> float:
        """The current estimate (0.0 before any observation)."""
        if not self._heights:
            return 0.0
        if len(self._heights) < 5:
            # Exact small-sample quantile, same convention as Cdf.quantile.
            index = min(int(self.q * len(self._heights)), len(self._heights) - 1)
            return self._heights[index]
        return self._heights[2]

    def snapshot(self) -> dict:
        """Plain-data state for checkpointing."""
        return {
            "q": self.q,
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
            "n": self.n,
        }

    @classmethod
    def restore(cls, state: dict) -> "P2Quantile":
        """Rebuild an estimator from :meth:`snapshot` output."""
        estimator = cls(state["q"])
        estimator._heights = list(state["heights"])
        estimator._positions = list(state["positions"])
        estimator._desired = list(state["desired"])
        estimator.n = state["n"]
        return estimator


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean of strictly positive samples."""
    if not samples:
        raise ValueError("geometric mean of empty sample")
    if any(s <= 0 for s in samples):
        raise ValueError("geometric mean requires positive samples")
    return math.exp(sum(math.log(s) for s in samples) / len(samples))
