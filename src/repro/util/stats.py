"""Empirical statistics used throughout the analysis and reporting layers.

The paper reports most of its results either as fractions of a total or as
empirical CDFs (Figures 2-8).  :class:`Cdf` is the reproduction's common
currency for the latter; :func:`fraction_table` for the former.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

__all__ = ["Cdf", "Summary", "summarize", "fraction_table", "geometric_mean"]


class Cdf:
    """An empirical cumulative distribution function.

    Stores the sorted sample; evaluation is O(log n).  The ``n`` attribute
    mirrors the ``N=`` annotations in the paper's figure keys.
    """

    def __init__(self, samples: Iterable[float]) -> None:
        self._sorted = sorted(samples)
        self.n = len(self._sorted)

    def __len__(self) -> int:
        return self.n

    def __call__(self, x: float) -> float:
        """Return P(X <= x); 0.0 for an empty sample."""
        if not self.n:
            return 0.0
        return bisect.bisect_right(self._sorted, x) / self.n

    def quantile(self, q: float) -> float:
        """Return the q-th quantile (0 <= q <= 1) of the sample."""
        if not self.n:
            raise ValueError("quantile of empty CDF")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if q == 1.0:
            return self._sorted[-1]
        return self._sorted[int(q * self.n)]

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.quantile(0.5)

    @property
    def min(self) -> float:
        """Smallest sample."""
        if not self.n:
            raise ValueError("min of empty CDF")
        return self._sorted[0]

    @property
    def max(self) -> float:
        """Largest sample."""
        if not self.n:
            raise ValueError("max of empty CDF")
        return self._sorted[-1]

    def points(self, max_points: int = 200) -> list[tuple[float, float]]:
        """Return (x, F(x)) pairs suitable for plotting or text rendering.

        Downsamples evenly in rank space so huge samples stay printable.
        """
        if not self.n:
            return []
        step = max(self.n // max_points, 1)
        pts = [
            (self._sorted[i], (i + 1) / self.n)
            for i in range(0, self.n, step)
        ]
        if pts[-1][0] != self._sorted[-1]:
            pts.append((self._sorted[-1], 1.0))
        return pts

    def samples(self) -> Sequence[float]:
        """The sorted underlying sample (read-only view by convention)."""
        return self._sorted


@dataclass(frozen=True)
class Summary:
    """Five-number-plus-mean summary of a sample."""

    n: int
    mean: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float


def summarize(samples: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` of ``samples`` (must be non-empty)."""
    cdf = Cdf(samples)
    if not cdf.n:
        raise ValueError("cannot summarize an empty sample")
    data = cdf.samples()
    return Summary(
        n=cdf.n,
        mean=sum(data) / cdf.n,
        minimum=cdf.min,
        p25=cdf.quantile(0.25),
        median=cdf.median,
        p75=cdf.quantile(0.75),
        maximum=cdf.max,
    )


def fraction_table(counts: Mapping[str, float]) -> dict[str, float]:
    """Normalize a {key: count} mapping into {key: fraction}.

    An all-zero (or empty) input yields all-zero fractions rather than
    raising, since empty traffic classes are routine in small traces.
    """
    total = sum(counts.values())
    if total <= 0:
        return {key: 0.0 for key in counts}
    return {key: value / total for key, value in counts.items()}


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean of strictly positive samples."""
    if not samples:
        raise ValueError("geometric mean of empty sample")
    if any(s <= 0 for s in samples):
        raise ValueError("geometric mean requires positive samples")
    return math.exp(sum(math.log(s) for s in samples) / len(samples))
