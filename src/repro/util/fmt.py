"""Human-readable formatting for reported quantities.

The reporting layer renders the paper's tables as aligned text; these
helpers format byte counts, percentages, and counts the way the paper
prints them (e.g. "13.12 GB", "66%", "0.16 M").
"""

from __future__ import annotations

__all__ = ["fmt_bytes", "fmt_pct", "fmt_count", "fmt_mb", "fmt_duration"]

_BYTE_UNITS = ["B", "KB", "MB", "GB", "TB"]


def fmt_bytes(nbytes: float) -> str:
    """Format a byte count with a binary-ish magnitude suffix.

    Uses decimal (1000-based) steps like the paper's MB/GB figures.
    """
    value = float(nbytes)
    for unit in _BYTE_UNITS[:-1]:
        if abs(value) < 1000:
            return f"{value:.2f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1000.0
    return f"{value:.2f} {_BYTE_UNITS[-1]}"


def fmt_mb(nbytes: float) -> str:
    """Format a byte count in whole megabytes, as in Tables 6-15."""
    mb = nbytes / 1e6
    if mb < 1:
        return f"{mb:.1f}MB"
    return f"{mb:.0f}MB"


def fmt_pct(fraction: float, precision: int = 0) -> str:
    """Format a 0..1 fraction as a percentage.

    Mirrors the paper's convention of showing sub-1% values with a
    decimal ("0.2%") while rounding larger values ("26%").
    """
    pct = fraction * 100.0
    if 0 < pct < 1 and precision == 0:
        return f"{pct:.1f}%"
    return f"{pct:.{precision}f}%"


def fmt_count(value: float) -> str:
    """Format a count with K/M suffixes ("17.8M packets")."""
    if abs(value) >= 1e6:
        return f"{value / 1e6:.1f}M"
    if abs(value) >= 1e3:
        return f"{value / 1e3:.1f}K"
    return f"{value:.0f}"


def fmt_duration(seconds: float) -> str:
    """Format a duration using the largest sensible unit."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120:
        return f"{seconds:.1f} s"
    if seconds < 7200:
        return f"{seconds / 60:.1f} min"
    return f"{seconds / 3600:.1f} hr"
