"""repro — a reproduction of "A First Look at Modern Enterprise Traffic"
(Pang, Allman, Bennett, Lee, Paxson, Tierney — IMC 2005).

The package is organized as:

* :mod:`repro.util` — addresses, seeded RNG streams, statistics.
* :mod:`repro.net` — wire-format packet layer (Ethernet/ARP/IPX/IPv4/TCP/UDP/ICMP).
* :mod:`repro.pcap` — pcap trace file I/O.
* :mod:`repro.proto` — application protocol message encode/decode.
* :mod:`repro.gen` — the synthetic LBNL-like enterprise trace generator
  (the stand-in for the paper's anonymized traces).
* :mod:`repro.analysis` — the Bro-like analysis engine: connection
  tracking, scan filtering, classification, per-application analyzers,
  locality and load analysis.
* :mod:`repro.report` — renders every table and figure of the paper.
* :mod:`repro.core` — the end-to-end study pipeline and experiment registry.

Quickstart::

    from repro import run_study
    results = run_study(seed=42, scale=0.02)
    print(results.render_table(2))
"""

__version__ = "1.0.0"

__all__ = ["StudyConfig", "StudyResults", "run_study", "__version__"]


def __getattr__(name):
    # Imported lazily so that `import repro.net` and friends stay cheap
    # and do not pull in the whole study pipeline.
    if name in ("StudyConfig", "StudyResults", "run_study"):
        from .core import study

        return getattr(study, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
