#!/usr/bin/env python3
"""Scenario: untangle Windows service traffic (§5.2.1).

Windows traffic hides behind interchangeable ports: CIFS rides both
139/tcp (behind a Netbios session handshake) and 445/tcp, and DCE/RPC
rides named pipes *inside* CIFS as well as stand-alone TCP endpoints
published by the Endpoint Mapper.  This example drives the analyzer's
demultiplexing end-to-end and prints the per-function breakdown an
administrator would use to answer "what are these machines doing?".

    python examples/windows_deep_dive.py
"""

import tempfile

from repro.analysis import DatasetAnalyzer
from repro.analysis.analyzers import WindowsAnalyzer
from repro.gen import Enterprise, generate_dataset
from repro.util.addr import int_to_ip


def main() -> None:
    enterprise = Enterprise(seed=31)
    analyzer = WindowsAnalyzer()
    with tempfile.TemporaryDirectory() as workdir:
        print("capturing D3 (the print-server vantage point)...")
        traces = generate_dataset("D3", enterprise, workdir, seed=31, scale=0.008)
        engine = DatasetAnalyzer("D3", full_payload=True, analyzers=[analyzer])
        for trace in traces.traces:
            engine.process_pcap(trace.path)
        analysis = engine.finish()

    report = analysis.analyzer_results["windows"]

    print("\nconnection success by host-pairs (Table 9's shape):")
    for channel in ("Netbios/SSN", "CIFS", "Endpoint Mapper"):
        outcome = report.success.get(channel)
        if outcome is None or not outcome.total:
            continue
        print(
            f"  {channel:<16} pairs={outcome.total:<4} "
            f"ok={outcome.success_rate:>4.0%} rej={outcome.rejected_rate:>4.0%} "
            f"unanswered={outcome.unanswered_rate:>4.0%}"
        )
    print(f"  NBSS handshake success: {report.nbss_handshake_success_rate():.0%}")

    total_req = sum(report.cifs_requests.values())
    total_bytes = sum(report.cifs_bytes.values())
    print(f"\nCIFS command mix ({total_req} requests, {total_bytes / 1e6:.1f} MB):")
    for category, count in report.cifs_requests.most_common():
        print(
            f"  {category:<22} {count / total_req:>5.1%} of requests, "
            f"{report.cifs_bytes_fraction(category):>5.1%} of bytes"
        )

    total_rpc = sum(report.rpc_requests.values())
    print(f"\nDCE/RPC function mix ({total_rpc} calls):")
    for label, count in report.rpc_requests.most_common():
        print(
            f"  {label:<22} {count / total_rpc:>5.1%} of calls, "
            f"{report.rpc_bytes_fraction(label):>5.1%} of stub bytes"
        )

    if report.endpoints:
        print("\nstand-alone DCE/RPC endpoints learned from the Endpoint Mapper:")
        for server, port in sorted(report.endpoints)[:10]:
            print(f"  {int_to_ip(server)}:{port}")


if __name__ == "__main__":
    main()
