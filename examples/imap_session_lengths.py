#!/usr/bin/env python3
"""Scenario: how long do IMAP/S sessions *really* live? (§5.1.2)

The paper could not answer this: its hour-long tap windows cap observed
IMAP/S durations around 50 minutes, so "determining the true length of
IMAP/S sessions requires longer observations and is a subject for
future work."  Right-censoring has a classical fix, though: treat every
connection still open when the tap moved on as "lived at least this
long" and apply the Kaplan-Meier product-limit estimator.

This example measures windowed IMAP/S durations, compares the naive CDF
(biased low) against the censoring-aware estimate, and reports how much
of the distribution remains honestly unidentifiable.

    python examples/imap_session_lengths.py
"""

import tempfile

from repro.analysis import DatasetAnalyzer, KaplanMeier, censored_durations
from repro.gen import Enterprise, generate_dataset
from repro.util.stats import Cdf

IMAPS_PORT = 993


def main() -> None:
    enterprise = Enterprise(seed=61)
    with tempfile.TemporaryDirectory() as workdir:
        print("capturing D1 (hour-long windows over the mail-side router)...")
        traces = generate_dataset("D1", enterprise, workdir, seed=61, scale=0.01,
                                  max_windows=24)
        engine = DatasetAnalyzer("D1", full_payload=False)
        for trace in traces.traces:
            engine.process_pcap(trace.path)
        analysis = engine.finish()

    imaps = [
        conn for conn in analysis.filtered_conns()
        if conn.proto == "tcp" and conn.resp_port == IMAPS_PORT
    ]
    samples = censored_durations(imaps)
    censored = sum(1 for sample in samples if sample.censored)
    print(f"\nIMAP/S connections observed: {len(samples)} "
          f"({censored} still open when the tap moved on — right-censored)")

    naive = Cdf([sample.duration for sample in samples])
    km = KaplanMeier(samples)

    print("\n              naive (treat cut-offs as complete)   Kaplan-Meier")
    for q in (0.25, 0.5, 0.75, 0.9):
        naive_q = naive.quantile(q)
        km_q = km.quantile(q)
        km_text = f"{km_q:8.0f} s" if km_q is not None else "  unidentifiable"
        print(f"  p{int(q * 100):<3}        {naive_q:8.0f} s                    {km_text}")

    print("\nsurvival beyond the paper's ~50-minute observation cap:")
    print(f"  naive:        P(>3000 s) = {1 - naive(3000):.1%}")
    print(f"  Kaplan-Meier: P(>3000 s) = {km.survival(3000):.1%}")
    print(
        "\nthe naive estimate treats every cut-off connection as finished;"
        "\nthe product-limit estimate keeps the mass the window hid."
    )


if __name__ == "__main__":
    main()
