#!/usr/bin/env python3
"""Scenario: infer host roles from connection patterns (§4 follow-on).

The paper observes that fan-in/fan-out tails belong to "busy servers"
and cites role-classification work as the natural next step.  This
example runs the extension analysis: from connection records alone —
no topology knowledge — classify which internal hosts act as servers,
for which services, and compare the inference against the generator's
ground-truth placement.

    python examples/host_roles.py
"""

import tempfile

from repro.analysis import DatasetAnalyzer, classify_roles
from repro.gen import Enterprise, Role, generate_dataset
from repro.util.addr import int_to_ip


def main() -> None:
    enterprise = Enterprise(seed=47)
    with tempfile.TemporaryDirectory() as workdir:
        print("capturing D1 (two rounds over the mail-side router)...")
        traces = generate_dataset("D1", enterprise, workdir, seed=47, scale=0.006,
                                  max_windows=20)
        engine = DatasetAnalyzer("D1", full_payload=False)
        for trace in traces.traces:
            engine.process_pcap(trace.path)
        analysis = engine.finish()

    report = classify_roles(analysis.filtered_conns(), analysis.internal_net)
    counts = report.kind_counts()
    print(f"\nprofiled {len(report.profiles)} internal hosts: {dict(counts)}")

    print("\nbusiest inferred servers:")
    shown = 0
    for profile in sorted(report.profiles.values(), key=lambda p: -p.fan_in):
        if not profile.roles:
            continue
        print(
            f"  {int_to_ip(profile.ip):<16} fan-in={profile.fan_in:<4} "
            f"roles={', '.join(profile.roles)}"
        )
        shown += 1
        if shown >= 8:
            break

    # Compare against ground truth for the mail servers.
    truth = {host.ip for host in enterprise.servers(Role.SMTP_SERVER)}
    inferred = {profile.ip for profile in report.servers_for("SMTP")}
    hits = truth & inferred
    print(
        f"\nground truth check: {len(hits)}/{len(truth)} real SMTP servers "
        f"re-discovered from traffic alone"
    )


if __name__ == "__main__":
    main()
