#!/usr/bin/env python3
"""Scenario: is the campus network really underutilized? (§6)

A network engineer is evaluating a proposal that assumes campus links
are mostly idle (the Quick-Start assumption the paper tests).  This
example measures, per monitored subnet:

* peak utilization over 1/10/60-second windows (saturation is real but
  short-lived),
* typical per-second utilization (orders of magnitude below capacity),
* TCP retransmission rates as a loss proxy, split enterprise vs WAN,
  excluding keep-alive artifacts.

    python examples/capacity_planning.py
"""

import tempfile

from repro.analysis import DatasetAnalyzer
from repro.analysis.load import load_report
from repro.gen import Enterprise, generate_dataset

LINK_CAPACITY_MBPS = 100.0


def main() -> None:
    enterprise = Enterprise(seed=23)
    with tempfile.TemporaryDirectory() as workdir:
        print("capturing D4 (hour-long windows, two rounds)...")
        traces = generate_dataset("D4", enterprise, workdir, seed=23, scale=0.006)
        engine = DatasetAnalyzer("D4", full_payload=True)
        for trace in traces.traces:
            engine.process_pcap(trace.path)
        analysis = engine.finish()

    report = load_report(analysis.traces)

    print("\npeak utilization across traces (Mbps):")
    for window, cdf in sorted(report.peak_cdfs.items()):
        print(
            f"  {window:>4.0f}s windows: median {cdf.median:8.3f}  "
            f"p90 {cdf.quantile(0.9):8.3f}  max {cdf.max:8.3f}"
        )

    util = report.utilization_cdfs
    print("\nper-second utilization, distribution over traces (Mbps):")
    for metric in ("median", "mean", "p75", "maximum"):
        cdf = util[metric]
        print(f"  {metric:>8}: median {cdf.median:10.4f}  max {cdf.max:10.4f}")

    headroom = LINK_CAPACITY_MBPS / max(util["mean"].median, 1e-6)
    print(f"\ntypical load sits ~{headroom:,.0f}x below the {LINK_CAPACITY_MBPS:.0f} Mbps capacity")

    print("\nTCP retransmission rates per trace (keep-alives excluded):")
    for where in ("ent", "wan"):
        rates = report.retransmit_rates[where]
        if not rates:
            print(f"  {where}: no traces with >=1000 packets")
            continue
        over_1pct = sum(1 for r in rates if r > 0.01)
        print(
            f"  {where}: mean {sum(rates) / len(rates):.3%}  max {max(rates):.2%}  "
            f"traces over 1%: {over_1pct}/{len(rates)}"
        )

    verdict = "yes, with short-lived exceptions" if util["mean"].median < 10 else "no"
    print(f"\nunderutilized? {verdict} — matching the paper's §6 conclusion")


if __name__ == "__main__":
    main()
