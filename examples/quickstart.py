#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline tables on a small study.

Runs the full pipeline — synthetic LBNL-like trace generation, Bro-style
analysis, reporting — for two datasets at a small scale, then prints the
broad-breakdown tables (Tables 2-3) and the application-category figure
(Figure 1).

Run time: around half a minute.

    python examples/quickstart.py
"""

from repro import run_study


def main() -> None:
    print("Generating and analyzing D0 (full payload) and D1 (header-only)...")
    results = run_study(seed=42, scale=0.005, datasets=("D0", "D1"))

    for name, analysis in results.analyses.items():
        print(
            f"  {name}: {analysis.total_packets:,} packets over "
            f"{len(analysis.traces)} traces, {len(analysis.conns):,} connections, "
            f"{len(analysis.scanner_sources)} scanners filtered"
        )
    print()

    print(results.render_table(2))
    print()
    print(results.render_table(3))
    print()
    print(results.render_figure(1))
    print()
    print("Every other paper artifact is one call away, e.g.:")
    print("  results.render_table(9)   # Windows connection success rates")
    print("  results.render_figure(10) # TCP retransmission rates")


if __name__ == "__main__":
    main()
