#!/usr/bin/env python3
"""Scenario: extend the generator with your own application workload.

The trace generator is a library, not a fixed corpus: a researcher who
wants to study a protocol the paper never saw can add a workload
generator and measure how the analysis pipeline classifies it.  This
example adds a toy "telemetry" application (UDP beacons to a collector),
wires it into a window, and shows it landing in the other-udp bucket —
then registers its port so it classifies properly.

    python examples/custom_workload.py
"""

import random
from collections import Counter

from repro.analysis import DatasetAnalyzer
from repro.analysis.classify import classify_conn
from repro.gen import DATASETS, Enterprise
from repro.gen.apps.base import AppGenerator, WindowContext
from repro.gen.packetize import realize_all
from repro.gen.session import AppEvent, Dir, UdpExchange

TELEMETRY_PORT = 7654


class TelemetryGenerator(AppGenerator):
    """Every workstation beacons a 120-byte report each few minutes."""

    name = "telemetry"

    def generate(self, ctx: WindowContext) -> list[UdpExchange]:
        collector = ctx.internal_peer()
        sessions = []
        for _ in range(ctx.count(600.0)):
            host = ctx.local_client()
            sessions.append(
                UdpExchange(
                    client_ip=host.ip,
                    server_ip=collector.ip,
                    client_mac=ctx.mac_of(host),
                    server_mac=ctx.mac_of(collector),
                    sport=ctx.ephemeral_port(),
                    dport=TELEMETRY_PORT,
                    start=ctx.start_time(),
                    rtt=ctx.ent_rtt(),
                    events=[
                        AppEvent(0.0, Dir.C2S, b"\x01TELEMETRY" + b"\x00" * 110),
                        AppEvent(0.0, Dir.S2C, b"\x02ACK"),
                    ],
                )
            )
        return sessions


def main() -> None:
    enterprise = Enterprise(seed=77)
    subnet = enterprise.subnets[0]
    ctx = WindowContext(
        enterprise=enterprise,
        subnet=subnet,
        t0=0.0,
        t1=3600.0,
        rng=random.Random(5),
        config=DATASETS["D3"],
        scale=0.2,
    )
    sessions = TelemetryGenerator().generate(ctx)
    print(f"generated {len(sessions)} telemetry exchanges on one subnet-hour")

    engine = DatasetAnalyzer("custom", full_payload=True)
    packets = list(realize_all(sessions, random.Random(9), window_end=3600.0))
    engine.process_packets(packets, label="telemetry-window")
    analysis = engine.finish()

    categories = Counter(
        classify_conn(conn)[1] for conn in analysis.filtered_conns()
    )
    print(f"default classification: {dict(categories)}")

    # Register the port so the telemetry app reports under its own name.
    from repro.analysis import classify

    classify._UDP_PORTS[TELEMETRY_PORT] = ("Telemetry", "net-mgnt")
    categories = Counter(
        classify_conn(conn)[0] for conn in analysis.filtered_conns()
    )
    print(f"after registering port {TELEMETRY_PORT}: {dict(categories)}")


if __name__ == "__main__":
    main()
