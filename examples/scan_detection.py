#!/usr/bin/env python3
"""Scenario: find scanners in enterprise traces (§3's methodology).

A security analyst receives a day of packet traces and wants to know
which hosts were scanning — before any traffic characterization skews on
their probes.  This example drives the pipeline at the trace level:

1. generate one dataset's pcap traces to disk (our stand-in for the
   operator's capture),
2. run the analysis engine over the files,
3. apply the paper's heuristic (>50 distinct hosts contacted, >=45 in
   monotonic address order) plus a known-scanner allowlist,
4. report what was found and how the traffic mix shifts once scanner
   traffic is removed.

    python examples/scan_detection.py
"""

import tempfile
from collections import Counter

from repro.analysis import DatasetAnalyzer, filter_scanners
from repro.analysis.analyzers import DEFAULT_ANALYZERS
from repro.gen import Enterprise, Role, generate_dataset
from repro.util.addr import int_to_ip


def main() -> None:
    enterprise = Enterprise(seed=11)
    known = [host.ip for host in enterprise.servers(Role.SCANNER)]
    print(f"site-declared internal scanners: {[int_to_ip(ip) for ip in known]}")

    with tempfile.TemporaryDirectory() as workdir:
        print("capturing D3 (18 one-hour tap windows)...")
        traces = generate_dataset("D3", enterprise, workdir, seed=11, scale=0.004)
        print(f"  {traces.total_packets:,} packets in {len(traces.traces)} trace files")

        engine = DatasetAnalyzer(
            "D3", full_payload=True, analyzers=[cls() for cls in DEFAULT_ANALYZERS]
        )
        for trace in traces.traces:
            engine.process_pcap(trace.path)
        analysis = engine.finish(known_scanners=known)

    result = filter_scanners(analysis.conns, known_scanners=known)
    print(f"\nscanners found: {len(result.scanners)}")
    for source in sorted(result.scanners):
        marker = " (site-declared)" if source in known else " (heuristic)"
        count = sum(1 for conn in analysis.conns if conn.orig_ip == source)
        print(f"  {int_to_ip(source):<16} {count:>5} connections{marker}")
    print(
        f"\nremoved {result.removed:,} of {result.removed + len(result.kept):,} "
        f"connections ({result.removed_fraction:.1%}; the paper saw 4-18%)"
    )

    before = Counter(conn.proto for conn in analysis.conns)
    after = Counter(conn.proto for conn in result.kept)
    print("\ntransport mix before vs after filtering:")
    for proto in ("tcp", "udp", "icmp"):
        frac_before = before[proto] / sum(before.values())
        frac_after = after[proto] / sum(after.values())
        print(f"  {proto:<5} {frac_before:>6.1%} -> {frac_after:>6.1%}")


if __name__ == "__main__":
    main()
