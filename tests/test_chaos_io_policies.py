"""Storage faults meet the error policies: degrade, account, never lose.

The load-bearing guarantees from the chaos fault plane's consumers: a
shard publication that fails mid-write degrades a tolerant run to the
cold path with an ``io_error`` data-quality row (strict raises a typed
:class:`IngestionError`), a checkpoint that cannot publish degrades the
stream run to in-memory buffering without losing a single connection,
telemetry survives a dying log disk, and none of it ever leaks a stale
temp file.
"""

from __future__ import annotations

import pytest

from repro.analysis.errors import ErrorKind, IngestionError
from repro.chaos import FaultKind, FaultPlane, FaultRule, activate, deactivate
from repro.core.study import analyze_dataset
from repro.gen.capture import generate_dataset
from repro.gen.topology import Enterprise, Role
from repro.report.quality import data_quality_table
from repro.runtime.telemetry import TelemetryLog, read_events
from repro.store import ConnStore
from repro.stream.engine import StreamConfig


@pytest.fixture(autouse=True)
def honest_io():
    deactivate()
    yield
    deactivate()


@pytest.fixture(scope="module")
def small_traces(tmp_path_factory):
    """One tiny generated D0 dataset shared by the policy tests."""
    out = tmp_path_factory.mktemp("chaos-traces")
    enterprise = Enterprise(seed=3)
    traces = generate_dataset(
        "D0", enterprise, out / "D0", seed=3, scale=0.004, max_windows=2
    )
    scanners = tuple(host.ip for host in enterprise.servers(Role.SCANNER))
    return traces, scanners


def _shard_fault(kind: FaultKind) -> FaultPlane:
    """A plane failing the first shard-object publication."""
    return FaultPlane(rules=[FaultRule(kind, op="publish", path="*.rcs", at=(1,))])


# -- shard publication -------------------------------------------------------


@pytest.mark.parametrize("kind", [FaultKind.ENOSPC, FaultKind.EIO])
def test_strict_raises_on_failed_shard_publication(small_traces, tmp_path, kind):
    traces, scanners = small_traces
    store = ConnStore(tmp_path / "store")
    activate(_shard_fault(kind))
    with pytest.raises(IngestionError) as excinfo:
        analyze_dataset("D0", traces, scanners, error_policy="strict", store=store)
    assert excinfo.value.kind is ErrorKind.IO_ERROR
    assert "shard publication failed" in excinfo.value.detail
    deactivate()
    # Nothing half-published: with the in-flight grace disabled, the gc
    # sweep finds zero temp files of any age.
    report = store.gc(dry_run=True, tmp_grace_s=0.0)
    assert report.stale_tmp == 0


def test_tolerant_degrades_to_cold_path_with_quality_row(small_traces, tmp_path):
    traces, scanners = small_traces
    store = ConnStore(tmp_path / "store")
    activate(_shard_fault(FaultKind.ENOSPC))
    analysis = analyze_dataset(
        "D0", traces, scanners, error_policy="tolerant", store=store
    )
    deactivate()
    # The analysis itself is whole — only the cache entry was lost.
    assert analysis.conns
    assert analysis.io_errors == {"shard_publication": 1}
    assert analysis.error_totals()[ErrorKind.IO_ERROR.value] == 1
    table = data_quality_table({"D0": analysis})
    assert table.cell(f"errors: {ErrorKind.IO_ERROR.value}", "D0") == 1
    assert store.gc(dry_run=True, tmp_grace_s=0.0).stale_tmp == 0
    # An honest retry populates the cache and carries no io_error rows.
    clean = analyze_dataset(
        "D0", traces, scanners, error_policy="tolerant", store=store
    )
    assert clean.io_errors == {}
    assert ErrorKind.IO_ERROR.value not in clean.error_totals()


# -- checkpoint publication --------------------------------------------------


def _checkpoint_fault() -> FaultPlane:
    """Fail the first checkpoint publication (manifest or state shard).

    The ``rename`` guard inside :func:`~repro.chaos.fsio.publish_bytes`
    shares the publication counter, so targeting the checkpoint
    manifest path catches the run mid-checkpoint regardless of which
    store op lands first.
    """
    return FaultPlane(
        rules=[FaultRule(FaultKind.EIO, op="publish", path="*ckpt-*", at=(1,))]
    )


def test_strict_raises_on_failed_checkpoint(small_traces, tmp_path):
    traces, scanners = small_traces
    store = ConnStore(tmp_path / "store")
    activate(_checkpoint_fault())
    with pytest.raises(IngestionError) as excinfo:
        analyze_dataset(
            "D0",
            traces,
            scanners,
            error_policy="strict",
            store=store,
            engine="stream",
            stream=StreamConfig(checkpoint_every=100),
        )
    assert excinfo.value.kind is ErrorKind.IO_ERROR
    assert "checkpoint publication failed" in excinfo.value.detail


def test_tolerant_checkpoint_failure_buffers_in_memory(small_traces, tmp_path):
    traces, scanners = small_traces
    baseline = analyze_dataset("D0", traces, scanners, error_policy="tolerant")
    store = ConnStore(tmp_path / "store")
    activate(_checkpoint_fault())
    analysis = analyze_dataset(
        "D0",
        traces,
        scanners,
        error_policy="tolerant",
        store=store,
        engine="stream",
        stream=StreamConfig(checkpoint_every=100),
    )
    deactivate()
    # Not one connection lost to the failed checkpoint...
    assert analysis.conns == baseline.conns
    # ...and the degradation is accounted, not hidden.
    assert analysis.error_totals().get(ErrorKind.IO_ERROR.value, 0) >= 1
    assert store.gc(dry_run=True, tmp_grace_s=0.0).stale_tmp == 0


# -- telemetry ----------------------------------------------------------------


def test_telemetry_survives_a_dying_log_disk(tmp_path):
    path = tmp_path / "events.jsonl"
    activate(FaultPlane(rules=[FaultRule(FaultKind.EIO, op="append", at=(2,))]))
    with TelemetryLog(path=path) as log:
        log.emit("study_start", jobs=1)
        log.emit("unit_start", unit="dataset:D0")  # the write that dies
        log.emit("unit_finish", unit="dataset:D0")
        assert log.dropped_writes == 2  # sink closed after first failure
        assert len(log.events) == 3  # in-memory stream keeps recording
    deactivate()
    events, bad = read_events(path)
    assert [event["event"] for event in events] == ["study_start"]
    assert bad == 0


def test_read_events_tolerates_a_truncated_tail(tmp_path):
    path = tmp_path / "events.jsonl"
    with TelemetryLog(path=path) as log:
        log.emit("study_start", jobs=1)
        log.emit("unit_finish", unit="dataset:D0", status="ok")
    # Simulate a kill mid-write: a partial trailing line.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"event": "study_fin')
    events, bad = read_events(path)
    assert [event["event"] for event in events] == ["study_start", "unit_finish"]
    assert bad == 1
