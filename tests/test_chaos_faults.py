"""The chaos fault plane: schedules, determinism, and the I/O seam.

The load-bearing guarantees: with no plane active the seam is honest
(and free); fault schedules are deterministic by seed and counter; every
fault kind does exactly what its taxonomy entry promises — fail, tear,
lose, flip, or kill — and the publication protocol never leaks a temp
file, whatever fires.
"""

from __future__ import annotations

import errno
import os
import subprocess
import sys

import pytest

from repro.chaos import (
    CHAOS_ENV,
    FaultKind,
    FaultPlane,
    FaultRule,
    InjectedCrash,
    activate,
    active,
    current_plane,
    deactivate,
)
from repro.chaos import fsio
from repro.chaos.faults import CRASH_EXIT_CODE


@pytest.fixture(autouse=True)
def honest_io():
    """Every test starts and ends without an active plane."""
    deactivate()
    yield
    deactivate()


def _no_tmp(directory) -> bool:
    return not list(directory.glob("*.tmp"))


# -- scheduling --------------------------------------------------------------


def test_rule_matches_by_op_prefix_and_path_pattern():
    rule = FaultRule(FaultKind.EIO, op="publish", path="*/objects/*")
    assert rule.matches("publish", "/store/objects/ab/x.rcs")
    assert rule.matches("publish.manifest", "/store/objects/ab/x.rcs")
    assert not rule.matches("read", "/store/objects/ab/x.rcs")
    assert not rule.matches("publish", "/store/manifests/x.json")
    assert FaultRule(FaultKind.EIO).matches("anything", "anywhere")


def test_at_schedule_fires_at_exact_indices_and_respects_limit():
    plane = FaultPlane(rules=[FaultRule(FaultKind.EIO, op="op", at=(2, 4), limit=1)])
    fired = [plane.check("op", "p") is not None for _ in range(5)]
    assert fired == [False, True, False, False, False]  # limit=1 ate index 4


def test_unlimited_rule_fires_every_scheduled_index():
    plane = FaultPlane(
        rules=[FaultRule(FaultKind.EIO, op="op", at=(1, 3), limit=None)]
    )
    fired = [plane.check("op", "p") is not None for _ in range(4)]
    assert fired == [True, False, True, False]


def test_rate_schedule_is_deterministic_by_seed():
    def sequence(seed):
        plane = FaultPlane(
            seed=seed,
            rules=[FaultRule(FaultKind.EIO, op="op", rate=0.5, limit=None)],
        )
        return [plane.check("op", "p") is not None for _ in range(64)]

    assert sequence(1) == sequence(1)
    assert sequence(1) != sequence(2)  # astronomically unlikely to collide
    assert any(sequence(1))


def test_first_matching_rule_wins():
    plane = FaultPlane(
        rules=[
            FaultRule(FaultKind.ENOSPC, op="publish", at=(1,)),
            FaultRule(FaultKind.EIO, op="publish", at=(1,)),
        ]
    )
    assert plane.check("publish", "p").kind is FaultKind.ENOSPC


def test_env_round_trip_preserves_the_schedule():
    plane = FaultPlane(
        seed=9,
        rules=[FaultRule(FaultKind.TORN_WRITE, op="publish", path="*.rcs", at=(3,))],
        crash_mode="raise",
    )
    clone = FaultPlane.from_env(plane.to_env())
    assert clone.seed == 9
    assert clone.crash_mode == "raise"
    assert clone.rules == plane.rules


def test_current_plane_arms_lazily_from_environment(monkeypatch):
    import repro.chaos.faults as faults

    plane = FaultPlane(rules=[FaultRule(FaultKind.EIO, op="read", at=(1,))])
    monkeypatch.setenv(CHAOS_ENV, plane.to_env())
    monkeypatch.setattr(faults, "_active_plane", None)
    monkeypatch.setattr(faults, "_env_checked", False)
    armed = current_plane()
    assert armed is not None
    assert armed.rules == plane.rules


def test_active_context_manager_restores_previous_plane():
    outer = activate(FaultPlane(seed=1))
    with active(FaultPlane(seed=2)) as inner:
        assert current_plane() is inner
    assert current_plane() is outer


# -- the I/O seam ------------------------------------------------------------


def test_honest_publish_round_trips_and_leaves_no_tmp(tmp_path):
    target = tmp_path / "obj.rcs"
    fsio.publish_bytes(target, b"payload")
    assert target.read_bytes() == b"payload"
    assert _no_tmp(tmp_path)
    assert fsio.read_bytes(target) == b"payload"


def test_enospc_fails_publication_cleanly(tmp_path):
    activate(FaultPlane(rules=[FaultRule(FaultKind.ENOSPC, op="publish", at=(1,))]))
    target = tmp_path / "obj.rcs"
    with pytest.raises(OSError) as excinfo:
        fsio.publish_bytes(target, b"payload")
    assert excinfo.value.errno == errno.ENOSPC
    assert not target.exists()
    assert _no_tmp(tmp_path)
    fsio.publish_bytes(target, b"payload")  # limit=1: next publish succeeds
    assert target.read_bytes() == b"payload"


def test_torn_write_silently_persists_a_strict_prefix(tmp_path):
    activate(
        FaultPlane(seed=5, rules=[FaultRule(FaultKind.TORN_WRITE, op="publish", at=(1,))])
    )
    target = tmp_path / "obj.rcs"
    data = bytes(range(256))
    fsio.publish_bytes(target, data)  # no exception: the tear is silent
    torn = target.read_bytes()
    assert 0 < len(torn) < len(data)
    assert data.startswith(torn)
    assert _no_tmp(tmp_path)


def test_lost_rename_is_detected_and_surfaced(tmp_path):
    activate(FaultPlane(rules=[FaultRule(FaultKind.LOST_RENAME, op="publish", at=(1,))]))
    target = tmp_path / "obj.rcs"
    with pytest.raises(OSError) as excinfo:
        fsio.publish_bytes(target, b"payload")
    assert excinfo.value.errno == errno.EIO
    assert "publication lost" in str(excinfo.value)
    assert not target.exists()
    assert _no_tmp(tmp_path)


def test_bit_flip_corrupts_the_read_never_the_disk(tmp_path):
    target = tmp_path / "obj.rcs"
    data = b"\x00" * 64
    target.write_bytes(data)
    activate(
        FaultPlane(seed=3, rules=[FaultRule(FaultKind.BIT_FLIP, op="read", at=(1,))])
    )
    flipped = fsio.read_bytes(target)
    assert flipped != data and len(flipped) == len(data)
    # Exactly one bit differs.
    assert sum(bin(a ^ b).count("1") for a, b in zip(flipped, data)) == 1
    assert target.read_bytes() == data  # the disk is untouched
    assert fsio.read_bytes(target) == data  # limit=1: next read is honest


def test_crash_raise_mode_is_uncatchable_by_exception_handlers(tmp_path):
    activate(
        FaultPlane(
            rules=[FaultRule(FaultKind.CRASH, op="publish", at=(1,))],
            crash_mode="raise",
        )
    )
    with pytest.raises(InjectedCrash):
        try:
            fsio.publish_bytes(tmp_path / "obj.rcs", b"payload")
        except Exception:  # noqa: BLE001 - proving recovery code can't eat it
            pytest.fail("InjectedCrash must not be an Exception")
    assert _no_tmp(tmp_path)


def test_crash_exit_mode_kills_the_process(tmp_path):
    plane = FaultPlane(rules=[FaultRule(FaultKind.CRASH, op="publish", at=(1,))])
    script = (
        "from pathlib import Path\n"
        "from repro.chaos import fsio\n"
        f"fsio.publish_bytes(Path({str(tmp_path / 'obj.rcs')!r}), b'payload')\n"
    )
    env = dict(os.environ, **{CHAOS_ENV: plane.to_env()})
    env["PYTHONPATH"] = str("src")
    proc = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, cwd="."
    )
    assert proc.returncode == CRASH_EXIT_CODE
    assert not (tmp_path / "obj.rcs").exists()


def test_open_write_tears_a_stream_write_loudly(tmp_path):
    activate(
        FaultPlane(
            seed=7,
            # Index 1 is the "trace-write.open" guard (prefix match), so
            # the second data write is the rule's third matching op.
            rules=[FaultRule(FaultKind.TORN_WRITE, op="trace-write", at=(3,))],
        )
    )
    target = tmp_path / "trace.pcap"
    stream = fsio.open_write(target)
    stream.write(b"A" * 32)
    with pytest.raises(OSError) as excinfo:
        stream.write(b"B" * 32)
    assert excinfo.value.errno == errno.EIO
    stream.close()
    written = target.read_bytes()
    assert written.startswith(b"A" * 32)
    assert len(written) < 64  # the second write persisted only a prefix


def test_guard_is_free_without_a_plane(tmp_path):
    assert fsio.guard("publish", tmp_path / "x") is None
    stream = fsio.open_write(tmp_path / "plain.bin")
    try:
        assert not hasattr(stream, "_FaultStream__stream")  # the raw file object
        stream.write(b"ok")
    finally:
        stream.close()
    assert (tmp_path / "plain.bin").read_bytes() == b"ok"


def test_root_down_fires_on_every_match_and_raises_enoent(tmp_path):
    activate(
        FaultPlane(
            rules=[
                FaultRule(
                    FaultKind.ROOT_DOWN, path=f"{tmp_path}/dead*", limit=None
                )
            ]
        )
    )
    dead = tmp_path / "dead" / "obj.rcs"
    # Unscheduled (no at/rate) root_down is a steady-state outage: it
    # fires on every matching operation, read or write, forever.
    for _ in range(3):
        with pytest.raises(FileNotFoundError) as excinfo:
            fsio.guard("read", dead)
        assert excinfo.value.errno == errno.ENOENT
    with pytest.raises(FileNotFoundError):
        fsio.guard("probe", tmp_path / "dead")
    # Paths outside the dead root are untouched.
    assert fsio.guard("read", tmp_path / "alive" / "obj.rcs") is None


def test_flaky_root_raises_eio_by_seeded_rate(tmp_path):
    activate(
        FaultPlane(
            seed=3,
            rules=[
                FaultRule(
                    FaultKind.FLAKY_ROOT, op="read",
                    path=f"{tmp_path}*", rate=0.5, limit=None,
                )
            ],
        )
    )
    outcomes = []
    for _ in range(40):
        try:
            fsio.guard("read", tmp_path / "obj.rcs")
            outcomes.append(True)
        except OSError as exc:
            assert exc.errno == errno.EIO
            outcomes.append(False)
    assert any(outcomes) and not all(outcomes)  # intermittent, not dead
    # Same seed, same schedule: the flake sequence is deterministic.
    activate(
        FaultPlane(
            seed=3,
            rules=[
                FaultRule(
                    FaultKind.FLAKY_ROOT, op="read",
                    path=f"{tmp_path}*", rate=0.5, limit=None,
                )
            ],
        )
    )
    replay = []
    for _ in range(40):
        try:
            fsio.guard("read", tmp_path / "obj.rcs")
            replay.append(True)
        except OSError:
            replay.append(False)
    assert replay == outcomes
