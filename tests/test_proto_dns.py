"""Tests for repro.proto.dns."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.proto.dns import (
    QTYPE_A,
    QTYPE_AAAA,
    QTYPE_MX,
    QTYPE_PTR,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    DnsMessage,
    DnsQuestion,
    DnsRecord,
    decode_name,
    encode_name,
)


class TestNameEncoding:
    def test_round_trip(self):
        encoded = encode_name("mail.internal.example")
        name, offset = decode_name(encoded, 0)
        assert name == "mail.internal.example"
        assert offset == len(encoded)

    def test_root(self):
        assert encode_name("") == b"\x00"

    def test_trailing_dot_ignored(self):
        assert encode_name("a.b.") == encode_name("a.b")

    def test_rejects_long_label(self):
        with pytest.raises(ValueError):
            encode_name("x" * 64 + ".com")

    def test_compression_pointer(self):
        # "example" at offset 0; a pointer to it at the end.
        base = encode_name("example")
        data = base + b"\xc0\x00"
        name, offset = decode_name(data, len(base))
        assert name == "example"
        assert offset == len(data)

    def test_pointer_loop_detected(self):
        data = b"\xc0\x00"
        with pytest.raises(ValueError):
            decode_name(data, 0)

    def test_runs_past_end(self):
        with pytest.raises(ValueError):
            decode_name(b"\x05ab", 0)


class TestDnsMessage:
    def test_query_round_trip(self):
        msg = DnsMessage(ident=0x1234, questions=[DnsQuestion("host.example", QTYPE_A)])
        back = DnsMessage.decode(msg.encode())
        assert back.ident == 0x1234
        assert not back.is_response
        assert back.recursion_desired
        assert back.questions[0].name == "host.example"
        assert back.questions[0].qtype == QTYPE_A

    def test_response_with_answer(self):
        msg = DnsMessage(
            ident=1,
            is_response=True,
            questions=[DnsQuestion("a.example", QTYPE_A)],
            answers=[DnsRecord("a.example", QTYPE_A, b"\x0a\x00\x00\x01", ttl=60)],
        )
        back = DnsMessage.decode(msg.encode())
        assert back.is_response
        assert back.rcode == RCODE_NOERROR
        assert back.answers[0].rdata == b"\x0a\x00\x00\x01"
        assert back.answers[0].ttl == 60

    def test_nxdomain(self):
        msg = DnsMessage(
            ident=2, is_response=True, rcode=RCODE_NXDOMAIN,
            questions=[DnsQuestion("gone.example", QTYPE_A)],
        )
        assert DnsMessage.decode(msg.encode()).rcode == RCODE_NXDOMAIN

    def test_qtype_name(self):
        for qtype, label in ((QTYPE_A, "A"), (QTYPE_AAAA, "AAAA"), (QTYPE_PTR, "PTR"), (QTYPE_MX, "MX")):
            msg = DnsMessage(ident=1, questions=[DnsQuestion("x", qtype)])
            assert msg.qtype_name == label

    def test_qtype_name_empty(self):
        assert DnsMessage(ident=1).qtype_name == "?"

    def test_truncated_header(self):
        with pytest.raises(ValueError):
            DnsMessage.decode(b"\x00" * 6)

    def test_truncated_question(self):
        msg = DnsMessage(ident=1, questions=[DnsQuestion("abc.example", QTYPE_A)])
        with pytest.raises(ValueError):
            DnsMessage.decode(msg.encode()[:-2])

    def test_multiple_sections(self):
        msg = DnsMessage(
            ident=5, is_response=True,
            questions=[DnsQuestion("m.example", QTYPE_MX)],
            answers=[DnsRecord("m.example", QTYPE_MX, b"\x00\x0a" + encode_name("mx.m.example"))],
            authority=[DnsRecord("example", 2, encode_name("ns.example"))],
            additional=[DnsRecord("ns.example", QTYPE_A, b"\x01\x02\x03\x04")],
        )
        back = DnsMessage.decode(msg.encode())
        assert len(back.answers) == 1
        assert len(back.authority) == 1
        assert len(back.additional) == 1


@given(
    ident=st.integers(min_value=0, max_value=0xFFFF),
    labels=st.lists(st.text(alphabet="abcdefghij", min_size=1, max_size=10), min_size=1, max_size=4),
    qtype=st.sampled_from([QTYPE_A, QTYPE_AAAA, QTYPE_PTR, QTYPE_MX]),
)
def test_dns_round_trip_property(ident, labels, qtype):
    name = ".".join(labels)
    msg = DnsMessage(ident=ident, questions=[DnsQuestion(name, qtype)])
    back = DnsMessage.decode(msg.encode())
    assert back.ident == ident
    assert back.questions[0].name == name
    assert back.questions[0].qtype == qtype
