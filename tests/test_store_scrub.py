"""Store scrub-and-repair: detection, quarantine layout, re-derivation.

The load-bearing guarantees: scrub detects *every* synthetically
corrupted shard (content address + CRC, no sampling), quarantines
damage into the taxonomy-named tree with provenance sidecars, and
repair re-derives missing shards from source traces onto their original
content addresses — refusing sources that no longer digest-match.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.core.cli import main
from repro.core.study import analyze_dataset
from repro.gen.capture import generate_dataset
from repro.gen.topology import Enterprise, Role
from repro.store import ConnStore, StoreScrubber

_SEED = 5


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """A healthy populated store plus the traces that built it."""
    base = tmp_path_factory.mktemp("scrub-golden")
    enterprise = Enterprise(seed=_SEED)
    traces = generate_dataset(
        "D0", enterprise, base / "out" / "D0", seed=_SEED, scale=0.004,
        max_windows=2,
    )
    scanners = tuple(host.ip for host in enterprise.servers(Role.SCANNER))
    store = ConnStore(base / "store")
    analyze_dataset("D0", traces, scanners, error_policy="tolerant", store=store)
    return base


@pytest.fixture()
def stocked(golden, tmp_path):
    """A private mutable copy of the golden store (+ shared traces dir)."""
    root = tmp_path / "store"
    shutil.copytree(golden / "store", root)
    return ConnStore(root), golden / "out"


def _objects(store: ConnStore) -> list[Path]:
    return sorted(store.objects_dir.glob("*/*.rcs"))


def _flip_byte(path: Path, offset: int = 40) -> None:
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


# -- scrub -------------------------------------------------------------------


def test_clean_store_scrubs_ok(stocked):
    store, _ = stocked
    report = StoreScrubber(store).scrub()
    assert report.ok
    assert report.objects_checked == len(_objects(store)) >= 3
    assert report.manifests_checked >= 1
    assert report.quarantined == 0
    assert "clean" in report.render()


def test_scrub_detects_every_corrupted_object(stocked):
    """100% detection: corrupt *all* shards, each one is found."""
    store, _ = stocked
    paths = _objects(store)
    for index, path in enumerate(paths):
        _flip_byte(path, offset=24 + index)  # different byte per shard
    report = StoreScrubber(store).scrub(quarantine=False)
    assert not report.ok
    assert len(report.corrupt_objects) == len(paths)
    # Audit mode never moves anything.
    assert report.quarantined == 0
    assert all(path.exists() for path in paths)
    assert "DAMAGED" in report.render()


def test_quarantine_layout_and_sidecar(stocked):
    store, _ = stocked
    victim = _objects(store)[0]
    digest = victim.stem
    _flip_byte(victim)
    report = StoreScrubber(store).scrub()
    assert len(report.corrupt_objects) == 1
    finding = report.corrupt_objects[0]
    assert finding.kind == "decode_error"
    assert "content address mismatch" in finding.detail
    # The shard moved under quarantine/<error-kind>/ next to a sidecar.
    assert not victim.exists()
    moved = store.root / finding.quarantined_to
    assert moved == store.root / "quarantine" / "decode_error" / victim.name
    assert moved.exists()
    sidecar = json.loads(moved.with_name(moved.name + ".json").read_text())
    assert sidecar["kind"] == "decode_error"
    assert digest[:12] in sidecar["detail"]
    assert sidecar["source"].startswith("objects/")
    # The same pass reports the manifest now missing its shard.
    assert any(digest in missing for missing in report.missing_refs.values())


def test_unparseable_manifest_is_quarantined(stocked):
    store, _ = stocked
    rogue = store.manifests_dir / "deadbeef.json"
    rogue.write_text("{not json", encoding="utf-8")
    report = StoreScrubber(store).scrub()
    assert len(report.corrupt_manifests) == 1
    assert not rogue.exists()
    assert (store.root / "quarantine" / "decode_error" / rogue.name).exists()
    assert report.ok is False


def test_dead_checkpoint_is_quarantined(stocked):
    store, _ = stocked
    ckpt = store.manifests_dir / "ckpt-feedface.json"
    ckpt.write_text(
        json.dumps(
            {"kind": "checkpoint", "key": "ckpt-feedface",
             "state": "0" * 64, "batches": []}
        ),
        encoding="utf-8",
    )
    report = StoreScrubber(store).scrub()
    assert len(report.dead_checkpoints) == 1
    assert "state shard" in report.dead_checkpoints[0].detail
    assert not ckpt.exists()
    assert (store.root / "quarantine" / "truncated_body" / ckpt.name).exists()
    # A dead checkpoint is not a missing-refs repair case.
    assert not report.missing_refs


# -- repair ------------------------------------------------------------------


def test_repair_restores_identical_content_addresses(stocked):
    store, traces_dir = stocked
    paths = _objects(store)
    original = {path.stem for path in paths}
    _flip_byte(paths[0])  # one corrupted...
    paths[1].unlink()  # ...and one simply gone
    outcomes = StoreScrubber(store).repair(traces_dir=traces_dir)
    assert [outcome.repaired for outcome in outcomes] == [True]
    assert outcomes[0].dataset == "D0"
    assert set(outcomes[0].restored) == {paths[0].stem, paths[1].stem}
    # The store is whole again under the *same* content addresses —
    # and a fresh scrub re-verifies every byte of it.
    assert {path.stem for path in _objects(store)} == original
    report = StoreScrubber(store).scrub()
    assert report.ok and report.objects_checked == len(original)


def test_repair_refuses_mutated_source_traces(stocked):
    store, traces_dir = stocked
    private = traces_dir.parent / "mutated-out"
    if not private.exists():
        shutil.copytree(traces_dir, private)
        pcap = next((private / "D0").glob("*.pcap"))
        with open(pcap, "ab") as handle:
            handle.write(b"\x00" * 8)
    _objects(store)[0].unlink()
    outcomes = StoreScrubber(store).repair(traces_dir=private)
    assert [outcome.repaired for outcome in outcomes] == [False]
    assert "no longer digest-matches" in outcomes[0].reason


def test_repair_reports_missing_source_traces(stocked, tmp_path):
    store, _ = stocked
    _objects(store)[0].unlink()
    outcomes = StoreScrubber(store).repair(traces_dir=tmp_path / "nowhere")
    assert [outcome.repaired for outcome in outcomes] == [False]
    assert "missing" in outcomes[0].reason


# -- CLI ---------------------------------------------------------------------


def test_cli_scrub_and_repair_round_trip(stocked, capsys):
    store, traces_dir = stocked
    at = ["--store-dir", str(store.root)]
    assert main(["store", "scrub"] + at) == 0
    _flip_byte(_objects(store)[0])
    # Audit flags the damage without moving anything.
    assert main(["store", "scrub", "--audit-only"] + at) == 1
    assert not (store.root / "quarantine").exists()
    assert main(["store", "repair", "--traces-dir", str(traces_dir)] + at) == 0
    out = capsys.readouterr().out
    assert "repaired D0" in out
    assert "restored to their original content addresses" in out
    assert main(["store", "scrub"] + at) == 0


def test_cli_repair_with_nothing_to_repair(stocked, capsys):
    store, traces_dir = stocked
    assert main(
        ["store", "repair", "--store-dir", str(store.root),
         "--traces-dir", str(traces_dir)]
    ) == 0
    assert "nothing to repair" in capsys.readouterr().out
