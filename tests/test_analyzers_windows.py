"""Tests for the Windows services analyzer (CIFS/DCE-RPC/NBSS/EPM)."""

import random

from repro.analysis.analyzers.windows import WindowsAnalyzer
from repro.analysis.flow import FlowTable
from repro.gen.packetize import realize_session
from repro.gen.session import AppEvent, Dir, Outcome, TcpSession
from repro.net.packet import decode_packet
from repro.proto import cifs, dcerpc
from repro.proto.netbios import NbssFrame, SSN_POSITIVE_RESPONSE, SSN_SESSION_MESSAGE
from repro.util.addr import ip_to_int

_CLIENT = ip_to_int("131.243.1.20")
_SERVER = ip_to_int("131.243.7.7")


def _run(sessions):
    analyzer = WindowsAnalyzer()
    table = FlowTable(collect_payload=True)
    rng = random.Random(5)
    for session in sessions:
        for pkt in realize_session(session, rng):
            table.process(decode_packet(pkt))
    for result in table.flush():
        analyzer.on_connection(result, True)
    return analyzer, analyzer.result()


def _session(dport, events=None, outcome=Outcome.SUCCESS, server=_SERVER):
    return TcpSession(
        client_ip=_CLIENT, server_ip=server, client_mac=1, server_mac=2,
        sport=47000 + dport, dport=dport, start=1.0, rtt=0.0005,
        events=events or [], outcome=outcome, loss_rate=0.0,
    )


def _framed(direction, message):
    return AppEvent(0.01, direction, NbssFrame(SSN_SESSION_MESSAGE, message.encode()).encode())


class TestCifsAccounting:
    def test_command_categories(self):
        events = [
            _framed(Dir.C2S, cifs.SmbMessage(command=cifs.CMD_NEGOTIATE)),
            _framed(Dir.S2C, cifs.SmbMessage(command=cifs.CMD_NEGOTIATE, is_response=True)),
            _framed(Dir.C2S, cifs.SmbMessage(command=cifs.CMD_READ_ANDX, fid=1)),
            _framed(Dir.S2C, cifs.SmbMessage(command=cifs.CMD_READ_ANDX, fid=1,
                                             is_response=True, data=b"r" * 400)),
        ]
        _, report = _run([_session(445, events)])
        assert report.cifs_requests["SMB Basic"] == 1
        assert report.cifs_requests["Windows File Sharing"] == 1
        assert report.cifs_bytes["Windows File Sharing"] > 400

    def test_rpc_over_pipe_functions(self):
        call = dcerpc.DcerpcPdu(
            ptype=dcerpc.PDU_REQUEST, opnum=dcerpc.OP_SPOOLSS_WRITEPRINTER,
            data=b"j" * 600,
        )
        events = [
            _framed(Dir.C2S, cifs.SmbMessage(
                command=cifs.CMD_TRANS, name="\\PIPE\\SPOOLSS", data=call.encode(),
            )),
        ]
        _, report = _run([_session(445, events)])
        assert report.rpc_requests["Spoolss/WritePrinter"] == 1
        assert report.rpc_bytes["Spoolss/WritePrinter"] == 600
        assert report.cifs_requests["RPC Pipes"] == 1

    def test_netlogon_via_139(self):
        call = dcerpc.DcerpcPdu(
            ptype=dcerpc.PDU_REQUEST, opnum=dcerpc.OP_NETLOGON_SAMLOGON, data=b"a" * 100,
        )
        events = [
            AppEvent(0.0, Dir.C2S, NbssFrame.session_request("S", "C").encode()),
            AppEvent(0.01, Dir.S2C, NbssFrame(SSN_POSITIVE_RESPONSE).encode()),
            _framed(Dir.C2S, cifs.SmbMessage(
                command=cifs.CMD_TRANS, name="\\PIPE\\NETLOGON", data=call.encode(),
            )),
        ]
        _, report = _run([_session(139, events)])
        assert report.rpc_requests["NetLogon"] == 1
        assert report.nbss_handshake_success_rate() == 1.0


class TestEndpointMapper:
    def _epm_session(self, mapped_port):
        map_resp = dcerpc.DcerpcPdu(
            ptype=dcerpc.PDU_RESPONSE, opnum=dcerpc.OP_EPM_MAP,
            data=mapped_port.to_bytes(2, "big") + b"\x00" * 30,
        )
        return _session(135, [
            AppEvent(0.0, Dir.C2S, dcerpc.DcerpcPdu(
                ptype=dcerpc.PDU_REQUEST, opnum=dcerpc.OP_EPM_MAP, data=b"m" * 40,
            ).encode()),
            AppEvent(0.01, Dir.S2C, map_resp.encode()),
        ])

    def test_endpoint_learned(self):
        analyzer, report = _run([self._epm_session(1055)])
        assert (_SERVER, 1055) in report.endpoints
        assert analyzer.windows_endpoints == report.endpoints

    def test_standalone_rpc_classified_by_bind(self):
        bind = dcerpc.DcerpcPdu(ptype=dcerpc.PDU_BIND, interface=dcerpc.IFACE_LSARPC)
        call = dcerpc.DcerpcPdu(ptype=dcerpc.PDU_REQUEST,
                                opnum=dcerpc.OP_LSA_LOOKUPSIDS, data=b"q" * 50)
        standalone = _session(1055, [
            AppEvent(0.0, Dir.C2S, bind.encode()),
            AppEvent(0.01, Dir.C2S, call.encode()),
        ])
        _, report = _run([self._epm_session(1055), standalone])
        assert report.rpc_requests["LsaRPC"] == 1


class TestSuccessRates:
    def test_channels_scored_separately(self):
        sessions = [
            _session(139, [AppEvent(0.0, Dir.C2S, NbssFrame.session_request("S", "C").encode())]),
            _session(445, outcome=Outcome.REJECTED),
            _session(135, [AppEvent(0.0, Dir.C2S, b"x")]),
        ]
        _, report = _run(sessions)
        assert report.success["Netbios/SSN"].successful == 1
        assert report.success["CIFS"].rejected == 1
        assert report.success["Endpoint Mapper"].successful == 1

    def test_scanner_sources_excluded(self):
        analyzer = WindowsAnalyzer()
        table = FlowTable(collect_payload=True)
        rng = random.Random(5)
        scanner_ip = ip_to_int("131.243.2.99")
        sessions = [
            _session(445, outcome=Outcome.REJECTED),
        ]
        scan = TcpSession(
            client_ip=scanner_ip, server_ip=_SERVER, client_mac=1, server_mac=2,
            sport=48000, dport=445, start=1.0, rtt=0.0005,
            outcome=Outcome.REJECTED, loss_rate=0.0,
        )
        for session in sessions + [scan]:
            for pkt in realize_session(session, rng):
                table.process(decode_packet(pkt))
        for result in table.flush():
            analyzer.on_connection(result, True)
        analyzer.scanners = {scanner_ip}
        report = analyzer.result()
        assert report.success["CIFS"].total == 1  # scanner pair dropped

    def test_wan_traffic_ignored(self):
        wan_session = TcpSession(
            client_ip=ip_to_int("9.9.9.9"), server_ip=_SERVER,
            client_mac=1, server_mac=2, sport=49000, dport=445,
            start=1.0, rtt=0.05, loss_rate=0.0,
        )
        _, report = _run([wan_session])
        assert "CIFS" not in report.success or report.success["CIFS"].total == 0
