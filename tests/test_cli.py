"""Tests for the repro-study command-line interface."""

import pytest

from repro.core.cli import main


class TestCli:
    def test_small_run_prints_tables_and_figures(self, capsys):
        code = main([
            "--seed", "3", "--scale", "0.002", "--datasets", "D0",
            "--max-windows", "4", "--tables", "2", "3", "--figures", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Table 3" in out
        assert "Figure 1a" in out
        assert "Figure 1b" in out

    def test_no_tables_no_figures(self, capsys):
        code = main([
            "--seed", "3", "--scale", "0.002", "--datasets", "D0",
            "--max-windows", "2", "--tables", "--figures",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table" not in out
        # A clean strict run has nothing to confess.
        assert "Data quality" not in out

    def test_tolerant_policy_prints_data_quality(self, capsys):
        code = main([
            "--seed", "3", "--scale", "0.002", "--datasets", "D0",
            "--max-windows", "2", "--tables", "--figures",
            "--error-policy", "tolerant",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Data quality" in out
        assert "error policy" in out
        assert "tolerant" in out

    def test_rejects_unknown_error_policy(self):
        with pytest.raises(SystemExit):
            main(["--error-policy", "lenient"])

    def test_out_dir_keeps_traces(self, tmp_path, capsys):
        main([
            "--seed", "3", "--scale", "0.002", "--datasets", "D0",
            "--max-windows", "2", "--tables", "--figures",
            "--out-dir", str(tmp_path),
        ])
        pcaps = list((tmp_path / "D0").glob("*.pcap"))
        assert len(pcaps) == 2

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["--datasets", "D9"])


class TestDaemonCli:
    """The ``repro-study daemon`` surface (the daemon itself is covered
    in tests/test_daemon_supervisor.py)."""

    @pytest.fixture(scope="class")
    def trace(self, tmp_path_factory):
        from repro.gen.capture import generate_dataset
        from repro.gen.topology import Enterprise

        out = tmp_path_factory.mktemp("daemon-cli-traces")
        dataset = generate_dataset(
            "D0", Enterprise(seed=7), out, seed=7, scale=0.004, max_windows=1
        )
        return dataset.traces[0].path

    def test_daemon_runs_tenants_to_done(self, trace, tmp_path, capsys):
        import json

        alerts = tmp_path / "alerts.json"
        alerts.write_text(json.dumps({"rules": [
            {"name": "busy", "metric": "packets", "threshold": 1},
        ]}))
        telemetry = tmp_path / "events.jsonl"
        code = main([
            "daemon",
            "--store-dir", str(tmp_path / "store"),
            "--tenant", f"edge={trace}",
            "--alert-config", str(alerts),
            "--telemetry", str(telemetry),
            "--backoff", "0.05",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[daemon] edge: done" in out
        from repro.runtime.telemetry import read_events

        events, bad = read_events(telemetry)
        assert bad == 0
        kinds = {e["event"] for e in events}
        assert {"daemon_start", "feed_window", "alert_raise",
                "daemon_stop"} <= kinds

    def test_daemon_rejects_malformed_tenant_spec(self, trace, tmp_path,
                                                  capsys):
        code = main([
            "daemon",
            "--store-dir", str(tmp_path / "store"),
            "--tenant", f"bad.name={trace}",
        ])
        assert code == 2
        assert "tenant" in capsys.readouterr().err

    def test_daemon_rejects_malformed_alert_config(self, trace, tmp_path,
                                                   capsys):
        broken = tmp_path / "alerts.json"
        broken.write_text("{not json")
        code = main([
            "daemon",
            "--store-dir", str(tmp_path / "store"),
            "--tenant", f"edge={trace}",
            "--alert-config", str(broken),
        ])
        assert code == 2
        assert "alert config" in capsys.readouterr().err
