"""Tests for the repro-study command-line interface."""

import pytest

from repro.core.cli import main


class TestCli:
    def test_small_run_prints_tables_and_figures(self, capsys):
        code = main([
            "--seed", "3", "--scale", "0.002", "--datasets", "D0",
            "--max-windows", "4", "--tables", "2", "3", "--figures", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Table 3" in out
        assert "Figure 1a" in out
        assert "Figure 1b" in out

    def test_no_tables_no_figures(self, capsys):
        code = main([
            "--seed", "3", "--scale", "0.002", "--datasets", "D0",
            "--max-windows", "2", "--tables", "--figures",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table" not in out
        # A clean strict run has nothing to confess.
        assert "Data quality" not in out

    def test_tolerant_policy_prints_data_quality(self, capsys):
        code = main([
            "--seed", "3", "--scale", "0.002", "--datasets", "D0",
            "--max-windows", "2", "--tables", "--figures",
            "--error-policy", "tolerant",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Data quality" in out
        assert "error policy" in out
        assert "tolerant" in out

    def test_rejects_unknown_error_policy(self):
        with pytest.raises(SystemExit):
            main(["--error-policy", "lenient"])

    def test_out_dir_keeps_traces(self, tmp_path, capsys):
        main([
            "--seed", "3", "--scale", "0.002", "--datasets", "D0",
            "--max-windows", "2", "--tables", "--figures",
            "--out-dir", str(tmp_path),
        ])
        pcaps = list((tmp_path / "D0").glob("*.pcap"))
        assert len(pcaps) == 2

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["--datasets", "D9"])
