"""Tests for repro.gen.topology."""

import random

from repro.gen.topology import ENTERPRISE_NET, Enterprise, Role, wan_address


class TestEnterprise:
    def test_subnet_counts(self, enterprise):
        assert len(enterprise.subnets_of_router(0)) == 22
        assert len(enterprise.subnets_of_router(1)) == 18

    def test_thousands_of_hosts(self, enterprise):
        assert enterprise.num_hosts > 2000

    def test_all_hosts_inside_enterprise_net(self, enterprise):
        for subnet in enterprise.subnets:
            for host in subnet.hosts:
                assert host.ip in ENTERPRISE_NET
                assert host.ip in subnet.subnet

    def test_unique_addresses(self, enterprise):
        ips = [host.ip for subnet in enterprise.subnets for host in subnet.hosts]
        macs = [host.mac for subnet in enterprise.subnets for host in subnet.hosts]
        assert len(ips) == len(set(ips))
        assert len(macs) == len(set(macs))

    def test_deterministic_from_seed(self):
        a = Enterprise(seed=5)
        b = Enterprise(seed=5)
        assert [s.subnet.network for s in a.subnets] == [s.subnet.network for s in b.subnets]
        assert [len(s.hosts) for s in a.subnets] == [len(s.hosts) for s in b.subnets]

    def test_different_seeds_differ(self):
        a = Enterprise(seed=5)
        b = Enterprise(seed=6)
        assert [len(s.hosts) for s in a.subnets] != [len(s.hosts) for s in b.subnets]

    def test_host_lookup(self, enterprise):
        host = enterprise.subnets[0].hosts[0]
        assert enterprise.host_by_ip(host.ip) is host
        assert enterprise.host_by_ip(1) is None


class TestServerPlacement:
    def test_mail_servers_behind_router0(self, enterprise):
        for role in (Role.SMTP_SERVER, Role.IMAP_SERVER, Role.AUTH_SERVER):
            servers = enterprise.servers(role)
            assert servers, role
            assert all(server.router == 0 for server in servers)

    def test_print_and_dns_behind_router1(self, enterprise):
        assert all(s.router == 1 for s in enterprise.servers(Role.PRINT_SERVER))
        assert all(s.router == 1 for s in enterprise.servers(Role.DNS_SERVER))

    def test_nbns_on_both_routers(self, enterprise):
        routers = {s.router for s in enterprise.servers(Role.NBNS_SERVER)}
        assert routers == {0, 1}

    def test_two_internal_scanners(self, enterprise):
        assert len(enterprise.servers(Role.SCANNER)) == 2

    def test_servers_keep_workstation_role(self, enterprise):
        server = enterprise.servers(Role.SMTP_SERVER)[0]
        assert server.is_server
        assert server.has_role(Role.SMTP_SERVER)

    def test_no_address_collision_between_roles_on_shared_subnet(self, enterprise):
        """Roles placed on the same subnet must land on distinct hosts."""
        for subnet in enterprise.subnets:
            role_hosts = [h for h in subnet.hosts if h.is_server]
            # Multi-role hosts are allowed only if the roles were placed
            # identically, which the placement table avoids.
            assert len(role_hosts) == len({h.ip for h in role_hosts})


class TestPeerPicking:
    def test_internal_peer_crosses_subnet(self, enterprise):
        rng = random.Random(3)
        for _ in range(50):
            peer = enterprise.pick_internal_peer(rng, exclude_index=0)
            assert peer.subnet_index != 0

    def test_workstation_pick(self, enterprise):
        rng = random.Random(3)
        host = enterprise.pick_workstation(rng, enterprise.subnets[1])
        assert host.subnet_index == 1


class TestWanAddress:
    def test_outside_enterprise(self):
        rng = random.Random(9)
        for _ in range(200):
            assert wan_address(rng) not in ENTERPRISE_NET

    def test_diversity(self):
        rng = random.Random(9)
        addresses = {wan_address(rng) for _ in range(500)}
        assert len(addresses) > 300
