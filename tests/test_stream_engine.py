"""Batch-vs-stream parity at the engine level (repro.stream.engine).

The contract under test: for the same trace files, the streaming
analyzer's products — connection records, per-trace statistics, error
accounts, utilization timelines — are element-wise identical to the
batch analyzer's, including under the tolerant error policy on
corrupted traces, and a run interrupted mid-trace resumes from its last
checkpoint to the exact same products.
"""

from __future__ import annotations

import pytest

from repro.analysis.analyzers import DEFAULT_ANALYZERS
from repro.analysis.engine import DatasetAnalyzer
from repro.analysis.errors import ErrorPolicy
from repro.gen.capture import generate_dataset
from repro.gen.faults import corrupt_dataset
from repro.gen.topology import ENTERPRISE_NET, Enterprise
from repro.store.cache import ConnStore
from repro.stream.engine import StreamConfig, StreamDatasetAnalyzer
from repro.stream.source import PacketSource


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    """One small full-payload dataset, generated once per module."""
    out = tmp_path_factory.mktemp("stream-traces")
    return generate_dataset(
        "D0", Enterprise(seed=7), out, seed=7, scale=0.004, max_windows=3
    )


def _run(analyzer, traces):
    for trace in traces.traces:
        analyzer.process_pcap(trace.path)
    return analyzer.finish()


def _make(cls, traces, policy=ErrorPolicy.STRICT, **kwargs):
    return cls(
        "D0",
        full_payload=traces.config.full_payload,
        internal_net=ENTERPRISE_NET,
        analyzers=[c() for c in DEFAULT_ANALYZERS],
        error_policy=policy,
        **kwargs,
    )


def _assert_same_analysis(batch, stream):
    assert len(stream.conns) == len(batch.conns)
    for ours, theirs in zip(stream.conns, batch.conns):
        assert ours == theirs
    assert len(stream.traces) == len(batch.traces)
    for ours, theirs in zip(stream.traces, batch.traces):
        assert ours.packets == theirs.packets
        assert ours.l2_counts == theirs.l2_counts
        assert ours.errors == theirs.errors
        assert ours.quarantined == theirs.quarantined
        if theirs.utilization is None:
            assert ours.utilization is None
        else:
            assert ours.utilization.bins() == theirs.utilization.bins()


class TestParity:
    def test_identical_products(self, dataset):
        batch = _run(_make(DatasetAnalyzer, dataset), dataset)
        stream = _run(_make(StreamDatasetAnalyzer, dataset), dataset)
        assert len(batch.conns) > 0
        _assert_same_analysis(batch, stream)

    def test_tolerant_policy_parity_on_corrupt_traces(
        self, dataset, tmp_path_factory
    ):
        out = tmp_path_factory.mktemp("corrupt")
        corrupt = generate_dataset(
            "D0", Enterprise(seed=7), out, seed=7, scale=0.004, max_windows=3
        )
        corrupt_dataset(corrupt, seed=3)
        batch = _run(
            _make(DatasetAnalyzer, corrupt, policy=ErrorPolicy.TOLERANT), corrupt
        )
        stream = _run(
            _make(StreamDatasetAnalyzer, corrupt, policy=ErrorPolicy.TOLERANT),
            corrupt,
        )
        assert sum(sum(t.errors.values()) for t in batch.traces) > 0
        _assert_same_analysis(batch, stream)

    def test_in_memory_packets_match_pcap(self, dataset):
        from repro.pcap.reader import read_pcap

        trace = dataset.traces[0]
        via_file = _make(StreamDatasetAnalyzer, dataset)
        via_file.process_pcap(trace.path)
        via_memory = _make(StreamDatasetAnalyzer, dataset)
        via_memory.process_packets(read_pcap(trace.path))
        a, b = via_file.finish(), via_memory.finish()
        assert a.conns == b.conns


class TestWindows:
    def test_window_summaries_per_trace(self, dataset):
        analyzer = _make(
            StreamDatasetAnalyzer, dataset, config=StreamConfig(window=30.0)
        )
        _run(analyzer, dataset)
        assert len(analyzer.window_summaries) == len(dataset.traces)
        for summary in analyzer.window_summaries:
            assert summary["window_seconds"] == 30.0
            assert summary["windows"] > 0
            assert summary["mbps_max"] >= summary["mbps_mean"] >= 0.0

    def test_window_observer_covers_every_packet(self, dataset):
        seen = []
        analyzer = _make(
            StreamDatasetAnalyzer,
            dataset,
            config=StreamConfig(window=30.0),
            window_observer=seen.append,
        )
        stats = analyzer.process_pcap(dataset.traces[0].path)
        assert seen
        assert [w.index for w in seen] == sorted(w.index for w in seen)
        # Decoded (non-runt) packets all land in some window.
        assert sum(w.packets for w in seen) == stats.packets
        assert sum(sum(w.conn_starts.values()) for w in seen) > 0


class TestCheckpointResume:
    def test_checkpointed_run_matches_plain(self, dataset, tmp_path):
        store = ConnStore(tmp_path / "store")
        plain = _run(_make(StreamDatasetAnalyzer, dataset), dataset)
        checked = _run(
            _make(
                StreamDatasetAnalyzer,
                dataset,
                config=StreamConfig(checkpoint_every=200),
                store=store,
                checkpoint_base="ck",
            ),
            dataset,
        )
        _assert_same_analysis(plain, checked)
        # Finished traces retire their checkpoint manifests.
        assert list(store.checkpoints()) == []

    def test_crash_resume_equals_uninterrupted(
        self, dataset, tmp_path, monkeypatch
    ):
        store = ConnStore(tmp_path / "store")
        plain = _run(_make(StreamDatasetAnalyzer, dataset), dataset)

        real_iter = PacketSource.__iter__
        budget = {"left": 350}

        def crashing(self):
            for pkt in real_iter(self):
                budget["left"] -= 1
                if budget["left"] < 0:
                    raise RuntimeError("simulated crash")
                yield pkt

        monkeypatch.setattr(PacketSource, "__iter__", crashing)
        crashed = _make(
            StreamDatasetAnalyzer,
            dataset,
            config=StreamConfig(checkpoint_every=100),
            store=store,
            checkpoint_base="ck",
        )
        with pytest.raises(RuntimeError):
            for trace in dataset.traces:
                crashed.process_pcap(trace.path)
        monkeypatch.setattr(PacketSource, "__iter__", real_iter)
        # The crash left a live checkpoint behind.
        assert list(store.checkpoints())
        resumed = _run(
            _make(
                StreamDatasetAnalyzer,
                dataset,
                config=StreamConfig(checkpoint_every=100),
                store=store,
                checkpoint_base="ck",
            ),
            dataset,
        )
        _assert_same_analysis(plain, resumed)
        assert list(store.checkpoints()) == []
