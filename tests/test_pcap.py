"""Tests for the pcap reader/writer."""

import io
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.packet import CapturedPacket, make_udp_packet
from repro.pcap.reader import PcapReader, read_pcap
from repro.pcap.records import PCAP_MAGIC, PcapGlobalHeader
from repro.pcap.writer import PcapWriter, write_pcap


def _sample_packets(n=5):
    return [
        make_udp_packet(float(i) + 0.25, 1, 2, 3, 4, 1000 + i, 53, payload=b"q" * (i * 10))
        for i in range(n)
    ]


class TestGlobalHeader:
    def test_round_trip(self):
        header = PcapGlobalHeader(snaplen=1500)
        decoded, swapped = PcapGlobalHeader.decode(header.encode())
        assert decoded.snaplen == 1500
        assert decoded.version_major == 2 and decoded.version_minor == 4
        assert not swapped

    def test_swapped_magic(self):
        data = bytearray(PcapGlobalHeader(snaplen=96).encode())
        # Byte-swap every field to simulate an opposite-endian writer.
        swapped = struct.pack(
            ">IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 96, 1
        )
        decoded, was_swapped = PcapGlobalHeader.decode(swapped)
        assert was_swapped
        assert decoded.snaplen == 96

    def test_rejects_bad_magic(self):
        with pytest.raises(ValueError):
            PcapGlobalHeader.decode(b"\x00" * 24)


class TestRoundTrip:
    def test_memory_round_trip(self):
        packets = _sample_packets()
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, snaplen=65535)
        writer.write_all(packets)
        buffer.seek(0)
        back = list(PcapReader(buffer))
        assert len(back) == len(packets)
        for original, restored in zip(packets, back):
            assert restored.data == original.data
            assert restored.wire_len == original.wire_len
            assert restored.ts == pytest.approx(original.ts, abs=1e-6)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.pcap"
        packets = _sample_packets(8)
        assert write_pcap(path, packets) == 8
        assert len(read_pcap(path)) == 8

    def test_snaplen_truncation(self, tmp_path):
        path = tmp_path / "short.pcap"
        big = make_udp_packet(1.0, 1, 2, 3, 4, 5, 6, payload=b"z" * 1000)
        write_pcap(path, [big], snaplen=68)
        with PcapReader.open(path) as reader:
            assert reader.snaplen == 68
            (packet,) = list(reader)
        assert packet.caplen == 68
        assert packet.wire_len == big.wire_len
        assert packet.truncated

    def test_timestamp_microsecond_rounding(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        # A timestamp whose fractional part rounds up to the next second.
        writer.write(CapturedPacket(ts=1.9999996, data=b"\x00" * 14, wire_len=14))
        buffer.seek(0)
        (packet,) = list(PcapReader(buffer))
        assert packet.ts == pytest.approx(2.0, abs=1e-5)

    def test_empty_file(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        buffer.seek(0)
        assert list(PcapReader(buffer)) == []


class TestCorruption:
    def test_truncated_record_header(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(CapturedPacket(ts=0.0, data=b"\x00" * 20, wire_len=20))
        data = buffer.getvalue()[:-25]  # cut into the record
        with pytest.raises(ValueError):
            list(PcapReader(io.BytesIO(data)))

    def test_truncated_record_body(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(CapturedPacket(ts=0.0, data=b"\x00" * 20, wire_len=20))
        data = buffer.getvalue()[:-5]
        with pytest.raises(ValueError):
            list(PcapReader(io.BytesIO(data)))

    def test_writer_rejects_bad_snaplen(self):
        with pytest.raises(ValueError):
            PcapWriter(io.BytesIO(), snaplen=0)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e9, allow_nan=False),
            st.binary(min_size=14, max_size=200),
        ),
        max_size=20,
    )
)
def test_pcap_round_trip_property(specs):
    """Arbitrary packet contents survive a write/read cycle."""
    packets = [CapturedPacket(ts=ts, data=data, wire_len=len(data)) for ts, data in specs]
    buffer = io.BytesIO()
    PcapWriter(buffer).write_all(packets)
    buffer.seek(0)
    back = list(PcapReader(buffer))
    assert [p.data for p in back] == [p.data for p in packets]
    assert [p.wire_len for p in back] == [p.wire_len for p in packets]
