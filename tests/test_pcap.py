"""Tests for the pcap reader/writer, fault injection, and error policies."""

import io
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.engine import DatasetAnalyzer
from repro.analysis.errors import (
    ErrorKind,
    ErrorPolicy,
    IngestionError,
    TraceErrorLog,
)
from repro.gen.faults import FAULTS, apply_fault
from repro.net.packet import CapturedPacket, make_udp_packet
from repro.pcap.reader import PcapReader, read_pcap
from repro.pcap.records import PCAP_MAGIC, RECORD_HEADER, PcapGlobalHeader
from repro.pcap.writer import PcapWriter, write_pcap


def _sample_packets(n=5):
    return [
        make_udp_packet(float(i) + 0.25, 1, 2, 3, 4, 1000 + i, 53, payload=b"q" * (i * 10))
        for i in range(n)
    ]


def _pcap_bytes(n=5, payload=b"q" * 32):
    """A valid in-memory pcap holding ``n`` UDP packets."""
    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    writer.write_all(
        make_udp_packet(float(i), 1, 2, 3, 4, 1000 + i, 53, payload=payload)
        for i in range(n)
    )
    return buffer.getvalue()


def _tolerant_log(path="<stream>"):
    return TraceErrorLog(policy=ErrorPolicy.TOLERANT, path=path)


class TestGlobalHeader:
    def test_round_trip(self):
        header = PcapGlobalHeader(snaplen=1500)
        decoded, swapped = PcapGlobalHeader.decode(header.encode())
        assert decoded.snaplen == 1500
        assert decoded.version_major == 2 and decoded.version_minor == 4
        assert not swapped

    def test_swapped_magic(self):
        data = bytearray(PcapGlobalHeader(snaplen=96).encode())
        # Byte-swap every field to simulate an opposite-endian writer.
        swapped = struct.pack(
            ">IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 96, 1
        )
        decoded, was_swapped = PcapGlobalHeader.decode(swapped)
        assert was_swapped
        assert decoded.snaplen == 96

    def test_rejects_bad_magic(self):
        with pytest.raises(ValueError):
            PcapGlobalHeader.decode(b"\x00" * 24)


class TestRoundTrip:
    def test_memory_round_trip(self):
        packets = _sample_packets()
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, snaplen=65535)
        writer.write_all(packets)
        buffer.seek(0)
        back = list(PcapReader(buffer))
        assert len(back) == len(packets)
        for original, restored in zip(packets, back):
            assert restored.data == original.data
            assert restored.wire_len == original.wire_len
            assert restored.ts == pytest.approx(original.ts, abs=1e-6)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.pcap"
        packets = _sample_packets(8)
        assert write_pcap(path, packets) == 8
        assert len(read_pcap(path)) == 8

    def test_snaplen_truncation(self, tmp_path):
        path = tmp_path / "short.pcap"
        big = make_udp_packet(1.0, 1, 2, 3, 4, 5, 6, payload=b"z" * 1000)
        write_pcap(path, [big], snaplen=68)
        with PcapReader.open(path) as reader:
            assert reader.snaplen == 68
            (packet,) = list(reader)
        assert packet.caplen == 68
        assert packet.wire_len == big.wire_len
        assert packet.truncated

    def test_timestamp_microsecond_rounding(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        # A timestamp whose fractional part rounds up to the next second.
        writer.write(CapturedPacket(ts=1.9999996, data=b"\x00" * 14, wire_len=14))
        buffer.seek(0)
        (packet,) = list(PcapReader(buffer))
        assert packet.ts == pytest.approx(2.0, abs=1e-5)

    def test_empty_file(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        buffer.seek(0)
        assert list(PcapReader(buffer)) == []


class TestCorruption:
    def test_truncated_record_header(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(CapturedPacket(ts=0.0, data=b"\x00" * 20, wire_len=20))
        data = buffer.getvalue()[:-25]  # cut into the record
        with pytest.raises(ValueError):
            list(PcapReader(io.BytesIO(data)))

    def test_truncated_record_body(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(CapturedPacket(ts=0.0, data=b"\x00" * 20, wire_len=20))
        data = buffer.getvalue()[:-5]
        with pytest.raises(ValueError):
            list(PcapReader(io.BytesIO(data)))

    def test_writer_rejects_bad_snaplen(self):
        with pytest.raises(ValueError):
            PcapWriter(io.BytesIO(), snaplen=0)

    def test_strict_errors_are_typed_and_located(self, tmp_path):
        path = tmp_path / "cut.pcap"
        path.write_bytes(_pcap_bytes(3)[:-5])
        with pytest.raises(IngestionError) as excinfo:
            read_pcap(path)
        err = excinfo.value
        assert err.kind is ErrorKind.TRUNCATED_BODY
        assert str(path) in str(err)
        assert err.offset is not None and err.offset > 24

    def test_open_closes_stream_on_bad_header(self, tmp_path, monkeypatch):
        """The satellite fix: a header parse failure must not leak the
        opened file handle, and the error must name the file."""
        import repro.pcap.reader as reader_module

        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 24)
        opened = []
        real_open = io.open

        def tracking_open(*args, **kwargs):
            stream = real_open(*args, **kwargs)
            opened.append(stream)
            return stream

        monkeypatch.setattr(reader_module.io, "open", tracking_open)
        with pytest.raises(ValueError) as excinfo:
            PcapReader.open(path)
        assert str(path) in str(excinfo.value)
        assert len(opened) == 1
        assert opened[0].closed

    def test_oversized_caplen_rejected(self):
        buffer = io.BytesIO()
        buffer.write(PcapGlobalHeader(snaplen=65535).encode())
        buffer.write(RECORD_HEADER.pack(0, 0, 0x40000000, 60))
        buffer.write(b"\x00" * 60)
        buffer.seek(0)
        with pytest.raises(IngestionError) as excinfo:
            list(PcapReader(buffer))
        assert excinfo.value.kind is ErrorKind.TRUNCATED_BODY


class TestRecoveryMode:
    """Tolerant reading: salvage the intact prefix, account the rest."""

    def test_salvages_prefix_of_cut_file(self):
        data = _pcap_bytes(10)[:-7]
        errors = _tolerant_log()
        reader = PcapReader(io.BytesIO(data), errors=errors)
        salvaged = list(reader)
        assert len(salvaged) == 9
        assert reader.records_read == 9
        assert errors.counts == {ErrorKind.TRUNCATED_BODY.value: 1}

    def test_salvages_up_to_partial_record_header(self):
        data = _pcap_bytes(4) + b"\x01\x02\x03"
        errors = _tolerant_log()
        assert len(list(PcapReader(io.BytesIO(data), errors=errors))) == 4
        assert errors.counts == {ErrorKind.TRUNCATED_HEADER.value: 1}

    def test_bad_magic_is_fatal_even_when_tolerant(self):
        from repro.analysis.errors import TraceQuarantined

        errors = _tolerant_log()
        with pytest.raises(TraceQuarantined):
            PcapReader(io.BytesIO(b"\xde\xad\xbe\xef" + b"\x00" * 20), errors=errors)
        assert errors.counts == {ErrorKind.BAD_MAGIC.value: 1}
        assert errors.quarantined


class TestDegenerateTraces:
    """Engine behavior on edge-case trace files (satellite task)."""

    @staticmethod
    def _analyze(path, policy):
        engine = DatasetAnalyzer("DX", error_policy=policy)
        stats = engine.process_pcap(path)
        engine.finish()
        return stats

    @pytest.mark.parametrize("policy", ["strict", "tolerant"])
    def test_empty_pcap_completes_under_both(self, tmp_path, policy):
        """A header-only pcap is *valid* (zero records): no policy may
        reject it, only report zero packets."""
        path = tmp_path / "empty.pcap"
        path.write_bytes(PcapGlobalHeader(snaplen=65535).encode())
        stats = self._analyze(path, policy)
        assert stats.packets == 0
        assert not stats.quarantined
        assert stats.total_errors == 0

    def test_zero_length_record_body(self, tmp_path):
        """A zero-caplen record decodes as a runt frame: tolerated with
        accounting, raised under strict."""
        path = tmp_path / "zero.pcap"
        path.write_bytes(apply_fault(_pcap_bytes(6), "zero_caplen", seed=3))
        stats = self._analyze(path, "tolerant")
        assert stats.errors == {ErrorKind.RUNT_FRAME.value: 1}
        assert not stats.quarantined
        with pytest.raises(IngestionError) as excinfo:
            self._analyze(path, "strict")
        assert excinfo.value.kind is ErrorKind.RUNT_FRAME
        assert str(path) in str(excinfo.value)

    def test_last_record_cut_mid_body(self, tmp_path):
        path = tmp_path / "cut.pcap"
        path.write_bytes(apply_fault(_pcap_bytes(6), "truncated_record_body", seed=3))
        stats = self._analyze(path, "tolerant")
        assert stats.packets == 5
        assert stats.errors == {ErrorKind.TRUNCATED_BODY.value: 1}
        assert stats.truncated_tail and not stats.quarantined
        with pytest.raises(IngestionError) as excinfo:
            self._analyze(path, "strict")
        assert excinfo.value.kind is ErrorKind.TRUNCATED_BODY


class TestFaultMatrix:
    """Every corruption class in gen.faults against every policy."""

    @pytest.fixture(scope="class")
    def clean(self):
        return _pcap_bytes(40)

    @pytest.mark.parametrize("name", sorted(FAULTS))
    def test_fault_changes_bytes_deterministically(self, clean, name):
        corrupted = apply_fault(clean, name, seed=11)
        assert corrupted != clean
        assert corrupted == apply_fault(clean, name, seed=11)

    @pytest.mark.parametrize("name", sorted(FAULTS))
    def test_tolerant_completes(self, clean, tmp_path, name):
        path = tmp_path / f"{name}.pcap"
        path.write_bytes(apply_fault(clean, name, seed=11))
        engine = DatasetAnalyzer("DX", error_policy="tolerant")
        stats = engine.process_pcap(path)
        analysis = engine.finish()
        assert len(analysis.traces) == 1
        if FAULTS[name].strict_fatal:
            # Structural damage must leave a trail: errors or quarantine.
            assert stats.total_errors > 0 or stats.quarantined
        else:
            # Wire-legal pathologies are absorbed without structural errors.
            assert not stats.quarantined
            assert stats.packets > 0

    @pytest.mark.parametrize(
        "name", sorted(n for n, f in FAULTS.items() if f.strict_fatal)
    )
    def test_strict_raises_typed_error(self, clean, tmp_path, name):
        path = tmp_path / f"{name}.pcap"
        path.write_bytes(apply_fault(clean, name, seed=11))
        engine = DatasetAnalyzer("DX", error_policy="strict")
        with pytest.raises(IngestionError) as excinfo:
            engine.process_pcap(path)
        assert str(path) in str(excinfo.value)
        assert isinstance(excinfo.value.kind, ErrorKind)

    @pytest.mark.parametrize(
        "name", sorted(n for n, f in FAULTS.items() if not f.strict_fatal)
    )
    def test_strict_tolerates_wire_legal_faults(self, clean, tmp_path, name):
        path = tmp_path / f"{name}.pcap"
        path.write_bytes(apply_fault(clean, name, seed=11))
        engine = DatasetAnalyzer("DX", error_policy="strict")
        stats = engine.process_pcap(path)
        assert stats.packets > 0

    @pytest.mark.parametrize(
        "name", sorted(n for n, f in FAULTS.items() if f.strict_fatal)
    )
    def test_skip_trace_quarantines(self, clean, tmp_path, name):
        path = tmp_path / f"{name}.pcap"
        path.write_bytes(apply_fault(clean, name, seed=11))
        engine = DatasetAnalyzer("DX", error_policy="skip-trace")
        stats = engine.process_pcap(path)
        assert stats.quarantined
        assert stats.total_errors > 0
        # The engine keeps going: a clean trace afterwards is analyzed.
        good = tmp_path / "good.pcap"
        good.write_bytes(clean)
        stats2 = engine.process_pcap(good)
        assert not stats2.quarantined
        assert stats2.packets == 40


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e9, allow_nan=False),
            st.binary(min_size=14, max_size=200),
        ),
        max_size=20,
    )
)
def test_pcap_round_trip_property(specs):
    """Arbitrary packet contents survive a write/read cycle."""
    packets = [CapturedPacket(ts=ts, data=data, wire_len=len(data)) for ts, data in specs]
    buffer = io.BytesIO()
    PcapWriter(buffer).write_all(packets)
    buffer.seek(0)
    back = list(PcapReader(buffer))
    assert [p.data for p in back] == [p.data for p in packets]
    assert [p.wire_len for p in back] == [p.wire_len for p in packets]
