"""Hypothesis property tests over the binary protocol codecs.

Round-trip invariants (decode(encode(x)) == x on the fields that matter)
and robustness invariants (decoders never crash on arbitrary bytes; they
raise ValueError or return structured data, nothing else).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.proto import cifs, dcerpc, dns, ncp, netbios, nfs, tls
from repro.proto import backupproto as bp


class TestSmbProperties:
    @given(
        command=st.sampled_from([
            cifs.CMD_NEGOTIATE, cifs.CMD_TRANS, cifs.CMD_READ_ANDX,
            cifs.CMD_WRITE_ANDX, cifs.CMD_NT_CREATE_ANDX, cifs.CMD_CLOSE,
        ]),
        is_response=st.booleans(),
        mid=st.integers(min_value=0, max_value=0xFFFF),
        data=st.binary(max_size=300),
    )
    def test_round_trip(self, command, is_response, mid, data):
        name = "\\PIPE\\SPOOLSS" if command == cifs.CMD_TRANS else ""
        msg = cifs.SmbMessage(
            command=command, is_response=is_response, mid=mid, name=name, data=data
        )
        back = cifs.SmbMessage.decode(msg.encode())
        assert back.command == command
        assert back.is_response == is_response
        assert back.mid == mid
        assert back.data == data

    @given(data=st.binary(max_size=120))
    def test_decoder_never_crashes(self, data):
        try:
            cifs.SmbMessage.decode(data)
        except ValueError:
            pass


class TestDcerpcProperties:
    @given(
        ptype=st.sampled_from([dcerpc.PDU_REQUEST, dcerpc.PDU_RESPONSE]),
        call_id=st.integers(min_value=0, max_value=0xFFFFFFFF),
        opnum=st.integers(min_value=0, max_value=0xFFFF),
        data=st.binary(max_size=400),
    )
    def test_round_trip(self, ptype, call_id, opnum, data):
        pdu = dcerpc.DcerpcPdu(ptype=ptype, call_id=call_id, opnum=opnum, data=data)
        back = dcerpc.DcerpcPdu.decode(pdu.encode())
        assert (back.ptype, back.call_id, back.opnum, back.data) == (
            ptype, call_id, opnum, data,
        )

    @given(pdus=st.lists(st.binary(min_size=0, max_size=50), max_size=5))
    def test_stream_parser_never_crashes(self, pdus):
        dcerpc.parse_pdu_stream(b"".join(pdus))


class TestNcpProperties:
    @given(
        sequence=st.integers(min_value=0, max_value=255),
        function=st.sampled_from([
            ncp.FUNC_READ_FILE, ncp.FUNC_WRITE_FILE, ncp.FUNC_FILE_DIR_INFO,
            ncp.FUNC_FILE_SEARCH, ncp.FUNC_DIRECTORY_SERVICE,
        ]),
        connection=st.integers(min_value=0, max_value=0xFFFF),
        data=st.binary(max_size=200),
    )
    def test_request_round_trip(self, sequence, function, connection, data):
        request = ncp.NcpRequest(
            sequence=sequence, function=function, connection=connection, data=data
        )
        back = ncp.NcpRequest.decode(request.encode())
        assert (back.sequence, back.function, back.connection, back.data) == (
            sequence, function, connection, data,
        )

    @given(messages=st.lists(st.binary(max_size=60), max_size=6))
    def test_framing_round_trip(self, messages):
        stream = b"".join(ncp.frame_ncp_ip(m) for m in messages)
        assert ncp.parse_ncp_ip_stream(stream) == messages


class TestNfsProperties:
    @given(
        xid=st.integers(min_value=0, max_value=0xFFFFFFFF),
        proc=st.sampled_from([
            nfs.PROC_GETATTR, nfs.PROC_READ, nfs.PROC_WRITE, nfs.PROC_LOOKUP,
        ]),
        data=st.binary(max_size=300),
    )
    def test_call_round_trip(self, xid, proc, data):
        call = nfs.RpcCall(
            xid=xid, proc=proc, data=data if proc == nfs.PROC_WRITE else b"",
            name="f" if proc == nfs.PROC_LOOKUP else "",
        )
        back = nfs.RpcCall.decode(call.encode())
        assert back.xid == xid
        assert back.proc == proc
        if proc == nfs.PROC_WRITE:
            assert back.data == data

    @given(records=st.lists(st.binary(max_size=100), max_size=5))
    def test_record_marking_round_trip(self, records):
        stream = b"".join(nfs.frame_tcp_record(r) for r in records)
        assert nfs.parse_tcp_records(stream) == records


class TestNbnsProperties:
    @given(
        ident=st.integers(min_value=0, max_value=0xFFFF),
        name=st.text(alphabet="ABCDEFGHIJKLMNOP0123456789", min_size=1, max_size=15),
        suffix=st.sampled_from([0x00, 0x03, 0x20, 0x1B, 0x1C, 0x1D]),
        is_response=st.booleans(),
    )
    def test_round_trip(self, ident, name, suffix, is_response):
        packet = netbios.NbnsPacket(
            ident=ident, opcode=netbios.NB_OPCODE_QUERY, name=name,
            suffix=suffix, is_response=is_response,
        )
        back = netbios.NbnsPacket.decode(packet.encode())
        assert back.ident == ident
        assert back.name == name.rstrip()
        assert back.suffix == suffix
        assert back.is_response == is_response

    @given(frames=st.lists(
        st.tuples(st.sampled_from([0x00, 0x81, 0x82, 0x85]), st.binary(max_size=80)),
        max_size=5,
    ))
    def test_nbss_stream_round_trip(self, frames):
        stream = b"".join(
            netbios.NbssFrame(frame_type, payload).encode()
            for frame_type, payload in frames
        )
        parsed = netbios.parse_nbss_stream(stream)
        assert [(f.frame_type, f.payload) for f in parsed] == frames


class TestTlsProperties:
    @given(payload=st.binary(min_size=1, max_size=60_000))
    def test_application_data_reassembles(self, payload):
        records = tls.parse_records(tls.build_application_data(payload))
        assert b"".join(r.fragment for r in records) == payload

    @given(data=st.binary(max_size=100))
    def test_parser_never_crashes(self, data):
        tls.parse_records(data)


class TestBackupProperties:
    @given(
        magic=st.sampled_from([bp.MAGIC_VERITAS, bp.MAGIC_DANTZ, bp.MAGIC_CONNECTED]),
        rec_type=st.sampled_from([bp.REC_CONTROL, bp.REC_DATA]),
        payload=st.binary(max_size=500),
    )
    def test_round_trip(self, magic, rec_type, payload):
        record = bp.BackupRecord(magic, rec_type, payload)
        back, consumed = bp.BackupRecord.decode(record.encode())
        assert back == record
        assert consumed == 9 + len(payload)


class TestDnsProperties:
    @given(data=st.binary(max_size=80))
    @settings(max_examples=200)
    def test_decoder_never_crashes(self, data):
        try:
            dns.DnsMessage.decode(data)
        except ValueError:
            pass
