"""Tests for the inbound-WAN generator (the §4 wan→ent flows)."""

import random

from repro.gen.apps.base import WindowContext
from repro.gen.apps.inbound_gen import InboundWanGenerator
from repro.gen.datasets import DATASETS
from repro.gen.session import IcmpExchange, Outcome, TcpSession
from repro.gen.topology import ENTERPRISE_NET


def _ctx(enterprise, seed=3, scale=0.05):
    config = DATASETS["D3"]
    subnet = enterprise.subnets_of_router(1)[0]
    return WindowContext(
        enterprise=enterprise, subnet=subnet, t0=0.0, t1=3600.0,
        rng=random.Random(seed), config=config, scale=scale,
    )


class TestInboundWanGenerator:
    def test_sources_are_external_targets_internal(self, enterprise):
        sessions = InboundWanGenerator().generate(_ctx(enterprise))
        assert sessions
        for session in sessions:
            if isinstance(session, TcpSession):
                assert session.client_ip not in ENTERPRISE_NET
                assert session.server_ip in ENTERPRISE_NET
            elif isinstance(session, IcmpExchange):
                assert session.src_ip not in ENTERPRISE_NET
                assert session.dst_ip in ENTERPRISE_NET

    def test_targets_on_monitored_subnet(self, enterprise):
        ctx = _ctx(enterprise)
        for session in InboundWanGenerator().generate(ctx):
            target = getattr(session, "server_ip", None) or session.dst_ip
            assert target in ctx.subnet.subnet

    def test_wan_rtts(self, enterprise):
        sessions = [
            s for s in InboundWanGenerator().generate(_ctx(enterprise))
            if isinstance(s, TcpSession)
        ]
        assert sum(1 for s in sessions if s.rtt > 0.005) > len(sessions) // 2

    def test_service_mix(self, enterprise):
        ports = set()
        for seed in range(5):
            for session in InboundWanGenerator().generate(_ctx(enterprise, seed=seed)):
                if isinstance(session, TcpSession):
                    ports.add(session.dport)
        assert {21, 22, 80} <= ports

    def test_some_attempts_fail(self, enterprise):
        outcomes = set()
        for seed in range(5):
            for session in InboundWanGenerator().generate(_ctx(enterprise, seed=seed)):
                if isinstance(session, TcpSession):
                    outcomes.add(session.outcome)
        assert Outcome.SUCCESS in outcomes
        assert Outcome.REJECTED in outcomes or Outcome.UNANSWERED in outcomes


class TestAnalyzeDataset:
    def test_wrapper_matches_manual_pipeline(self, enterprise, tmp_path):
        from repro.core.study import analyze_dataset
        from repro.gen.capture import generate_dataset

        traces = generate_dataset("D0", enterprise, tmp_path, seed=2, scale=0.002,
                                  max_windows=2)
        analysis = analyze_dataset("D0", traces)
        assert analysis.name == "D0"
        assert analysis.full_payload
        assert analysis.total_packets == traces.total_packets
        assert "http" in analysis.analyzer_results

    def test_known_scanners_forwarded(self, enterprise, tmp_path):
        from repro.core.study import analyze_dataset
        from repro.gen.capture import generate_dataset

        traces = generate_dataset("D0", enterprise, tmp_path, seed=2, scale=0.002,
                                  max_windows=2)
        analysis = analyze_dataset("D0", traces, known_scanners=(12345,))
        assert 12345 in analysis.scanner_sources
