"""Bounded-memory guarantees of the streaming path (tracemalloc).

The whole point of :mod:`repro.stream` is that peak memory follows the
live-flow population, not the trace size.  These tests pin that down
with ``tracemalloc``: the iterator form of :func:`read_pcap` and the
streaming engine must both peak far below the materialized trace, on a
trace big enough that the gap cannot be noise.
"""

from __future__ import annotations

import tracemalloc
from pathlib import Path

import pytest

from repro.net.packet import make_udp_packet
from repro.pcap.reader import read_pcap
from repro.pcap.writer import PcapWriter
from repro.stream.engine import StreamDatasetAnalyzer
from repro.stream.source import PacketSource

_PAYLOAD = b"m" * 400


def _write_trace(path: Path, packets: int = 8000, hosts: int = 50) -> int:
    """A trace of short UDP exchanges across a rotating host pool, so
    the live-flow population stays tiny while the file grows."""
    with PcapWriter.open(path) as writer:
        for i in range(packets):
            src = 0x0A000001 + (i % hosts)
            writer.write(
                make_udp_packet(
                    float(i) * 0.01, 1, 2, src, 0x0A00FF01,
                    40000 + (i % hosts), 9999, _PAYLOAD,
                )
            )
    return path.stat().st_size


def _peak_of(fn) -> int:
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


@pytest.fixture(scope="module")
def big_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("mem") / "big.pcap"
    size = _write_trace(path)
    return path, size


class TestReadPcapMaterialize:
    def test_iterator_yields_same_packets(self, big_trace):
        path, _ = big_trace
        materialized = read_pcap(path)
        streamed = list(read_pcap(path, materialize=False))
        assert streamed == materialized

    def test_materialized_form_is_a_list(self, big_trace):
        path, _ = big_trace
        packets = read_pcap(path)
        assert isinstance(packets, list)
        assert len(packets) == 8000

    def test_iterator_peak_memory_stays_sublinear(self, big_trace):
        path, size = big_trace
        assert size > 3_000_000  # the gap below must not be noise

        materialized_peak = _peak_of(lambda: read_pcap(path))

        def drain():
            for _ in read_pcap(path, materialize=False):
                pass

        streamed_peak = _peak_of(drain)
        # Materializing holds every record at once; the iterator holds
        # one.  A 10x margin keeps the assertion robust to interpreter
        # bookkeeping noise while still proving the asymptotic claim.
        assert materialized_peak > size
        assert streamed_peak < size / 10
        assert streamed_peak < materialized_peak / 10


class TestStreamEngineMemory:
    def test_engine_peak_is_bounded_by_flows_not_trace(self, big_trace):
        path, size = big_trace

        def analyze():
            analyzer = StreamDatasetAnalyzer("MEM", full_payload=True)
            analyzer.process_pcap(path)
            analyzer.finish()

        peak = _peak_of(analyze)
        # 8000 packets collapse into ~100 flow records plus the window
        # aggregates: nowhere near the 3.7 MB trace.
        assert peak < size / 3

    def test_packet_source_tracks_offsets(self, big_trace):
        path, _ = big_trace
        with PacketSource.open(path) as source:
            first_offset = source.offset
            for index, _ in enumerate(source):
                if index >= 9:
                    break
            assert source.packets_read == 10
            assert source.offset > first_offset

    def test_in_memory_source_has_no_offset(self):
        source = PacketSource([], path="<memory>")
        assert source.offset is None
        with pytest.raises(ValueError):
            source.resume_at(0, 0)
