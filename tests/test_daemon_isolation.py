"""Per-tenant isolation: one bad feed never perturbs its neighbors.

The guarantee under test is structural — separate processes, separate
flow tables, separate artifact trees — but the assertion is stronger
than "the healthy tenant finished": its rolling-window artifacts must
be **byte-identical** to a solo run with no bad neighbor at all, under
both failure shapes the daemon distinguishes (a noisy feed the tolerant
policy survives, and a poison feed the strict policy quarantines).
"""

from __future__ import annotations

import json

import pytest

from repro.daemon import (
    DaemonConfig,
    DaemonSupervisor,
    TenantSpec,
    tenant_dir,
    tenant_digest,
)
from repro.gen.capture import generate_dataset
from repro.gen.faults import corrupt_pcap
from repro.gen.topology import Enterprise
from repro.runtime import RetryPolicy, TelemetryLog


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    out = tmp_path_factory.mktemp("daemon-iso-traces")
    return generate_dataset(
        "D0", Enterprise(seed=7), out, seed=7, scale=0.004, max_windows=3
    )


def run_daemon(tenants, store, policy="tolerant"):
    telemetry = TelemetryLog()
    statuses = DaemonSupervisor(
        tenants, store,
        config=DaemonConfig(
            checkpoint_every=200,
            error_policy=policy,
            retry=RetryPolicy(backoff=0.05, heartbeat_timeout=5.0,
                              max_crashes=3),
        ),
        telemetry=telemetry,
    ).run(install_signals=False)
    return statuses, telemetry


@pytest.fixture(scope="module")
def healthy_reference(dataset, tmp_path_factory):
    """Digest of the healthy tenant run solo — the isolation yardstick."""
    store = tmp_path_factory.mktemp("daemon-iso-solo")
    statuses, _ = run_daemon(
        [TenantSpec("good", dataset.traces[0].path)], store
    )
    assert statuses == {"good": "done"}
    return tenant_digest(store, "good")


def test_noisy_tenant_under_tolerant_policy_is_contained(
    dataset, tmp_path, healthy_reference
):
    # A tenant whose every trace is corrupted mid-stream.
    noisy_dir = tmp_path / "noisy-traces"
    noisy_dir.mkdir()
    for fault, trace in zip(
        ("truncated_record_body", "byte_flip_l3"), dataset.traces[1:]
    ):
        corrupt_pcap(trace.path, fault, seed=5,
                     out_path=noisy_dir / trace.path.name)

    store = tmp_path / "store"
    statuses, _ = run_daemon(
        [
            TenantSpec("good", dataset.traces[0].path),
            TenantSpec("noisy", noisy_dir),
        ],
        store,
    )
    # Tolerant policy: the noisy feed survives, with honest accounting.
    assert statuses == {"good": "done", "noisy": "done"}
    markers = sorted((tenant_dir(store, "noisy") / "traces").glob("t*.json"))
    records = [json.loads(m.read_text()) for m in markers]
    assert any(r["errors"] or r["quarantined"] for r in records)
    # And the healthy tenant's artifacts are exactly its solo artifacts.
    assert tenant_digest(store, "good") == healthy_reference


def test_poison_tenant_under_strict_policy_is_quarantined(
    dataset, tmp_path, healthy_reference
):
    poison = tmp_path / "poison.pcap"
    corrupt_pcap(dataset.traces[1].path, "truncated_record_body", seed=5,
                 out_path=poison)

    store = tmp_path / "store"
    statuses, telemetry = run_daemon(
        [
            TenantSpec("good", dataset.traces[0].path),
            TenantSpec("poison", poison),
        ],
        store,
        policy="strict",
    )
    # Strict policy: the corruption is a typed crash, every restart hits
    # it again (the checkpoint resumes into the same bad record), and
    # three consecutive crashes are poison.
    assert statuses == {"good": "done", "poison": "quarantined"}
    errors = [
        e for e in telemetry.unit_events("feed_error")
        if e["tenant"] == "poison"
    ]
    assert errors and all(e["kind"] == "truncated_body" for e in errors)
    assert (tenant_dir(store, "poison") / "quarantined.json").exists()
    assert tenant_digest(store, "good") == healthy_reference
