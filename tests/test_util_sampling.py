"""Tests for repro.util.sampling."""

import random

import pytest

from repro.util.sampling import (
    BoundedPareto,
    Choice,
    Constant,
    Exponential,
    LogNormal,
    Mixture,
    Uniform,
    weighted_choice,
    zipf_weights,
)


@pytest.fixture
def rng():
    return random.Random(123)


class TestConstant:
    def test_sample(self, rng):
        assert Constant(7.0).sample(rng) == 7.0

    def test_sample_int_clamps(self, rng):
        assert Constant(-5).sample_int(rng, minimum=1) == 1


class TestUniform:
    def test_range(self, rng):
        dist = Uniform(2.0, 4.0)
        assert all(2.0 <= dist.sample(rng) <= 4.0 for _ in range(200))

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Uniform(4.0, 2.0)


class TestLogNormal:
    def test_median_approx(self, rng):
        dist = LogNormal(median=100.0, sigma=1.0)
        samples = sorted(dist.sample(rng) for _ in range(4000))
        median = samples[len(samples) // 2]
        assert 80 < median < 125

    def test_positive(self, rng):
        dist = LogNormal(median=1.0, sigma=2.0)
        assert all(dist.sample(rng) > 0 for _ in range(200))

    def test_sigma_zero_degenerate(self, rng):
        assert LogNormal(median=5.0, sigma=0.0).sample(rng) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogNormal(median=0.0, sigma=1.0)
        with pytest.raises(ValueError):
            LogNormal(median=1.0, sigma=-1.0)


class TestBoundedPareto:
    def test_within_bounds(self, rng):
        dist = BoundedPareto(low=1.0, high=1000.0, alpha=0.8)
        assert all(1.0 <= dist.sample(rng) <= 1000.0 for _ in range(500))

    def test_heavy_tail_orders_of_magnitude(self, rng):
        dist = BoundedPareto(low=1.0, high=100_000.0, alpha=0.6)
        samples = [dist.sample(rng) for _ in range(3000)]
        assert max(samples) / min(samples) > 100

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedPareto(low=10.0, high=1.0, alpha=1.0)
        with pytest.raises(ValueError):
            BoundedPareto(low=1.0, high=10.0, alpha=0.0)


class TestExponential:
    def test_mean_approx(self, rng):
        dist = Exponential(mean=10.0)
        samples = [dist.sample(rng) for _ in range(5000)]
        assert 9.0 < sum(samples) / len(samples) < 11.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Exponential(mean=0.0)


class TestChoice:
    def test_only_listed_values(self, rng):
        dist = Choice(values=(2.0, 10.0, 260.0))
        assert all(dist.sample(rng) in (2.0, 10.0, 260.0) for _ in range(100))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Choice(values=())


class TestMixture:
    def test_dual_mode(self, rng):
        """The NFS-style mixture keeps both modes present."""
        dist = Mixture([(0.5, Constant(100.0)), (0.5, Constant(8192.0))])
        samples = [dist.sample(rng) for _ in range(400)]
        assert 100.0 in samples and 8192.0 in samples

    def test_weights_normalized(self, rng):
        dist = Mixture([(10.0, Constant(1.0)), (30.0, Constant(2.0))])
        samples = [dist.sample(rng) for _ in range(2000)]
        frac_two = sum(1 for s in samples if s == 2.0) / len(samples)
        assert 0.65 < frac_two < 0.85

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Mixture([])

    def test_rejects_zero_weights(self):
        with pytest.raises(ValueError):
            Mixture([(0.0, Constant(1.0))])


class TestZipf:
    def test_weights_sum_to_one(self):
        weights = zipf_weights(100, alpha=1.0)
        assert sum(weights) == pytest.approx(1.0)

    def test_decreasing(self):
        weights = zipf_weights(50, alpha=0.9)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestWeightedChoice:
    def test_respects_weights(self, rng):
        picks = [weighted_choice(rng, ["a", "b"], [0.99, 0.01]) for _ in range(300)]
        assert picks.count("a") > 250

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [0.5, 0.5])
