"""The daemon supervisor: restart, quarantine, drain, watchdog.

Real forked feed processes throughout — the fault injection rides the
fork: monkeypatching ``repro.daemon.feed.run_feed`` in the parent is
inherited by every child the supervisor launches, which gives each test
a deterministic crash script without touching the supervisor itself.
The chaos-plane variant (checked separately) kills the feed inside the
fsio publish seam instead, exactly as the CI soak does.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from pathlib import Path

import pytest

import repro.daemon.feed as feed_module
from repro.chaos import FaultKind, FaultPlane, FaultRule, activate, deactivate
from repro.chaos.faults import CRASH_EXIT_CODE
from repro.daemon import (
    AlertEngine,
    AlertRule,
    DaemonConfig,
    DaemonSupervisor,
    TenantSpec,
    parse_tenant,
    tenant_dir,
    tenant_digest,
)
from repro.gen.capture import generate_dataset
from repro.gen.topology import Enterprise
from repro.runtime import RetryPolicy, TelemetryLog

REAL_RUN_FEED = feed_module.run_feed


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    out = tmp_path_factory.mktemp("daemon-sup-traces")
    return generate_dataset(
        "D0", Enterprise(seed=7), out, seed=7, scale=0.004, max_windows=3
    )


def fast_config(**overrides):
    defaults = dict(
        checkpoint_every=200,
        retry=RetryPolicy(backoff=0.05, heartbeat_timeout=5.0, max_crashes=3),
    )
    defaults.update(overrides)
    return DaemonConfig(**defaults)


def supervise(tenants, store, *, config=None, alerts=None):
    telemetry = TelemetryLog()
    supervisor = DaemonSupervisor(
        tenants, store, config=config or fast_config(),
        alerts=alerts, telemetry=telemetry,
    )
    return supervisor.run(install_signals=False), telemetry


def crash_until(counter: Path, crashes: int, exit_code: int = 13):
    """A run_feed wrapper that dies hard on its first ``crashes`` runs."""
    def wrapper(payload, drain, send):
        seen = int(counter.read_text()) if counter.exists() else 0
        if seen < crashes:
            counter.write_text(str(seen + 1))
            os._exit(exit_code)
        return REAL_RUN_FEED(payload, drain, send)
    return wrapper


def crash_after_each_trace(counter: Path, crashes: int):
    """Dies hard right after each trace-completion message, ``crashes``
    times — every crash is preceded by forward progress."""
    def wrapper(payload, drain, send):
        seen = int(counter.read_text()) if counter.exists() else 0

        def tripwire(kind, body):
            send(kind, body)
            if kind == "trace" and seen < crashes:
                counter.write_text(str(seen + 1))
                os._exit(29)

        return REAL_RUN_FEED(payload, drain, tripwire)
    return wrapper


def freeze_once(marker: Path):
    """SIGSTOPs its own process on the first run — every thread freezes,
    heartbeats included, which is what a wedged feed looks like."""
    def wrapper(payload, drain, send):
        if not marker.exists():
            marker.write_text("frozen")
            os.kill(os.getpid(), signal.SIGSTOP)
            time.sleep(60)  # unreachable unless resumed; watchdog kills us
        return REAL_RUN_FEED(payload, drain, send)
    return wrapper


class TestHappyPath:
    def test_two_tenants_run_to_done(self, dataset, tmp_path):
        tenants = [
            TenantSpec("alpha", dataset.traces[0].path),
            TenantSpec("beta", dataset.traces[1].path),
        ]
        alerts = AlertEngine([AlertRule(
            name="busy", metric="packets", threshold=1.0, clear_threshold=1.0,
        )])
        statuses, telemetry = supervise(tenants, tmp_path / "store",
                                        alerts=alerts)
        assert statuses == {"alpha": "done", "beta": "done"}
        for name in ("alpha", "beta"):
            result = json.loads(
                (tenant_dir(tmp_path / "store", name) / "result.json")
                .read_text()
            )
            assert result["tenant"] == name and result["packets"] > 0
        events = {e["event"] for e in telemetry.events}
        assert {"daemon_start", "feed_start", "feed_window", "feed_trace",
                "feed_complete", "daemon_stop", "alert_raise"} <= events
        stop = telemetry.unit_events("daemon_stop")[0]
        assert stop["quarantined"] == 0 and stop["drained"] == 0
        # Windows flowed through telemetry for both tenants.
        seen = {e["tenant"] for e in telemetry.unit_events("feed_window")}
        assert seen == {"alpha", "beta"}

    def test_validation_rejects_bad_tenant_sets(self, dataset, tmp_path):
        with pytest.raises(ValueError, match="at least one"):
            DaemonSupervisor([], tmp_path)
        spec = TenantSpec("a", dataset.traces[0].path)
        with pytest.raises(ValueError, match="duplicate"):
            DaemonSupervisor([spec, TenantSpec("a", dataset.traces[1].path)],
                             tmp_path)


class TestRestart:
    def test_crashing_feed_restarts_with_exponential_backoff(
        self, dataset, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            feed_module, "run_feed",
            crash_until(tmp_path / "crashes", 2),
        )
        statuses, telemetry = supervise(
            [TenantSpec("flaky", dataset.traces[0].path)], tmp_path / "store"
        )
        assert statuses == {"flaky": "done"}
        crashes = telemetry.unit_events("feed_crash")
        assert [e["crashes"] for e in crashes] == [1, 2]
        assert all(e["exit_code"] == 13 for e in crashes)
        restarts = telemetry.unit_events("feed_restart")
        # The scheduler's doubling curve: backoff * 2**(streak-1).
        assert [e["backoff_s"] for e in restarts] == [0.05, 0.1]
        starts = telemetry.unit_events("feed_start")
        assert [e["attempt"] for e in starts] == [1, 2, 3]

    def test_trace_completion_resets_the_crash_streak(self, dataset, tmp_path,
                                                      monkeypatch):
        # Three crashes — at the quarantine budget — but each one comes
        # right after a completed trace, so none are consecutive.
        monkeypatch.setattr(
            feed_module, "run_feed",
            crash_after_each_trace(tmp_path / "crashes", 3),
        )
        statuses, telemetry = supervise(
            [TenantSpec("steady", dataset.traces[0].path.parent)],
            tmp_path / "store",
        )
        assert statuses == {"steady": "done"}
        assert telemetry.unit_events("feed_quarantined") == []
        crashes = telemetry.unit_events("feed_crash")
        assert len(crashes) == 3
        assert all(e["crashes"] == 1 for e in crashes)

    def test_hung_feed_is_killed_and_restarted(self, dataset, tmp_path,
                                               monkeypatch):
        monkeypatch.setattr(
            feed_module, "run_feed", freeze_once(tmp_path / "frozen"),
        )
        config = fast_config(
            retry=RetryPolicy(backoff=0.05, heartbeat_timeout=0.6,
                              max_crashes=3),
        )
        statuses, telemetry = supervise(
            [TenantSpec("wedged", dataset.traces[0].path)],
            tmp_path / "store", config=config,
        )
        assert statuses == {"wedged": "done"}
        hangs = telemetry.unit_events("feed_hang")
        assert len(hangs) == 1 and hangs[0]["silent_s"] >= 0.6
        # The hang-kill is accounted as a crash, then the retry finishes.
        assert [e["crashes"] for e in telemetry.unit_events("feed_crash")] == [1]


class TestQuarantine:
    def test_poison_feed_is_quarantined_and_neighbors_unaffected(
        self, dataset, tmp_path
    ):
        # Reference: the healthy tenant alone, no faults.
        solo, _ = supervise(
            [TenantSpec("good", dataset.traces[0].path)], tmp_path / "solo"
        )
        assert solo == {"good": "done"}
        reference = tenant_digest(tmp_path / "solo", "good")

        # The chaos plane kills tenant bad inside its first window
        # publish; per-process fault counters re-arm in every restarted
        # child, so the crash is deterministic across incarnations.
        store = tmp_path / "store"
        plane = FaultPlane(seed=3, rules=[FaultRule(
            FaultKind.CRASH, op="publish", path="*daemon/bad/windows/*",
            at=(1,),
        )])
        activate(plane)
        try:
            statuses, telemetry = supervise(
                [
                    TenantSpec("good", dataset.traces[0].path),
                    TenantSpec("bad", dataset.traces[1].path),
                ],
                store,
            )
        finally:
            deactivate()
        assert statuses == {"good": "done", "bad": "quarantined"}

        crashes = telemetry.unit_events("feed_crash")
        assert [e["crashes"] for e in crashes] == [1, 2, 3]
        assert all(e["exit_code"] == CRASH_EXIT_CODE for e in crashes)
        assert all(e["kind"] == "worker_error" for e in crashes)

        quarantined = telemetry.unit_events("feed_quarantined")
        assert len(quarantined) == 1
        event = quarantined[0]
        assert event["tenant"] == "bad"
        assert event["crashes"] == 3
        assert event["kind"] == "worker_error"

        record = json.loads(
            (tenant_dir(store, "bad") / "quarantined.json").read_text()
        )
        assert record["kind"] == "worker_error" and record["crashes"] == 3

        # The healthy tenant's artifacts are byte-identical to its solo
        # run — the isolation guarantee, measured.
        assert tenant_digest(store, "good") == reference
        stop = telemetry.unit_events("daemon_stop")[0]
        assert stop["quarantined"] == 1


class TestDrain:
    def test_graceful_drain_checkpoints_and_resumes_byte_identically(
        self, dataset, tmp_path
    ):
        tenants = [
            TenantSpec("alpha", dataset.traces[0].path),
            TenantSpec("beta", dataset.traces[1].path),
        ]
        solo, _ = supervise(tenants, tmp_path / "reference")
        assert set(solo.values()) == {"done"}
        reference = {
            name: tenant_digest(tmp_path / "reference", name)
            for name in ("alpha", "beta")
        }

        # Pace the feeds so the stop lands mid-trace, then drain.
        store = tmp_path / "store"
        supervisor = DaemonSupervisor(
            tenants, store,
            config=fast_config(packet_rate=300.0, drain_timeout=20.0),
            telemetry=TelemetryLog(),
        )
        threading.Timer(0.7, supervisor.request_stop).start()
        statuses = supervisor.run(install_signals=False)
        assert set(statuses.values()) <= {"drained", "done"}
        assert "drained" in statuses.values()

        # Restart at full speed: resumes the checkpoints, finishes, and
        # the window artifacts match the uninterrupted run exactly.
        resumed, _ = supervise(tenants, store)
        assert resumed == {"alpha": "done", "beta": "done"}
        for name, digest in reference.items():
            assert tenant_digest(store, name) == digest


class TestTenantParsing:
    def test_parse_tenant_splits_name_and_source(self, dataset):
        spec = parse_tenant(f"edge={dataset.traces[0].path}")
        assert spec.name == "edge"
        assert spec.traces() == [dataset.traces[0].path]

    def test_directory_tenant_globs_sorted_pcaps(self, dataset):
        spec = parse_tenant(f"site={dataset.traces[0].path.parent}")
        assert spec.traces() == sorted(t.path for t in dataset.traces)

    @pytest.mark.parametrize("text", [
        "no-equals", "=path", "name=", "a/b=path", "a b=path", "a.b=path",
    ])
    def test_malformed_specs_rejected(self, text):
        with pytest.raises(ValueError):
            parse_tenant(text)


class TestIdleMaintenance:
    def test_idle_ticks_scrub_and_compact_the_store(self, dataset, tmp_path):
        store = tmp_path / "store"
        statuses, telemetry = supervise(
            [TenantSpec("alpha", dataset.traces[0].path)], store,
            config=fast_config(
                maintenance_idle_s=0.0,
                maintenance_interval=0.0,
                maintenance_budget=16,
            ),
        )
        assert statuses == {"alpha": "done"}
        ticks = telemetry.unit_events("maintenance")
        assert ticks, "idle daemon never ran a maintenance increment"
        assert telemetry.unit_events("maintenance_error") == []
        # The increments made real progress and persisted their cursor.
        assert any(e["objects_checked"] > 0 or e["manifests_checked"] > 0
                   or e["scrub_phase"] == "objects" for e in ticks)
        assert (store / "scrub-cursor.json").exists()

    def test_no_maintenance_disables_the_idle_tick(self, dataset, tmp_path):
        store = tmp_path / "store"
        statuses, telemetry = supervise(
            [TenantSpec("alpha", dataset.traces[0].path)], store,
            config=fast_config(
                maintenance=False,
                maintenance_idle_s=0.0,
                maintenance_interval=0.0,
            ),
        )
        assert statuses == {"alpha": "done"}
        events = {e["event"] for e in telemetry.events}
        assert "maintenance" not in events
        assert not (store / "scrub-cursor.json").exists()
