"""Tests for the extension analyses: host roles and scan characterization."""

from repro.analysis.conn import ConnRecord, ConnState
from repro.analysis.roles import classify_roles
from repro.analysis.scans import characterize_scanners
from repro.util.addr import ip_to_int

_SERVER = ip_to_int("131.243.5.5")
_WAN = ip_to_int("8.8.8.8")


def _client(i: int) -> int:
    return ip_to_int("131.243.1.0") + 1 + i


def _conn(orig, resp, resp_port=25, state=ConnState.SF, proto="tcp",
          ts=0.0, resp_bytes=100):
    return ConnRecord(
        proto=proto, orig_ip=orig, resp_ip=resp, orig_port=40000,
        resp_port=resp_port, first_ts=ts, last_ts=ts + 0.1, state=state,
        orig_bytes=50, resp_bytes=resp_bytes,
    )


class TestRoleClassification:
    def test_server_detected_from_distinct_clients(self):
        conns = [_conn(_client(i), _SERVER, 25) for i in range(8)]
        report = classify_roles(conns)
        profile = report.profiles[_SERVER]
        assert "smtp-server" in profile.roles
        assert profile.kind == "server"

    def test_few_clients_not_a_server(self):
        conns = [_conn(_client(i), _SERVER, 25) for i in range(3)]
        report = classify_roles(conns)
        assert report.profiles[_SERVER].roles == []

    def test_repeat_clients_counted_once(self):
        conns = [_conn(_client(0), _SERVER, 25) for _ in range(50)]
        report = classify_roles(conns)
        assert report.profiles[_SERVER].served["SMTP"] == 1

    def test_rejected_probes_do_not_create_servers(self):
        """A scanner's rejected probes must not make hosts look like
        servers."""
        conns = [
            _conn(_client(0), _SERVER + i, 445, state=ConnState.REJ)
            for i in range(60)
        ]
        report = classify_roles(conns)
        assert all(not p.roles for ip, p in report.profiles.items() if ip != _client(0))

    def test_client_kind_from_fanout(self):
        conns = [_conn(_client(0), _SERVER + i, 80) for i in range(5)]
        report = classify_roles(conns)
        assert report.profiles[_client(0)].kind == "client"

    def test_mixed_kind(self):
        conns = [_conn(_client(i), _SERVER, 53, proto="udp") for i in range(8)]
        conns += [_conn(_SERVER, _WAN + i, 53, proto="udp") for i in range(5)]
        report = classify_roles(conns)
        assert report.profiles[_SERVER].kind == "mixed"

    def test_wan_hosts_not_profiled(self):
        conns = [_conn(_WAN, _SERVER, 25)]
        report = classify_roles(conns)
        assert _WAN not in report.profiles

    def test_servers_for_ordering(self):
        busy, quiet = _SERVER, _SERVER + 1
        conns = [_conn(_client(i), busy, 80) for i in range(20)]
        conns += [_conn(_client(i), quiet, 80) for i in range(6)]
        report = classify_roles(conns)
        ranked = report.servers_for("HTTP")
        assert [p.ip for p in ranked] == [busy, quiet]

    def test_kind_counts(self):
        conns = [_conn(_client(i), _SERVER, 25) for i in range(8)]
        counts = classify_roles(conns).kind_counts()
        assert counts["server"] == 1
        assert counts["quiet"] == 8  # single-peer clients are quiet


class TestScanCharacterization:
    def _sweep(self, source, count=60, port=445, state=ConnState.REJ, proto="tcp"):
        return [
            _conn(source, ip_to_int("131.243.9.0") + i, port, state=state,
                  proto=proto, ts=i * 0.05, resp_bytes=0)
            for i in range(count)
        ]

    def test_profile_built(self):
        scanner = ip_to_int("131.243.2.99")
        report = characterize_scanners(self._sweep(scanner))
        profile = report.profiles[scanner]
        assert profile.distinct_targets == 60
        assert profile.conns == 60
        assert profile.outcomes["REJ"] == 60
        assert profile.ports[445] == 60
        assert not profile.is_icmp_scanner

    def test_probe_rate(self):
        scanner = ip_to_int("131.243.2.99")
        report = characterize_scanners(self._sweep(scanner))
        # 60 probes over ~3 seconds.
        assert 10 < report.profiles[scanner].probe_rate < 40

    def test_icmp_scanner_flagged(self):
        scanner = _WAN
        report = characterize_scanners(self._sweep(scanner, proto="icmp", state=ConnState.EST))
        assert report.profiles[scanner].is_icmp_scanner

    def test_engaged_services_tracked(self):
        """§3: scanners engage otherwise-idle services."""
        scanner = ip_to_int("131.243.2.99")
        conns = self._sweep(scanner, count=59)
        conns.append(_conn(scanner, ip_to_int("131.243.9.200"), 445,
                           state=ConnState.SF, ts=99.0, resp_bytes=300))
        report = characterize_scanners(conns)
        assert 445 in report.engaged_service_ports()
        assert report.profiles[scanner].answered_fraction > 0

    def test_removed_fraction(self):
        scanner = ip_to_int("131.243.2.99")
        conns = self._sweep(scanner) + [
            _conn(_client(i), _SERVER, 25) for i in range(60)
        ]
        report = characterize_scanners(conns)
        assert report.removed_fraction == 0.5

    def test_known_scanner_profiled_even_below_threshold(self):
        scanner = ip_to_int("131.243.2.99")
        conns = self._sweep(scanner, count=10)
        report = characterize_scanners(conns, known_scanners=[scanner])
        assert report.profiles[scanner].conns == 10

    def test_by_extent_ordering(self):
        wide = ip_to_int("131.243.2.99")
        narrow = ip_to_int("131.243.2.98")
        conns = self._sweep(wide, count=80) + self._sweep(narrow, count=55)
        report = characterize_scanners(conns)
        assert [p.source for p in report.by_extent()] == [wide, narrow]
