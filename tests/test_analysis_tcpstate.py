"""Tests for TCP flow state (repro.analysis.tcpstate)."""

from repro.analysis.conn import ConnState
from repro.analysis.tcpstate import TcpDirectionState, TcpFlowState
from repro.net.tcp import ACK, FIN, PSH, RST, SYN


def _segment(state: TcpFlowState, from_orig: bool, seq: int, flags: int, payload: bytes = b""):
    state.on_segment(from_orig, seq, flags, payload, len(payload))


class TestHandshakeStates:
    def test_full_handshake(self):
        state = TcpFlowState()
        _segment(state, True, 100, SYN)
        _segment(state, False, 500, SYN | ACK)
        _segment(state, True, 101, ACK)
        assert state.established
        assert state.final_state() == ConnState.EST

    def test_clean_close(self):
        state = TcpFlowState()
        _segment(state, True, 100, SYN)
        _segment(state, False, 500, SYN | ACK)
        _segment(state, True, 101, ACK)
        _segment(state, True, 101, FIN | ACK)
        _segment(state, False, 501, FIN | ACK)
        _segment(state, True, 103, ACK)
        assert state.final_state() == ConnState.SF

    def test_rejected(self):
        state = TcpFlowState()
        _segment(state, True, 100, SYN)
        _segment(state, False, 0, RST | ACK)
        assert state.final_state() == ConnState.REJ
        assert not state.established

    def test_unanswered(self):
        state = TcpFlowState()
        for _ in range(3):
            _segment(state, True, 100, SYN)
        assert state.final_state() == ConnState.S0

    def test_reset_after_established(self):
        state = TcpFlowState()
        _segment(state, True, 100, SYN)
        _segment(state, False, 500, SYN | ACK)
        _segment(state, True, 101, RST | ACK)
        assert state.final_state() == ConnState.RSTO

    def test_midstream_pickup(self):
        state = TcpFlowState()
        _segment(state, True, 5000, ACK | PSH, b"data")
        assert state.final_state() == ConnState.OTH
        assert state.established  # data flowing implies it was established


class TestRetransmissionDetection:
    def _established(self, collect=False) -> TcpFlowState:
        state = TcpFlowState(collect)
        _segment(state, True, 100, SYN)
        _segment(state, False, 500, SYN | ACK)
        _segment(state, True, 101, ACK)
        return state

    def test_no_retransmits_in_order(self):
        state = self._established()
        _segment(state, True, 101, ACK, b"a" * 100)
        _segment(state, True, 201, ACK, b"b" * 100)
        assert state.orig.retransmits == 0

    def test_duplicate_segment_counted(self):
        state = self._established()
        _segment(state, True, 101, ACK | PSH, b"a" * 100)
        _segment(state, True, 101, ACK | PSH, b"a" * 100)
        assert state.orig.retransmits == 1
        assert state.orig.retransmit_bytes == 100

    def test_keepalive_counted_separately(self):
        """A 1-byte probe just below next_seq is a keep-alive, not loss."""
        state = self._established()
        _segment(state, True, 101, ACK, b"data")
        _segment(state, True, 104, ACK, b"\x00")  # seq = next_seq - 1
        assert state.orig.keepalive_retransmits == 1
        assert state.orig.retransmits == 0

    def test_one_byte_deep_retransmit_not_keepalive(self):
        state = self._established()
        _segment(state, True, 101, ACK, b"0123456789")
        _segment(state, True, 101, ACK, b"\x00")  # 1 byte but 10 below next
        assert state.orig.keepalive_retransmits == 0
        assert state.orig.retransmits == 1

    def test_directions_tracked_independently(self):
        state = self._established()
        _segment(state, False, 501, ACK, b"x" * 50)
        _segment(state, False, 501, ACK, b"x" * 50)
        assert state.resp.retransmits == 1
        assert state.orig.retransmits == 0


class TestStreamReassembly:
    def _established(self) -> TcpFlowState:
        state = TcpFlowState(collect_stream=True)
        _segment(state, True, 100, SYN)
        _segment(state, False, 500, SYN | ACK)
        _segment(state, True, 101, ACK)
        return state

    def test_in_order_stream(self):
        state = self._established()
        _segment(state, True, 101, ACK, b"hello ")
        _segment(state, True, 107, ACK | PSH, b"world")
        assert bytes(state.orig.stream) == b"hello world"
        assert not state.orig.stream_gap

    def test_retransmission_not_duplicated_in_stream(self):
        state = self._established()
        _segment(state, True, 101, ACK, b"abc")
        _segment(state, True, 101, ACK, b"abc")
        assert bytes(state.orig.stream) == b"abc"

    def test_snaplen_truncation_padded(self):
        """Capture-truncated payload tails become zero padding so framing
        offsets stay correct (the snaplen-1500 artifact)."""
        state = self._established()
        state.on_segment(True, 101, ACK, b"abcd", 10)  # 6 bytes missing
        state.on_segment(True, 111, ACK, b"tail", 4)
        assert bytes(state.orig.stream) == b"abcd" + b"\x00" * 6 + b"tail"
        assert state.orig.stream_gap

    def test_sequence_gap_padded(self):
        state = self._established()
        _segment(state, True, 101, ACK, b"aa")
        _segment(state, True, 113, ACK, b"bb")  # 10-byte hole
        assert bytes(state.orig.stream) == b"aa" + b"\x00" * 10 + b"bb"
        assert state.orig.stream_gap

    def test_stream_not_collected_when_disabled(self):
        state = TcpFlowState(collect_stream=False)
        _segment(state, True, 100, SYN)
        _segment(state, True, 101, ACK, b"data")
        assert not state.orig.stream


class TestDirectionState:
    def test_fin_consumes_sequence(self):
        direction = TcpDirectionState()
        direction.on_segment(100, SYN, b"", 0)
        direction.on_segment(101, ACK | FIN, b"", 0)
        assert direction.fin_seen

    def test_seq_wraparound(self):
        direction = TcpDirectionState()
        direction.on_segment(2**32 - 50, ACK, b"a" * 100, 100)
        # next_seq wrapped: a segment at 50 is in-order, not a retransmit.
        direction.on_segment(50, ACK, b"b" * 10, 10)
        assert direction.retransmits == 0
