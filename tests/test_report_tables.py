"""Cell-level tests for the table builders, using hand-built analyses."""

import pytest

from repro.analysis.analyzers import DEFAULT_ANALYZERS
from repro.analysis.engine import DatasetAnalysis, TraceStats
from repro.analysis.conn import ConnRecord, ConnState, DEFAULT_INTERNAL_NET
from repro.report import tables
from repro.util.addr import ip_to_int

_A = ip_to_int("131.243.1.10")
_B = ip_to_int("131.243.2.10")


def _analysis(name="D0", conns=(), l2=None, full_payload=True) -> DatasetAnalysis:
    analysis = DatasetAnalysis(
        name=name, full_payload=full_payload, internal_net=DEFAULT_INTERNAL_NET
    )
    analysis.conns = list(conns)
    trace = TraceStats(index=0, path="t0")
    trace.l2_counts = l2 or {"ip": 90, "arp": 4, "ipx": 5, "other": 1}
    trace.packets = sum(trace.l2_counts.values())
    analysis.traces = [trace]
    for analyzer_cls in DEFAULT_ANALYZERS:
        analyzer = analyzer_cls()
        analysis.analyzer_results[analyzer.name] = analyzer.result()
    return analysis


def _conn(proto="tcp", nbytes=1000, state=ConnState.SF, orig=_A, resp=_B):
    half = nbytes // 2
    return ConnRecord(
        proto=proto, orig_ip=orig, resp_ip=resp, orig_port=40000, resp_port=80,
        first_ts=0.0, last_ts=1.0, orig_bytes=half, resp_bytes=nbytes - half,
        orig_pkts=3, resp_pkts=3, state=state,
    )


class TestTable2Cells:
    def test_fractions(self):
        analyses = {"D0": _analysis(l2={"ip": 96, "arp": 1, "ipx": 2, "other": 1})}
        table = tables.table2(analyses)
        assert table.cell("IP", "D0") == "96%"
        assert table.cell("!IP", "D0") == "4%"
        assert table.cell("IPX", "D0") == "50%"  # 2 of 4 non-IP
        assert table.cell("ARP", "D0") == "25%"

    def test_all_ip_degenerate(self):
        analyses = {"D0": _analysis(l2={"ip": 10, "arp": 0, "ipx": 0, "other": 0})}
        table = tables.table2(analyses)
        assert table.cell("IP", "D0") == "100%"
        assert table.cell("IPX", "D0") == "0%"


class TestTable3Cells:
    def test_mix(self):
        conns = (
            [_conn("tcp", nbytes=8000)] * 2
            + [_conn("udp", nbytes=1000)] * 6
            + [_conn("icmp", nbytes=0)] * 2
        )
        table = tables.table3({"D0": _analysis(conns=conns)})
        assert table.cell("TCP conns", "D0") == "20%"
        assert table.cell("UDP conns", "D0") == "60%"
        assert table.cell("ICMP conns", "D0") == "20%"
        assert table.cell("TCP bytes", "D0") == "73%"  # 16000 of 22000

    def test_scanner_conns_excluded(self):
        analysis = _analysis(conns=[_conn("tcp")] * 4)
        analysis.scanner_sources = {_A}
        table = tables.table3({"D0": analysis})
        assert table.cell("Conns (K)", "D0") == "0.00"


class TestTable1Cells:
    def test_host_counts(self):
        from repro.util.addr import Subnet

        conns = [
            _conn(orig=_A, resp=_B),
            _conn(orig=_A, resp=ip_to_int("8.8.8.8")),
        ]
        analysis = _analysis(conns=conns)
        meta = {
            "D0": {
                "date": "10/4/04", "duration": "10 min", "per_tap": 1,
                "num_subnets": 22, "snaplen": 1500,
                "monitored_subnets": [Subnet.parse("131.243.1.0/24")],
            }
        }
        table = tables.table1({"D0": analysis}, meta)
        assert table.cell("LBNL Hosts", "D0") == 2
        assert table.cell("Mon. Hosts", "D0") == 1  # only _A is monitored
        assert table.cell("Remote Hosts", "D0") == 1
        assert table.cell("# Packets", "D0") == 100

    def test_multicast_not_a_remote_host(self):
        conns = [_conn(orig=_A, resp=ip_to_int("224.2.127.254"))]
        meta = {"D0": {"monitored_subnets": []}}
        table = tables.table1({"D0": _analysis(conns=conns)}, meta)
        assert table.cell("Remote Hosts", "D0") == 0


class TestEmptyAnalyses:
    """Every builder must cope with empty datasets (no traffic at all)."""

    @pytest.mark.parametrize("build", [
        tables.table2, tables.table3, tables.table8, tables.table12,
    ])
    def test_builders_tolerate_empty(self, build):
        table = build({"D0": _analysis(conns=[])})
        assert table.rows

    def test_payload_tables_tolerate_empty(self):
        analyses = {"D0": _analysis(conns=[])}
        for build in (tables.table6, tables.table7, tables.table9,
                      tables.table10, tables.table11, tables.table13,
                      tables.table14, tables.table15):
            table = build(analyses)
            assert table.columns
