"""Tests for the TCP realizer (repro.gen.tcpsim)."""

import random

import pytest

from repro.gen.packetize import realize_session
from repro.gen.session import AppEvent, Dir, Outcome, TcpSession
from repro.net.packet import decode_packet
from repro.net.tcp import ACK, FIN, RST, SYN


def _session(**kwargs) -> TcpSession:
    base = dict(
        client_ip=0x83F30101, server_ip=0x83F30201, client_mac=1, server_mac=2,
        sport=40000, dport=80, start=100.0, rtt=0.001, loss_rate=0.0,
    )
    base.update(kwargs)
    return TcpSession(**base)


def _decode_all(session, seed=1, window_end=None):
    return [decode_packet(p) for p in realize_session(session, random.Random(seed), window_end)]


class TestHandshakeAndClose:
    def test_three_way_handshake(self):
        packets = _decode_all(_session())
        assert packets[0].tcp_flags == SYN
        assert packets[1].tcp_flags == SYN | ACK
        assert packets[2].tcp_flags == ACK

    def test_fin_teardown(self):
        packets = _decode_all(_session())
        fins = [p for p in packets if p.tcp_flags & FIN]
        assert len(fins) == 2
        assert fins[0].src_ip != fins[1].src_ip

    def test_rst_close(self):
        packets = _decode_all(_session(close="rst"))
        assert packets[-1].tcp_flags & RST

    def test_no_close(self):
        packets = _decode_all(_session(close="none"))
        assert not any(p.tcp_flags & (FIN | RST) for p in packets)

    def test_rejected(self):
        packets = _decode_all(_session(outcome=Outcome.REJECTED))
        assert len(packets) == 2
        assert packets[1].tcp_flags & RST
        assert packets[1].src_ip == 0x83F30201  # server sends the RST

    def test_unanswered_syn_retries(self):
        packets = _decode_all(_session(outcome=Outcome.UNANSWERED))
        assert len(packets) == 3
        assert all(p.tcp_flags == SYN for p in packets)
        assert [round(p.ts - 100.0) for p in packets] == [0, 3, 9]


class TestDataTransfer:
    def test_payload_delivered_in_order(self):
        payload = bytes(range(256)) * 20  # 5120 bytes
        session = _session(events=[AppEvent(0.0, Dir.C2S, payload)])
        packets = _decode_all(session)
        data = b"".join(
            p.payload for p in packets
            if p.src_ip == session.client_ip and p.payload_len and not p.tcp_flags & SYN
        )
        assert data == payload

    def test_mss_segmentation(self):
        session = _session(events=[AppEvent(0.0, Dir.S2C, b"z" * 4000)], mss=1460)
        packets = _decode_all(session)
        data_segments = [p for p in packets if p.src_ip == session.server_ip and p.payload_len]
        assert [p.payload_len for p in data_segments] == [1460, 1460, 1080]

    def test_sequence_numbers_advance(self):
        session = _session(events=[AppEvent(0.0, Dir.C2S, b"a" * 3000)])
        packets = [p for p in _decode_all(session)
                   if p.src_ip == session.client_ip and p.payload_len]
        assert packets[1].seq == packets[0].seq + packets[0].payload_len

    def test_bidirectional_events(self):
        session = _session(events=[
            AppEvent(0.0, Dir.C2S, b"request"),
            AppEvent(0.01, Dir.S2C, b"response-body"),
        ])
        packets = _decode_all(session)
        c2s = sum(p.payload_len for p in packets if p.src_ip == session.client_ip)
        s2c = sum(p.payload_len for p in packets if p.src_ip == session.server_ip)
        assert c2s == len(b"request")
        assert s2c == len(b"response-body")

    def test_timestamps_monotone(self):
        session = _session(events=[
            AppEvent(0.0, Dir.C2S, b"q" * 2000),
            AppEvent(0.05, Dir.S2C, b"r" * 9000),
        ])
        packets = realize_session(session, random.Random(1))
        timestamps = [p.ts for p in packets]
        assert timestamps == sorted(timestamps)


class TestLossAndKeepalive:
    def test_explicit_loss_produces_retransmissions(self):
        session = _session(
            events=[AppEvent(0.0, Dir.C2S, b"d" * 200_000)], loss_rate=0.2
        )
        packets = _decode_all(session)
        seqs = [p.seq for p in packets if p.src_ip == session.client_ip and p.payload_len]
        assert len(seqs) > len(set(seqs))  # duplicated sequence numbers

    def test_zero_loss_has_no_retransmissions(self):
        session = _session(events=[AppEvent(0.0, Dir.C2S, b"d" * 100_000)], loss_rate=0.0)
        packets = _decode_all(session)
        seqs = [p.seq for p in packets if p.src_ip == session.client_ip and p.payload_len]
        assert len(seqs) == len(set(seqs))

    def test_ambient_loss_applied_when_unset(self):
        """loss_rate=None lets the realizer pick a small ambient rate."""
        session = _session(events=[AppEvent(0.0, Dir.C2S, b"d" * 3_000_000)],
                           loss_rate=None, rtt=0.05)
        packets = _decode_all(session, seed=3)
        seqs = [p.seq for p in packets if p.src_ip == session.client_ip and p.payload_len]
        assert len(seqs) > len(set(seqs))

    def test_keepalives_are_one_byte_below_next_seq(self):
        session = _session(
            events=[AppEvent(0.0, Dir.C2S, b"hello")],
            keepalive_interval=10.0, keepalive_count=3, close="none",
        )
        packets = _decode_all(session)
        probes = [p for p in packets
                  if p.src_ip == session.client_ip and p.payload_len == 1]
        assert len(probes) == 3
        assert len({p.seq for p in probes}) == 1  # same probe seq each time


class TestWindowEnd:
    def test_packets_after_window_dropped(self):
        session = _session(
            start=100.0,
            events=[AppEvent(0.0, Dir.C2S, b"x"), AppEvent(500.0, Dir.S2C, b"y")],
        )
        packets = realize_session(session, random.Random(1), window_end=150.0)
        assert all(p.ts <= 150.0 for p in packets)
        assert packets  # the early part is still captured


class TestChecksumIntegrity:
    def test_all_packets_decode(self):
        session = _session(events=[AppEvent(0.0, Dir.C2S, b"q" * 10_000)])
        for pkt in realize_session(session, random.Random(2)):
            decoded = decode_packet(pkt)
            assert decoded.proto == 6
