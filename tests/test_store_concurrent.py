"""Concurrent store reads: the HTTP service makes StoreQuery hot from
many handler threads at once, so hammer one store from 8 threads and
require every result to match the sequential answer exactly."""

from __future__ import annotations

import threading

import pytest

from repro.store import ConnFilter, ConnStore, StoreQuery
from repro.store.query import GROUP_DIMENSIONS, SAMPLE_FIELDS

_THREADS = 8
_ROUNDS = 3


@pytest.fixture(scope="module")
def store(store_study) -> ConnStore:
    _, root = store_study
    return ConnStore(root)


def _snapshot(query: StoreQuery) -> dict:
    """Every query surface, rendered to comparable plain data."""
    result: dict = {"datasets": query.datasets()}
    for by in GROUP_DIMENSIONS:
        result[f"agg-{by}"] = [
            (row.group, row.conns, row.bytes, row.pkts)
            for row in query.aggregate(ConnFilter(), by=by)
        ]
    for field in SAMPLE_FIELDS:
        cdf = query.cdf(field, ConnFilter(proto="tcp"))
        result[f"cdf-{field}"] = (
            (len(cdf), cdf.quantile(0.5), cdf.quantile(0.99))
            if len(cdf)
            else (0,)
        )
    result["count-filtered"] = query.count(
        ConnFilter(proto="tcp", min_bytes=100)
    )
    result["table"] = query.table(ConnFilter(), by="category").render()
    return result


def test_eight_threads_match_sequential(store):
    sequential = _snapshot(StoreQuery(store))

    results: list[dict | None] = [None] * _THREADS
    errors: list[BaseException] = []
    barrier = threading.Barrier(_THREADS)

    def hammer(slot: int) -> None:
        try:
            # Each thread builds its own StoreQuery (as each HTTP
            # handler thread would) against the *shared* store.
            query = StoreQuery(store)
            barrier.wait(timeout=30)
            for _ in range(_ROUNDS):
                results[slot] = _snapshot(query)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(slot,), daemon=True)
        for slot in range(_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    for slot, result in enumerate(results):
        assert result == sequential, f"thread {slot} diverged"


def test_threads_sharing_one_query_object(store):
    """Even one StoreQuery instance shared across threads must read
    consistently — it holds no mutable query state."""
    query = StoreQuery(store)
    sequential = _snapshot(query)
    outcomes: list[dict] = []
    lock = threading.Lock()

    def hammer() -> None:
        snap = _snapshot(query)
        with lock:
            outcomes.append(snap)

    threads = [threading.Thread(target=hammer) for _ in range(_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert len(outcomes) == _THREADS
    assert all(outcome == sequential for outcome in outcomes)
