"""Incremental scrub: bounded steps, a resumable cursor, same verdicts.

The contract: stepping with any budget, across any number of scrubber
instances (i.e. process restarts), visits every object and manifest
exactly once per cycle and reaches the same findings the one-shot
scrubber reports — integrity as a background task, not a stop-the-world
pass.
"""

from __future__ import annotations

import shutil

import pytest

from repro.store import ConnStore, IncrementalScrubber, StoreScrubber
from repro.store.tier import CURSOR_FILE, init_tier


@pytest.fixture()
def stocked(store_study, tmp_path):
    """A private mutable copy of the shared study store."""
    _, root = store_study
    shutil.copytree(root, tmp_path / "store")
    return ConnStore(tmp_path / "store")


def _objects(store) -> int:
    return sum(1 for _ in store._object_files())


def test_full_cycle_on_a_clean_store(stocked):
    scrubber = IncrementalScrubber(stocked)
    cursor = scrubber.run(budget=3)
    assert cursor["phase"] == "done"
    report = scrubber.report(cursor)
    assert report.ok, report.render()
    assert report.objects_checked == _objects(stocked) >= 3
    assert report.manifests_checked >= 1


def test_budget_bounds_every_step(stocked):
    scrubber = IncrementalScrubber(stocked)
    cursor = scrubber.step(budget=2)
    assert cursor["phase"] == "objects"
    assert cursor["objects_checked"] == 2
    assert (stocked.root / CURSOR_FILE).exists()


def test_cursor_resumes_across_instances_without_rechecking(stocked):
    total = _objects(stocked)
    steps = 0
    while True:
        # A fresh scrubber per step — each step could be a new process.
        cursor = IncrementalScrubber(stocked).step(budget=2)
        steps += 1
        if cursor["phase"] == "done":
            break
        assert steps < 1000
    assert cursor["objects_checked"] == total  # every object once, exactly
    assert IncrementalScrubber(stocked).report(cursor).ok


def test_findings_match_the_one_shot_scrubber(stocked):
    victims = sorted(stocked._object_files())[:2]
    for index, path in enumerate(victims):
        data = bytearray(path.read_bytes())
        data[30 + index] ^= 0xFF
        path.write_bytes(bytes(data))
    expected = StoreScrubber(ConnStore(stocked.root)).scrub(quarantine=False)
    scrubber = IncrementalScrubber(stocked)
    report = scrubber.report(scrubber.run(budget=4, quarantine=False))
    assert not report.ok
    assert {f.path for f in report.corrupt_objects} == {
        f.path for f in expected.corrupt_objects
    }


def test_incremental_quarantine_moves_the_corrupt_object(stocked):
    victim = sorted(stocked._object_files())[0]
    victim.write_bytes(b"rot")
    scrubber = IncrementalScrubber(stocked)
    report = scrubber.report(scrubber.run(budget=5))
    assert not report.ok
    assert not victim.exists()
    (finding,) = report.corrupt_objects
    assert finding.quarantined_to
    assert (stocked.root / finding.quarantined_to).exists()
    # The quarantined object now fails the manifests phase as a missing ref.
    assert report.missing_refs


def test_done_cursor_starts_a_fresh_cycle(stocked):
    scrubber = IncrementalScrubber(stocked)
    first = scrubber.run(budget=1000)
    assert first["phase"] == "done"
    again = scrubber.step(budget=2)
    assert again["phase"] == "objects" and again["objects_checked"] == 2


def test_reset_forgets_the_cursor(stocked):
    scrubber = IncrementalScrubber(stocked)
    scrubber.step(budget=1)
    scrubber.reset()
    assert not (stocked.root / CURSOR_FILE).exists()
    assert scrubber.cursor()["objects_checked"] == 0


def test_incremental_scrub_spans_every_tier_root(store_study, tmp_path):
    _, root = store_study
    shutil.copytree(root, tmp_path / "store")
    store = init_tier(tmp_path / "store", roots=(str(tmp_path / "b"),))
    store.rebalance()
    flat_total = _objects(store)
    assert any((tmp_path / "b" / "objects").glob("*/*"))
    scrubber = IncrementalScrubber(store)
    report = scrubber.report(scrubber.run(budget=3))
    assert report.ok, report.render()
    assert report.objects_checked == flat_total
    # Corruption at the *secondary* root is found and quarantined there.
    victim = sorted((tmp_path / "b" / "objects").glob("*/*.rcs"))[0]
    victim.write_bytes(b"rot")
    scrubber.reset()
    report = scrubber.report(scrubber.run(budget=3))
    assert not report.ok
    (finding,) = report.corrupt_objects
    assert (tmp_path / "b" / finding.quarantined_to).exists()
