"""Tests for repro.util.addr."""

import pytest

from repro.util.addr import (
    Subnet,
    bytes_to_ip,
    bytes_to_mac,
    int_to_ip,
    int_to_mac,
    ip_to_bytes,
    ip_to_int,
    is_broadcast,
    is_multicast,
    mac_to_bytes,
    mac_to_int,
)


class TestIpConversion:
    def test_round_trip(self):
        for text in ("0.0.0.0", "10.1.2.3", "131.243.1.1", "255.255.255.255"):
            assert int_to_ip(ip_to_int(text)) == text

    def test_known_value(self):
        assert ip_to_int("10.0.0.1") == 0x0A000001

    def test_bytes_round_trip(self):
        value = ip_to_int("192.168.10.20")
        assert bytes_to_ip(ip_to_bytes(value)) == value

    def test_bytes_network_order(self):
        assert ip_to_bytes(ip_to_int("1.2.3.4")) == b"\x01\x02\x03\x04"

    def test_rejects_bad_quad(self):
        with pytest.raises(ValueError):
            ip_to_int("1.2.3")
        with pytest.raises(ValueError):
            ip_to_int("1.2.3.256")

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)

    def test_rejects_wrong_byte_count(self):
        with pytest.raises(ValueError):
            bytes_to_ip(b"\x01\x02\x03")


class TestMacConversion:
    def test_round_trip(self):
        text = "00:a0:c9:12:34:56"
        assert int_to_mac(mac_to_int(text)) == text

    def test_bytes_round_trip(self):
        value = mac_to_int("de:ad:be:ef:00:01")
        assert bytes_to_mac(mac_to_bytes(value)) == value

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            mac_to_int("aa:bb:cc")

    def test_rejects_wrong_byte_count(self):
        with pytest.raises(ValueError):
            bytes_to_mac(b"\x00" * 5)


class TestSpecialAddresses:
    def test_multicast_range(self):
        assert is_multicast(ip_to_int("224.0.0.1"))
        assert is_multicast(ip_to_int("239.255.255.253"))
        assert not is_multicast(ip_to_int("223.255.255.255"))
        assert not is_multicast(ip_to_int("240.0.0.1"))

    def test_broadcast(self):
        assert is_broadcast(0xFFFFFFFF)
        assert not is_broadcast(ip_to_int("131.243.1.255"))


class TestSubnet:
    def test_parse(self):
        subnet = Subnet.parse("131.243.1.0/24")
        assert subnet.prefix == 24
        assert int_to_ip(subnet.network) == "131.243.1.0"

    def test_parse_requires_prefix(self):
        with pytest.raises(ValueError):
            Subnet.parse("10.0.0.0")

    def test_rejects_host_bits(self):
        with pytest.raises(ValueError):
            Subnet(ip_to_int("10.0.0.1"), 24)

    def test_netmask(self):
        assert Subnet.parse("10.0.0.0/8").netmask == 0xFF000000
        assert Subnet.parse("10.1.2.0/24").netmask == 0xFFFFFF00

    def test_zero_prefix_netmask(self):
        assert Subnet.parse("0.0.0.0/0").netmask == 0

    def test_broadcast(self):
        subnet = Subnet.parse("10.1.2.0/24")
        assert int_to_ip(subnet.broadcast) == "10.1.2.255"

    def test_num_hosts(self):
        assert Subnet.parse("10.0.0.0/24").num_hosts == 254
        assert Subnet.parse("10.0.0.0/30").num_hosts == 2

    def test_host_allocation(self):
        subnet = Subnet.parse("10.0.0.0/24")
        assert int_to_ip(subnet.host(0)) == "10.0.0.1"
        assert int_to_ip(subnet.host(253)) == "10.0.0.254"

    def test_host_out_of_range(self):
        with pytest.raises(IndexError):
            Subnet.parse("10.0.0.0/24").host(254)

    def test_contains(self):
        subnet = Subnet.parse("131.243.0.0/16")
        assert ip_to_int("131.243.7.8") in subnet
        assert ip_to_int("131.244.0.1") not in subnet

    def test_str(self):
        assert str(Subnet.parse("10.1.0.0/16")) == "10.1.0.0/16"
