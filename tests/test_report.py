"""Tests for the reporting layer (tables, figures, category breakdowns)."""

import pytest

from repro.analysis.conn import ConnRecord, ConnState
from repro.report.categories import CATEGORY_ORDER, category_breakdown
from repro.report.model import CdfFigure, SeriesFigure, Table
from repro.report.tables import table4
from repro.util.addr import ip_to_int
from repro.util.stats import Cdf

_ENT_A = ip_to_int("131.243.1.50")
_ENT_B = ip_to_int("131.243.4.4")
_WAN = ip_to_int("207.46.1.1")
_MCAST = ip_to_int("224.2.127.254")


def _conn(resp_port, orig=_ENT_A, resp=_ENT_B, nbytes=100, proto="tcp"):
    return ConnRecord(
        proto=proto, orig_ip=orig, resp_ip=resp, orig_port=40000,
        resp_port=resp_port, first_ts=0.0, last_ts=1.0,
        orig_bytes=nbytes // 2, resp_bytes=nbytes - nbytes // 2,
        orig_pkts=2, resp_pkts=2, state=ConnState.SF,
    )


class TestTableModel:
    def test_add_and_lookup(self):
        table = Table("T", "test", ["row", "a", "b"])
        table.add_row("x", 1, 2)
        assert table.cell("x", "a") == 1
        assert table.cell("x", "b") == 2

    def test_row_length_validation(self):
        table = Table("T", "test", ["row", "a"])
        with pytest.raises(ValueError):
            table.add_row("x", 1, 2)

    def test_missing_lookups(self):
        table = Table("T", "test", ["row", "a"])
        table.add_row("x", 1)
        with pytest.raises(KeyError):
            table.cell("y", "a")
        with pytest.raises(KeyError):
            table.cell("x", "zz")

    def test_render_contains_data(self):
        table = Table("T9", "demo", ["row", "D0"])
        table.add_row("Successful", "82%")
        text = table.render()
        assert "T9" in text and "Successful" in text and "82%" in text


class TestFigureModels:
    def test_cdf_figure_render(self):
        figure = CdfFigure("F", "demo", "bytes")
        figure.add("ent:D0", Cdf([1, 10, 100, 1000]))
        figure.add("empty", Cdf([]))
        text = figure.render()
        assert "ent:D0" in text
        assert "no samples" in text

    def test_cdf_figure_points(self):
        figure = CdfFigure("F", "demo", "x")
        figure.add("s", Cdf(range(100)))
        points = figure.points(max_points=10)["s"]
        assert points[-1][1] == 1.0

    def test_series_figure_render(self):
        figure = SeriesFigure("F10", "demo", "rate")
        figure.add("ENT", [0.001, 0.05, 0.002])
        figure.add("WAN", [])
        text = figure.render()
        assert "max=0.05" in text
        assert "no points" in text


class TestCategoryBreakdown:
    def test_conn_and_byte_fractions(self):
        conns = [
            _conn(53, proto="udp"),
            _conn(53, proto="udp"),
            _conn(80, nbytes=10_000),
            _conn(2049, nbytes=90_000),
        ]
        breakdown = category_breakdown(conns)
        assert breakdown.conn_fraction("name") == 0.5
        assert breakdown.byte_fraction("net-file") == pytest.approx(90_000 / 100_200)

    def test_ent_wan_split(self):
        conns = [_conn(80), _conn(80, resp=_WAN)]
        breakdown = category_breakdown(conns)
        assert breakdown.conn_fraction("web", "ent") == 0.5
        assert breakdown.conn_fraction("web", "wan") == 0.5
        assert breakdown.conn_fraction("web", "all") == 1.0

    def test_multicast_separated_from_unicast(self):
        conns = [_conn(5004, resp=_MCAST, proto="udp", nbytes=5000), _conn(80)]
        breakdown = category_breakdown(conns)
        assert breakdown.conn_fraction("streaming") == 0.0  # unicast share
        assert breakdown.multicast_conn_fraction("streaming") == 0.5
        assert breakdown.multicast_byte_fraction("streaming") > 0.9

    def test_icmp_excluded_by_default(self):
        conns = [_conn(0, proto="icmp"), _conn(80)]
        breakdown = category_breakdown(conns)
        assert breakdown.total_conns == 1

    def test_dynamic_windows_endpoints(self):
        conn = _conn(1066)
        plain = category_breakdown([conn])
        assert plain.conn_fraction("other-tcp") == 1.0
        dynamic = category_breakdown([conn], windows_endpoints={(_ENT_B, 1066)})
        assert dynamic.conn_fraction("windows") == 1.0

    def test_category_order_covers_figure1(self):
        assert "web" in CATEGORY_ORDER and "other-udp" in CATEGORY_ORDER
        assert len(CATEGORY_ORDER) == 13


class TestStaticTables:
    def test_table4_static(self):
        table = table4()
        assert table.cell("email", "protocols").startswith("SMTP")
        assert len(table.rows) == 11


class TestStudyTables:
    """Rendered tables/figures from the shared small study."""

    def test_all_tables_render(self, small_study):
        for number in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15):
            text = small_study.render_table(number)
            assert f"Table {number}" in text

    def test_all_figures_render(self, small_study):
        for number in range(1, 11):
            text = small_study.render_figure(number)
            assert "Figure" in text

    def test_table5_findings(self, small_study):
        table = small_study.table(5)
        assert len(table.rows) == 6
        sections = [row[0] for row in table.rows]
        assert sections == ["§5.1.1", "§5.1.2", "§5.1.3", "§5.2.1", "§5.2.2", "§5.2.3"]

    def test_unknown_figure_raises(self, small_study):
        with pytest.raises(KeyError):
            small_study.figure(11)
