"""Tests for repro.util.rng (deterministic substreams)."""

from repro.util.rng import SeedSequence, substream


class TestSubstream:
    def test_deterministic(self):
        a = substream(42, "http")
        b = substream(42, "http")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_independent_by_name(self):
        a = substream(42, "http")
        b = substream(42, "dns")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_streams_depend_on_seed(self):
        a = substream(42, "http")
        b = substream(43, "http")
        assert a.random() != b.random()


class TestSeedSequence:
    def test_stream_replayable(self):
        seq = SeedSequence(7)
        first = seq.stream("x").random()
        again = seq.stream("x").random()
        assert first == again

    def test_child_namespacing(self):
        seq = SeedSequence(7)
        child_a = seq.child("D0")
        child_b = seq.child("D1")
        assert child_a.master_seed != child_b.master_seed
        assert child_a.stream("app").random() != child_b.stream("app").random()

    def test_child_deterministic(self):
        assert SeedSequence(7).child("D0").master_seed == SeedSequence(7).child("D0").master_seed

    def test_adding_draws_does_not_perturb_siblings(self):
        """The core isolation property: drawing more from one stream
        leaves other streams' sequences untouched."""
        seq = SeedSequence(99)
        dns_before = [seq.stream("dns").random() for _ in range(3)]
        http = seq.stream("http")
        for _ in range(1000):
            http.random()
        dns_after = [seq.stream("dns").random() for _ in range(3)]
        assert dns_before == dns_after

    def test_repr(self):
        assert "SeedSequence" in repr(SeedSequence(1))
