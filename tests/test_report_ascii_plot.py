"""Tests for the ASCII CDF plotter."""

from repro.report.ascii_plot import plot_cdf_figure
from repro.report.model import CdfFigure
from repro.util.stats import Cdf


def _figure(**curves) -> CdfFigure:
    figure = CdfFigure("F", "demo", "bytes")
    for name, samples in curves.items():
        figure.add(name, Cdf(samples))
    return figure


class TestPlotCdfFigure:
    def test_contains_title_axis_and_legend(self):
        text = plot_cdf_figure(_figure(a=[1, 10, 100]))
        assert "F: demo" in text
        assert "x: bytes" in text
        assert "log scale" in text
        assert "a (N=3)" in text

    def test_empty_figure(self):
        text = plot_cdf_figure(CdfFigure("F", "demo", "x"))
        assert "(no samples)" in text

    def test_empty_curves_skipped(self):
        text = plot_cdf_figure(_figure(empty=[], full=[1, 2, 3]))
        assert "full" in text
        assert "empty" not in text

    def test_distinct_markers(self):
        text = plot_cdf_figure(_figure(a=[1, 2, 3], b=[10, 20, 30]))
        assert "*" in text and "+" in text

    def test_curve_monotone_on_grid(self):
        """Reading a marker's column positions top-to-bottom, the curve
        moves right: F is non-decreasing."""
        text = plot_cdf_figure(_figure(a=list(range(1, 200))), width=40, height=12)
        rows = [line.split("|", 1)[1] for line in text.splitlines() if "|" in line]
        first_positions = [row.find("*") for row in rows if "*" in row]
        # Top rows (high F) have markers at larger x than bottom rows.
        assert first_positions == sorted(first_positions, reverse=True) or (
            len(set(first_positions)) < len(first_positions)
        )

    def test_linear_scale(self):
        figure = _figure(a=[0.0, 5.0, 10.0])
        figure.log_x = False
        text = plot_cdf_figure(figure)
        assert "log scale" not in text

    def test_max_curves_cap(self):
        curves = {f"c{i}": [1, 2, 3] for i in range(12)}
        text = plot_cdf_figure(_figure(**curves), max_curves=4)
        assert "+8 curves not shown" in text

    def test_degenerate_single_value(self):
        text = plot_cdf_figure(_figure(a=[7.0, 7.0, 7.0]))
        assert "a (N=3)" in text

    def test_render_plot_method(self):
        figure = _figure(a=[1, 100, 10000])
        assert figure.render_plot(width=40, height=10).count("\n") > 10

    def test_width_respected(self):
        text = plot_cdf_figure(_figure(a=[1, 10]), width=30, height=8)
        plot_rows = [line for line in text.splitlines() if "|" in line]
        assert all(len(row) <= 6 + 30 for row in plot_rows)
