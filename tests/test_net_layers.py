"""Tests for the wire-format layers in repro.net."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.arp import ARP_REQUEST, ArpPacket
from repro.net.checksum import internet_checksum, pseudo_header
from repro.net.ethernet import (
    BROADCAST_MAC,
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    EthernetFrame,
)
from repro.net.icmp import ICMP_ECHO_REQUEST, IcmpMessage
from repro.net.ipv4 import PROTO_TCP, PROTO_UDP, Ipv4Packet
from repro.net.ipx import IpxPacket
from repro.net.tcp import ACK, FIN, PSH, RST, SYN, TcpSegment, flags_to_str
from repro.net.udp import UdpDatagram


class TestChecksum:
    def test_known_header(self):
        header = bytes.fromhex("45000003") + b"\x00" * 16
        # Verifying a header with its own checksum inserted yields 0.
        checksum = internet_checksum(header)
        patched = header[:10] + checksum.to_bytes(2, "big") + header[12:]
        assert internet_checksum(patched) == 0

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_all_zero(self):
        assert internet_checksum(b"\x00" * 20) == 0xFFFF

    @given(st.binary(min_size=0, max_size=200))
    def test_self_verifying(self, data):
        """Inserting the checksum makes the whole block sum to zero."""
        if len(data) % 2:
            data += b"\x00"
        checksum = internet_checksum(data)
        assert internet_checksum(data + checksum.to_bytes(2, "big")) == 0

    def test_pseudo_header_layout(self):
        pseudo = pseudo_header(0x0A000001, 0x0A000002, PROTO_TCP, 20)
        assert len(pseudo) == 12
        assert pseudo[9] == PROTO_TCP


class TestEthernet:
    def test_round_trip(self):
        frame = EthernetFrame(
            dst_mac=0x112233445566, src_mac=0xAABBCCDDEEFF,
            ethertype=ETHERTYPE_IPV4, payload=b"hello",
        )
        back = EthernetFrame.decode(frame.encode())
        assert back == frame

    def test_broadcast_flag(self):
        frame = EthernetFrame(BROADCAST_MAC, 1, ETHERTYPE_ARP, b"")
        assert frame.is_broadcast

    def test_too_short(self):
        with pytest.raises(ValueError):
            EthernetFrame.decode(b"\x00" * 10)


class TestArp:
    def test_round_trip(self):
        arp = ArpPacket(
            opcode=ARP_REQUEST, sender_mac=1, sender_ip=0x0A000001,
            target_mac=0, target_ip=0x0A000002,
        )
        assert ArpPacket.decode(arp.encode()) == arp

    def test_length(self):
        arp = ArpPacket(1, 1, 1, 0, 2)
        assert len(arp.encode()) == 28

    def test_rejects_non_ipv4_arp(self):
        data = bytearray(ArpPacket(1, 1, 1, 0, 2).encode())
        data[0] = 9  # bogus hardware type
        with pytest.raises(ValueError):
            ArpPacket.decode(bytes(data))

    def test_too_short(self):
        with pytest.raises(ValueError):
            ArpPacket.decode(b"\x00" * 10)


class TestIpx:
    def test_round_trip(self):
        ipx = IpxPacket(
            packet_type=0x04, dst_network=0, dst_node=0xFFFFFFFFFFFF,
            dst_socket=0x452, src_network=3, src_node=0xA0C912345678,
            src_socket=0x452, payload=b"SAP?",
        )
        back = IpxPacket.decode(ipx.encode())
        assert back == ipx

    def test_header_length(self):
        ipx = IpxPacket(0x11, 0, 1, 1, 0, 2, 2)
        assert len(ipx.encode()) == 30

    def test_rejects_bad_checksum_field(self):
        data = bytearray(IpxPacket(0x11, 0, 1, 1, 0, 2, 2).encode())
        data[0] = 0
        with pytest.raises(ValueError):
            IpxPacket.decode(bytes(data))


class TestIpv4:
    def test_round_trip(self):
        packet = Ipv4Packet(
            src_ip=0x83F30101, dst_ip=0x83F30202, proto=PROTO_UDP,
            payload=b"x" * 32, ttl=63, ident=99,
        )
        back = Ipv4Packet.decode(packet.encode(), verify_checksum=True)
        assert back.src_ip == packet.src_ip
        assert back.dst_ip == packet.dst_ip
        assert back.proto == PROTO_UDP
        assert back.payload == packet.payload
        assert back.ttl == 63
        assert back.total_length == 20 + 32

    def test_checksum_valid(self):
        packet = Ipv4Packet(1, 2, PROTO_TCP, b"abc")
        header = packet.encode()[:20]
        assert internet_checksum(header) == 0

    def test_checksum_verification_fails_on_corruption(self):
        data = bytearray(Ipv4Packet(1, 2, PROTO_TCP, b"abc").encode())
        data[8] ^= 0xFF  # corrupt TTL
        with pytest.raises(ValueError):
            Ipv4Packet.decode(bytes(data), verify_checksum=True)

    def test_rejects_non_v4(self):
        data = bytearray(Ipv4Packet(1, 2, 6).encode())
        data[0] = 0x65  # version 6
        with pytest.raises(ValueError):
            Ipv4Packet.decode(bytes(data))

    def test_truncated_payload_keeps_total_length(self):
        packet = Ipv4Packet(1, 2, PROTO_UDP, b"y" * 100)
        truncated = packet.encode()[:60]
        back = Ipv4Packet.decode(truncated)
        assert back.total_length == 120
        assert len(back.payload) == 40


class TestTcp:
    def test_round_trip(self):
        segment = TcpSegment(
            src_port=40000, dst_port=80, seq=1000, ack=2000,
            flags=ACK | PSH, payload=b"GET /", window=8192, mss=1460,
        )
        back = TcpSegment.decode(segment.encode(0x0A000001, 0x0A000002))
        assert back.src_port == 40000
        assert back.dst_port == 80
        assert back.seq == 1000
        assert back.ack == 2000
        assert back.flags == ACK | PSH
        assert back.payload == b"GET /"
        assert back.mss == 1460

    def test_no_mss_without_option(self):
        segment = TcpSegment(1, 2, 0, 0, ACK)
        assert TcpSegment.decode(segment.encode(1, 2)).mss is None

    def test_checksum_covers_pseudo_header(self):
        a = TcpSegment(1, 2, 0, 0, SYN).encode(0x0A000001, 0x0A000002)
        b = TcpSegment(1, 2, 0, 0, SYN).encode(0x0A000001, 0x0A000003)
        assert a[16:18] != b[16:18]  # different dst ip -> different checksum

    def test_flags_to_str(self):
        assert flags_to_str(SYN | ACK) == "SA"
        assert flags_to_str(FIN | RST) == "FR"
        assert TcpSegment(1, 2, 0, 0, SYN).flag_str == "S"

    def test_too_short(self):
        with pytest.raises(ValueError):
            TcpSegment.decode(b"\x00" * 10)

    def test_option_parsing_skips_unknown(self):
        # NOP, NOP, MSS
        options = b"\x01\x01\x02\x04\x05\xb4"
        assert TcpSegment._parse_mss(options) == 1460

    def test_option_parsing_handles_garbage(self):
        assert TcpSegment._parse_mss(b"\x09\x00") is None


class TestUdp:
    def test_round_trip(self):
        datagram = UdpDatagram(src_port=53, dst_port=33000, payload=b"answer")
        back = UdpDatagram.decode(datagram.encode(1, 2))
        assert back == datagram

    def test_length_field(self):
        data = UdpDatagram(1, 2, b"abc").encode(1, 2)
        assert int.from_bytes(data[4:6], "big") == 11

    def test_zero_checksum_becomes_ffff(self):
        # Find a payload whose checksum computes to 0 is hard; instead
        # just assert the emitted checksum is never the "absent" 0 value.
        data = UdpDatagram(1, 2, b"").encode(0, 0)
        assert data[6:8] != b"\x00\x00"

    def test_too_short(self):
        with pytest.raises(ValueError):
            UdpDatagram.decode(b"\x00" * 4)


class TestIcmp:
    def test_round_trip(self):
        msg = IcmpMessage(ICMP_ECHO_REQUEST, 0, ident=7, sequence=3, payload=b"ping")
        back = IcmpMessage.decode(msg.encode())
        assert back == msg
        assert back.is_echo

    def test_checksum_valid(self):
        encoded = IcmpMessage(8, 0, 1, 1, b"x").encode()
        assert internet_checksum(encoded) == 0

    def test_too_short(self):
        with pytest.raises(ValueError):
            IcmpMessage.decode(b"\x08\x00")
