"""The content-addressed store: keys, round-trip fidelity, and defects.

The corruption tests share one rule: damaging any cached byte must
surface as a typed :class:`ShardError` under ``strict`` and as a cache
miss (``None``) under the tolerant policies — never as a wrong answer.
"""

from __future__ import annotations

import json
import os
import shutil
import time

import pytest

from repro.analysis.errors import ErrorKind, ErrorPolicy
from repro.store import ConnStore, ShardError, StoreScrubber
from repro.store.shard import DatasetShard, encode_dataset_shard


def copy_store(root, tmp_path) -> ConnStore:
    """A private copy of the session store, safe to corrupt."""
    target = tmp_path / "store"
    shutil.copytree(root, target)
    return ConnStore(target)


def the_manifest(store: ConnStore) -> dict:
    manifests = list(store.manifests())
    assert len(manifests) == 1
    return manifests[0]


# -- object storage ---------------------------------------------------------


def test_objects_are_content_addressed(tmp_path):
    store = ConnStore(tmp_path)
    digest = store.put_object(b"hello shard")
    assert store.get_object(digest) == b"hello shard"
    # Idempotent: same bytes, same address, no duplicate.
    assert store.put_object(b"hello shard") == digest


def test_get_object_reverifies_the_address(tmp_path):
    store = ConnStore(tmp_path)
    digest = store.put_object(b"original bytes")
    store._object_path(digest).write_bytes(b"swapped bytes")
    with pytest.raises(ShardError) as info:
        store.get_object(digest)
    assert info.value.kind is ErrorKind.DECODE_ERROR


def test_missing_object_is_truncated_body(tmp_path):
    store = ConnStore(tmp_path)
    with pytest.raises(ShardError) as info:
        store.get_object("0" * 64)
    assert info.value.kind is ErrorKind.TRUNCATED_BODY


def _hammer_put(root: str, worker_id: int) -> None:
    """Child-process body: race everyone else publishing the same shards."""
    store = ConnStore(root)
    for round_number in range(20):
        for payload_id in range(4):
            store.put_object(f"shared shard {payload_id}".encode() * 100)
    store.put_object(f"private to {worker_id}".encode())


def test_concurrent_put_object_never_interleaves(tmp_path):
    """N processes publishing the same content-addressed shards leave a
    store where every object verifies and no temp files linger — the
    atomic-replace, first-writer-wins rule under real concurrency."""
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    workers = [
        ctx.Process(target=_hammer_put, args=(str(tmp_path), i))
        for i in range(6)
    ]
    for process in workers:
        process.start()
    for process in workers:
        process.join(timeout=30)
        assert process.exitcode == 0
    store = ConnStore(tmp_path)
    objects = list(store.objects_dir.glob("*/*.rcs"))
    assert len(objects) == 4 + 6  # shared payloads + one private each
    for path in objects:
        store.get_object(path.stem)  # re-verifies the content address
    assert list(store.objects_dir.rglob("*.tmp")) == []


# -- cache keys -------------------------------------------------------------


def test_content_key_tracks_trace_bytes():
    base = dict(
        analyzers=("http", "dns"),
        error_policy="strict",
        full_payload=True,
        internal_net="10.0.0.0/9",
        known_scanners=(1, 2),
    )
    key = ConnStore.content_key("D0", ["aa", "bb"], **base)
    assert key == ConnStore.content_key("D0", ["aa", "bb"], **base)
    assert key != ConnStore.content_key("D0", ["aa", "cc"], **base)
    assert key != ConnStore.content_key("D1", ["aa", "bb"], **base)
    changed = dict(base, error_policy="tolerant")
    assert key != ConnStore.content_key("D0", ["aa", "bb"], **changed)


def test_content_key_ignores_analyzer_and_scanner_order():
    key_a = ConnStore.content_key(
        "D0", ["aa"], ("http", "dns"), "strict", True, "10.0.0.0/9", (1, 2)
    )
    key_b = ConnStore.content_key(
        "D0", ["aa"], ("dns", "http"), "strict", True, "10.0.0.0/9", (2, 1)
    )
    assert key_a == key_b


def test_generation_key_tracks_study_parameters():
    base = dict(
        analyzers=("http",),
        error_policy="strict",
        internal_net="10.0.0.0/9",
        known_scanners=(),
    )
    key = ConnStore.generation_key("D0", 7, 0.004, 4, **base)
    assert key.startswith("gen-")
    assert key == ConnStore.generation_key("D0", 7, 0.004, 4, **base)
    assert key != ConnStore.generation_key("D0", 8, 0.004, 4, **base)
    assert key != ConnStore.generation_key("D0", 7, 0.005, 4, **base)
    assert key != ConnStore.generation_key("D0", 7, 0.004, None, **base)


# -- save / load round trip -------------------------------------------------


def test_saved_analysis_round_trips(store_study):
    results, root = store_study
    store = ConnStore(root)
    original = results.analyses["D0"]
    cached = store.load_analysis(the_manifest(store))
    analysis = cached.analysis
    assert analysis.name == original.name
    assert analysis.conns == original.conns
    assert analysis.scanner_sources == original.scanner_sources
    assert analysis.windows_endpoints == original.windows_endpoints
    assert analysis.removed_conns == original.removed_conns
    assert list(analysis.analyzer_results) == list(original.analyzer_results)
    assert analysis.analyzer_results == original.analyzer_results
    assert len(analysis.traces) == len(original.traces)
    for loaded, fresh in zip(analysis.traces, original.traces):
        assert loaded.packets == fresh.packets
        assert loaded.l2_counts == fresh.l2_counts
        assert loaded.quarantined == fresh.quarantined


def test_manifest_stores_relative_paths_only(store_study):
    _, root = store_study
    manifest = the_manifest(ConnStore(root))
    for entry in manifest["traces"]:
        assert not entry["file"].startswith("/")
        assert entry["file"].startswith("D0/")


def test_lookup_follows_generation_alias(store_study):
    _, root = store_study
    store = ConnStore(root)
    manifest = the_manifest(store)
    aliases = [
        path
        for path in store.manifests_dir.glob("*.json")
        if "ref" in json.loads(path.read_text())
    ]
    assert len(aliases) == 1
    assert aliases[0].stem.startswith("gen-")
    assert store.lookup(aliases[0].stem) == manifest
    assert store.lookup("0" * 64) is None


# -- defects through the policy seam ---------------------------------------


@pytest.mark.parametrize("damage", ["truncate", "flip", "delete"])
def test_damaged_shard_is_strict_error_tolerant_miss(store_study, tmp_path, damage):
    _, root = store_study
    store = copy_store(root, tmp_path)
    manifest = the_manifest(store)
    victim = store._object_path(manifest["traces"][0]["shard"])
    if damage == "truncate":
        victim.write_bytes(victim.read_bytes()[:-16])
    elif damage == "flip":
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0xFF
        victim.write_bytes(bytes(data))
    else:
        victim.unlink()
    with pytest.raises(ShardError):
        store.load_or_none(manifest, ErrorPolicy.STRICT)
    assert store.load_or_none(manifest, ErrorPolicy.TOLERANT) is None
    assert store.load_or_none(manifest, ErrorPolicy.SKIP_TRACE) is None


def test_wrong_kind_object_is_rejected(store_study, tmp_path):
    # A validly-addressed object of the wrong kind: rewire a trace entry
    # at the dataset shard, so only the kind byte gives it away.
    _, root = store_study
    store = copy_store(root, tmp_path)
    manifest = the_manifest(store)
    manifest["traces"][0]["shard"] = manifest["dataset_shard"]
    with pytest.raises(ShardError) as info:
        store.load_analysis(manifest)
    assert info.value.kind is ErrorKind.DECODE_ERROR


def test_sources_intact_detects_mutated_pcaps(store_study, tmp_path):
    _, root = store_study
    store = ConnStore(root)
    manifest = the_manifest(store)
    # Transient pcaps (no out_dir): the manifest is trusted.
    assert store.sources_intact(manifest, None)
    # Files absent on disk: tolerated (they were deleted, not mutated).
    assert store.sources_intact(manifest, tmp_path)
    # A present-but-different file invalidates the cache.
    entry = manifest["traces"][0]
    path = tmp_path / entry["file"]
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"not the original pcap")
    assert not store.sources_intact(manifest, tmp_path)


# -- maintenance ------------------------------------------------------------


def test_gc_removes_only_unreferenced_objects(store_study, tmp_path):
    _, root = store_study
    store = copy_store(root, tmp_path)
    referenced = store.referenced_objects()
    stray = store.put_object(
        encode_dataset_shard(
            DatasetShard(
                name="stray",
                full_payload=False,
                internal_net="10.0.0.0/9",
                error_policy="strict",
                scanner_sources=set(),
                windows_endpoints=set(),
                removed_conns=0,
                analyzer_errors={},
                analyzer_results={},
            )
        )
    )
    stray_size = store._object_path(stray).stat().st_size
    # A dry run reports the reclaim without touching the disk.
    preview = store.gc(dry_run=True)
    assert preview.dry_run
    assert preview.removed == (stray,)
    assert preview.reclaimed_bytes == stray_size
    assert store._object_path(stray).exists()
    # The real pass deletes and accounts the same bytes.
    report = store.gc()
    assert not report.dry_run
    assert report.removed == (stray,)
    assert report.reclaimed_bytes == stray_size
    assert {path.stem for path in store.objects_dir.glob("*/*.rcs")} == referenced
    # Still loadable after gc.
    store.load_analysis(the_manifest(store))


def test_gc_sweeps_stale_temp_files(store_study, tmp_path):
    _, root = store_study
    store = copy_store(root, tmp_path)
    stale = store.objects_dir / "ab" / ".deadbeef-crashed.tmp"
    stale.parent.mkdir(parents=True, exist_ok=True)
    stale.write_bytes(b"partial shard from a crashed writer")
    # Age the file past the in-flight grace period: it really is debris.
    old = time.time() - 3600.0
    os.utime(stale, (old, old))
    preview = store.gc(dry_run=True)
    assert preview.stale_tmp == 1
    assert preview.in_flight_tmp == 0
    assert preview.reclaimed_bytes >= len(b"partial shard from a crashed writer")
    assert stale.exists()
    report = store.gc()
    assert report.stale_tmp == 1
    assert not stale.exists()


def test_gc_spares_in_flight_temp_files(store_study, tmp_path):
    """A fresh .tmp is a live writer mid-publish, not debris: gc must
    leave it alone (and say so), unless the grace period is disabled."""
    _, root = store_study
    store = copy_store(root, tmp_path)
    in_flight = store.manifests_dir / ".0123456789ab-live.tmp"
    in_flight.parent.mkdir(parents=True, exist_ok=True)
    in_flight.write_bytes(b"half a manifest, writer still alive")
    report = store.gc()
    assert report.stale_tmp == 0
    assert report.in_flight_tmp == 1
    assert in_flight.exists()
    # Scrub applies the same rule: in-flight, not stale.
    scrubbed = StoreScrubber(store).scrub()
    assert scrubbed.stale_tmp == 0
    assert scrubbed.in_flight_tmp == 1
    # A quiescent-store sweep (grace disabled) reclaims it.
    forced = store.gc(tmp_grace_s=0.0)
    assert forced.stale_tmp == 1
    assert not in_flight.exists()


def test_stats_accounting(store_study):
    _, root = store_study
    stats = ConnStore(root).stats()
    assert stats["manifests"] == 1
    assert stats["objects"] == 5  # 4 trace shards + 1 dataset shard
    assert stats["bytes"] > 0
