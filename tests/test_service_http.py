"""The analysis service over real HTTP: endpoints, cache, jobs, daemon
read-through, and the telemetry tail's shutdown behavior.

One module-scoped service runs against the shared ``store_study`` store;
each test talks to it through a real client connection, so the whole
stack — ThreadingHTTPServer, handler dispatch, response cache, JSON
rendering — is exercised exactly as production traffic would.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.runtime.telemetry import TelemetryLog
from repro.service import ReproService


def _request(port: int, method: str, path: str, body: dict | None = None):
    """One request on a fresh connection; returns (status, headers, json)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(
            method, path, body=payload,
            headers={"Content-Type": "application/json"} if payload else {},
        )
        response = conn.getresponse()
        raw = response.read()
        headers = {k.lower(): v for k, v in response.getheaders()}
        return response.status, headers, json.loads(raw) if raw else None
    finally:
        conn.close()


def _get(port: int, path: str):
    return _request(port, "GET", path)


@pytest.fixture(scope="module")
def service(store_study, tmp_path_factory):
    _, root = store_study
    telemetry = TelemetryLog(
        path=tmp_path_factory.mktemp("svc-telemetry") / "service.jsonl"
    )
    svc = ReproService(
        str(root),
        port=0,
        job_workers=1,
        job_queue=2,
        job_runner=lambda request, store_dir: {"ok": True, "seed": request["seed"]},
        telemetry=telemetry,
    )
    svc.start_background()
    yield svc
    svc.shutdown()


def test_health(service):
    status, _, body = _get(service.port, "/health")
    assert status == 200
    assert body["status"] == "ok"
    assert body["store"]["manifests"] >= 1
    assert set(body["cache"]) >= {"hits", "misses", "entries"}
    assert body["jobs"]["queue_limit"] == 2


def test_studies_lists_the_cached_analysis(service):
    status, headers, body = _get(service.port, "/studies")
    assert status == 200
    assert body["count"] >= 1
    entry = body["studies"][0]
    assert entry["dataset"] == "D0"
    assert entry["packets"] > 0
    assert len(entry["key"]) == 64  # a content address, not a label


def test_query_aggregates_and_filters(service):
    status, _, body = _get(service.port, "/query?by=proto")
    assert status == 200
    assert body["by"] == "proto"
    assert body["total"]["conns"] > 0
    groups = {row["group"] for row in body["rows"]}
    assert "tcp" in groups
    # A filter must strictly narrow the unfiltered total.
    _, _, filtered = _get(service.port, "/query?by=proto&proto=tcp")
    assert 0 < filtered["total"]["conns"] <= body["total"]["conns"]


def test_query_rejects_bad_dimension_and_subnet(service):
    status, _, body = _get(service.port, "/query?by=nonsense")
    assert status == 400
    assert "dimension" in body["error"]
    status, _, body = _get(service.port, "/query?subnet=not-a-cidr")
    assert status == 400
    status, _, body = _get(service.port, "/query?since=yesterday")
    assert status == 400


def test_cdf_endpoint(service):
    status, _, body = _get(service.port, "/cdf?field=total_bytes")
    assert status == 200
    assert body["n"] > 0
    quantiles = body["quantiles"]
    assert quantiles["p50"] <= quantiles["p95"] <= quantiles["p99"]
    assert body["points"]  # plottable
    status, _, body = _get(service.port, "/cdf?field=bogus")
    assert status == 400


def test_tables(service):
    for name in ("load", "retransmission", "quality", "2", "3"):
        status, _, body = _get(service.port, f"/tables/{name}")
        assert status == 200, name
        table = body["table"]
        assert table["columns"] and table["rendered"]
    status, _, body = _get(service.port, "/tables/99")
    assert status == 404
    status, _, body = _get(service.port, "/tables/figment")
    assert status == 404


def test_unknown_endpoint_and_method(service):
    status, _, _ = _get(service.port, "/nope")
    assert status == 404
    status, _, _ = _request(service.port, "POST", "/query", body={})
    assert status == 405


def test_cache_hit_replays_identical_bytes(service):
    path = "/query?by=category&proto=tcp"
    service.cache.clear()
    s1, h1, b1 = _get(service.port, path)
    s2, h2, b2 = _get(service.port, path)
    s3, h3, b3 = _get(service.port, path + "&cache_bypass=1")
    assert (s1, s2, s3) == (200, 200, 200)
    assert h1["x-cache"] == "miss"
    assert h2["x-cache"] == "hit"
    assert h3["x-cache"] == "bypass"
    # Same content address -> byte-identical, cold, cached, or bypassed.
    assert b1 == b2 == b3
    stats = service.cache.stats()
    assert stats["hits"] >= 1


def test_cache_distinguishes_queries(service):
    service.cache.clear()
    _get(service.port, "/query?by=category")
    _, headers, _ = _get(service.port, "/query?by=proto")
    assert headers["x-cache"] == "miss"  # different query, different key


def test_job_submit_poll_done(service):
    status, _, body = _request(
        service.port, "POST", "/studies", body={"seed": 99, "jobs": 0}
    )
    assert status == 202
    job_id = body["id"]
    assert body["poll"] == f"/jobs/{job_id}"
    deadline = time.monotonic() + 30
    state = None
    while time.monotonic() < deadline:
        _, _, polled = _get(service.port, f"/jobs/{job_id}")
        state = polled["state"]
        if state in ("done", "failed"):
            break
        time.sleep(0.05)
    assert state == "done"
    assert polled["result"] == {"ok": True, "seed": 99}
    assert polled["wall_s"] >= 0
    # And it shows up in the listing.
    _, _, listing = _get(service.port, "/jobs")
    assert job_id in {job["id"] for job in listing["jobs"]}


def test_job_validation_rejected_with_400(service):
    status, _, body = _request(
        service.port, "POST", "/studies", body={"scale": 5.0}
    )
    assert status == 400
    status, _, body = _request(
        service.port, "POST", "/studies", body={"dataset": "D0"}  # typo
    )
    assert status == 400
    assert "unknown study parameters" in body["error"]
    status, _, _ = _get(service.port, "/jobs/deadbeef")
    assert status == 404


def test_saturated_queue_answers_429_not_hang(store_study, tmp_path):
    """Fill a 1-deep queue behind a blocked worker: the next submit must
    come back immediately as 429 + Retry-After, and unblocking must let
    the backlog drain."""
    _, root = store_study
    release = threading.Event()
    svc = ReproService(
        str(root),
        port=0,
        job_workers=1,
        job_queue=1,
        job_runner=lambda request, store_dir: (release.wait(30), {"ok": True})[1],
    )
    svc.start_background()
    try:
        accepted = []
        saw_429 = None
        started = time.monotonic()
        for _ in range(6):
            status, headers, body = _request(
                svc.port, "POST", "/studies", body={"jobs": 0}
            )
            if status == 202:
                accepted.append(body["id"])
            elif status == 429:
                saw_429 = headers
                break
        elapsed = time.monotonic() - started
        assert saw_429 is not None, "queue never saturated"
        assert elapsed < 10, "a full queue must answer immediately, not hang"
        assert int(saw_429["retry-after"]) >= 1
        release.set()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            _, _, listing = _get(svc.port, "/jobs")
            states = {job["id"]: job["state"] for job in listing["jobs"]}
            if all(states[jid] == "done" for jid in accepted):
                break
            time.sleep(0.05)
        assert all(states[jid] == "done" for jid in accepted)
    finally:
        release.set()
        svc.shutdown()


def test_daemon_read_through(store_study, tmp_path):
    """The service reads per-tenant window artifacts exactly as the
    daemon publishes them — no daemon process required."""
    import shutil

    _, root = store_study
    mirror = tmp_path / "store"
    shutil.copytree(root, mirror)
    tdir = mirror / "daemon" / "acme"
    (tdir / "windows").mkdir(parents=True)
    for trace in (0, 1):
        for index in range(3):
            (tdir / "windows" / f"t{trace:03d}-w{index:06d}.json").write_text(
                json.dumps({
                    "tenant": "acme", "trace": trace, "index": index,
                    "packets": 10 * (index + 1), "bytes": 1000, "duration": 60.0,
                    "tcp_packets": 8, "retransmits": 0, "conn_starts": {},
                    "start_ts": 0.0,
                })
            )
    (tdir / "windows" / "t000-w000099.json").write_text("{corrupt")
    (tdir / "result.json").write_text(json.dumps({"tenant": "acme", "traces": 2}))

    svc = ReproService(str(mirror), port=0)
    svc.start_background()
    try:
        _, _, listing = _get(svc.port, "/daemon")
        assert listing["tenants"][0]["tenant"] == "acme"
        assert listing["tenants"][0]["windows"] == 7  # incl. the corrupt one
        assert listing["tenants"][0]["complete"] is True

        _, _, body = _get(svc.port, "/daemon/acme/windows")
        assert body["count"] == 6
        assert body["skipped"] == 1  # corrupt artifact skipped, counted

        _, _, body = _get(svc.port, "/daemon/acme/windows?trace=1&since=1")
        assert body["count"] == 2
        assert all(w["trace"] == 1 and w["index"] >= 1 for w in body["windows"])

        _, _, body = _get(svc.port, "/daemon/acme/windows?limit=2")
        assert body["count"] == 2 and body["truncated"] is True

        _, _, body = _get(svc.port, "/daemon/acme/result")
        assert body["result"]["traces"] == 2

        status, _, _ = _get(svc.port, "/daemon/ghost/windows")
        assert status == 404
    finally:
        svc.shutdown()


def test_events_tail_ends_on_shutdown(store_study, tmp_path):
    """A live /events tail must end promptly when the service drains —
    the follow stop predicate at work — even while the log stays busy."""
    _, root = store_study
    svc = ReproService(
        str(root), port=0,
        telemetry=TelemetryLog(path=tmp_path / "svc.jsonl"),
    )
    svc.start_background()
    received: list[dict] = []
    done = threading.Event()

    def tail() -> None:
        conn = http.client.HTTPConnection("127.0.0.1", svc.port, timeout=60)
        try:
            conn.request("GET", "/events?timeout=60")
            response = conn.getresponse()
            for raw in response:
                line = raw.strip()
                if line:
                    received.append(json.loads(line))
        except (OSError, http.client.HTTPException):
            pass
        finally:
            conn.close()
            done.set()

    thread = threading.Thread(target=tail, daemon=True)
    thread.start()
    # Traffic keeps the telemetry file growing while the tail runs.
    for _ in range(5):
        _get(svc.port, "/health")
        time.sleep(0.05)
    started = time.monotonic()
    svc.shutdown()
    assert done.wait(10.0), "tail did not end on shutdown"
    assert time.monotonic() - started < 10.0
    assert any(event.get("event") == "request" for event in received)


def test_events_404_without_telemetry(store_study):
    _, root = store_study
    svc = ReproService(str(root), port=0)
    svc.start_background()
    try:
        status, _, body = _get(svc.port, "/events")
        assert status == 404
    finally:
        svc.shutdown()
