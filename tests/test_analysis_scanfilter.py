"""Tests for the §3 scanner heuristic (repro.analysis.scanfilter)."""

from repro.analysis.conn import ConnRecord
from repro.analysis.scanfilter import filter_scanners, find_scanners


def _conn(orig, resp, ts):
    return ConnRecord(
        proto="tcp", orig_ip=orig, resp_ip=resp, orig_port=40000, resp_port=80,
        first_ts=ts, last_ts=ts + 0.1,
    )


def _sweep(source, base, count, ascending=True, start_ts=0.0):
    """A scanner contacting `count` hosts in address order."""
    targets = range(count) if ascending else range(count - 1, -1, -1)
    return [
        _conn(source, base + offset, start_ts + i * 0.1)
        for i, offset in enumerate(targets)
    ]


class TestHeuristic:
    def test_ascending_sweep_detected(self):
        conns = _sweep(999, 10_000, 60)
        assert find_scanners(conns) == {999}

    def test_descending_sweep_detected(self):
        conns = _sweep(999, 10_000, 60, ascending=False)
        assert find_scanners(conns) == {999}

    def test_below_host_threshold_not_detected(self):
        conns = _sweep(999, 10_000, 50)  # needs MORE than 50
        assert find_scanners(conns) == set()

    def test_random_order_not_detected(self):
        import random

        rng = random.Random(1)
        offsets = list(range(80))
        rng.shuffle(offsets)
        conns = [_conn(999, 10_000 + off, i * 0.1) for i, off in enumerate(offsets)]
        assert find_scanners(conns) == set()

    def test_busy_server_not_flagged(self):
        """A server contacted *by* many hosts is not a scanner."""
        conns = [_conn(10_000 + i, 555, i * 0.1) for i in range(100)]
        assert find_scanners(conns) == set()

    def test_mostly_ordered_with_noise_detected(self):
        """>=45 in-order contacts suffice even with stragglers after."""
        conns = _sweep(999, 10_000, 55)
        conns.append(_conn(999, 9_000, 100.0))
        conns.append(_conn(999, 30_000, 101.0))
        assert find_scanners(conns) == {999}

    def test_known_scanners_always_included(self):
        assert find_scanners([], known_scanners=[42]) == {42}

    def test_repeat_contacts_use_first_time(self):
        conns = _sweep(999, 10_000, 60)
        # Re-contact earlier targets later; must not break detection.
        conns += [_conn(999, 10_000 + i, 1000.0 + i) for i in range(5)]
        assert find_scanners(conns) == {999}


class TestFilter:
    def test_removes_scanner_traffic(self):
        scanner_conns = _sweep(999, 10_000, 60)
        normal = [_conn(1, 2, 0.5), _conn(3, 4, 0.6)]
        result = filter_scanners(scanner_conns + normal)
        assert result.scanners == {999}
        assert result.removed == 60
        assert len(result.kept) == 2

    def test_removed_fraction(self):
        scanner_conns = _sweep(999, 10_000, 60)
        normal = [_conn(i, i + 1, 0.1) for i in range(140)]
        result = filter_scanners(scanner_conns + normal)
        assert result.removed_fraction == 60 / 200

    def test_empty_input(self):
        result = filter_scanners([])
        assert result.removed_fraction == 0.0
        assert result.kept == []
