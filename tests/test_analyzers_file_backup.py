"""Tests for the NFS, NCP, and backup analyzers."""

import random

from repro.analysis.analyzers.backup import BackupAnalyzer
from repro.analysis.analyzers.ncp import NcpAnalyzer
from repro.analysis.analyzers.nfs import NfsAnalyzer
from repro.analysis.flow import FlowTable
from repro.gen.packetize import realize_session
from repro.gen.session import AppEvent, Dir, TcpSession, UdpExchange
from repro.net.packet import decode_packet, make_udp_packet
from repro.proto import backupproto as bp
from repro.proto import ncp, nfs
from repro.util.addr import ip_to_int

_CLIENT = ip_to_int("131.243.1.30")
_SERVER = ip_to_int("131.243.6.6")


def _run(analyzer, sessions, full_payload=True):
    table = FlowTable(collect_payload=full_payload, udp_observer=analyzer.on_udp)
    rng = random.Random(6)
    for session in sessions:
        for pkt in realize_session(session, rng):
            table.process(decode_packet(pkt))
    for result in table.flush():
        analyzer.on_connection(result, full_payload)
    return analyzer.result()


class TestNfsAnalyzer:
    def _udp_exchange(self, ops):
        events = []
        for xid, (proc, status, data) in enumerate(ops):
            call = nfs.RpcCall(xid=xid, proc=proc,
                               data=data if proc == nfs.PROC_WRITE else b"")
            reply = nfs.RpcReply(
                xid=xid, proc=proc, status=status,
                data=data if proc == nfs.PROC_READ else b"",
            )
            events.append(AppEvent(0.002, Dir.C2S, call.encode()))
            events.append(AppEvent(0.0005, Dir.S2C, reply.encode()))
        return UdpExchange(
            client_ip=_CLIENT, server_ip=_SERVER, client_mac=1, server_mac=2,
            sport=50000, dport=2049, start=1.0, rtt=0.0004, events=events,
        )

    def test_request_mix_counted(self):
        report = _run(NfsAnalyzer(), [self._udp_exchange([
            (nfs.PROC_READ, nfs.NFS3_OK, b"r" * 8192),
            (nfs.PROC_GETATTR, nfs.NFS3_OK, b""),
            (nfs.PROC_GETATTR, nfs.NFS3_OK, b""),
        ])])
        assert report.requests_by_type["Read"] == 1
        assert report.requests_by_type["GetAttr"] == 2
        assert report.request_type_fraction("GetAttr") == 2 / 3

    def test_bytes_attributed_to_type(self):
        report = _run(NfsAnalyzer(), [self._udp_exchange([
            (nfs.PROC_READ, nfs.NFS3_OK, b"r" * 8192),
            (nfs.PROC_ACCESS, nfs.NFS3_OK, b""),
        ])])
        assert report.bytes_by_type["Read"] > 8192
        assert report.bytes_by_type["Access"] < 400

    def test_dual_mode_sizes(self):
        report = _run(NfsAnalyzer(), [self._udp_exchange([
            (nfs.PROC_READ, nfs.NFS3_OK, b"r" * 8192),
            (nfs.PROC_GETATTR, nfs.NFS3_OK, b""),
        ])])
        assert min(report.reply_sizes) < 200
        assert max(report.reply_sizes) > 8000

    def test_failures_counted(self):
        report = _run(NfsAnalyzer(), [self._udp_exchange([
            (nfs.PROC_LOOKUP, nfs.NFS3ERR_NOENT, b""),
            (nfs.PROC_GETATTR, nfs.NFS3_OK, b""),
        ])])
        assert report.replies_failed == 1
        assert report.request_success_rate() == 0.5
        assert report.failed_by_type["LookUp"] == 1

    def test_udp_pairs_tracked(self):
        report = _run(NfsAnalyzer(), [self._udp_exchange([
            (nfs.PROC_GETATTR, nfs.NFS3_OK, b""),
        ])])
        assert report.udp_pair_fraction() == 1.0
        assert report.tcp_pair_fraction() == 0.0

    def test_tcp_records_parsed(self):
        call = nfs.RpcCall(xid=1, proc=nfs.PROC_READ, count=8192)
        reply = nfs.RpcReply(xid=1, proc=nfs.PROC_READ, data=b"r" * 8192)
        session = TcpSession(
            client_ip=_CLIENT, server_ip=_SERVER, client_mac=1, server_mac=2,
            sport=50001, dport=2049, start=1.0, rtt=0.0004, loss_rate=0.0,
            events=[
                AppEvent(0.0, Dir.C2S, nfs.frame_tcp_record(call.encode())),
                AppEvent(0.001, Dir.S2C, nfs.frame_tcp_record(reply.encode())),
            ],
        )
        report = _run(NfsAnalyzer(), [session])
        assert report.requests_by_type["Read"] == 1
        assert report.tcp_pairs

    def test_requests_per_pair(self):
        report = _run(NfsAnalyzer(), [self._udp_exchange(
            [(nfs.PROC_GETATTR, nfs.NFS3_OK, b"")] * 7
        )])
        assert report.requests_per_pair[(_CLIENT, _SERVER)] == 7


class TestNcpAnalyzer:
    def _ncp_session(self, ops=None, keepalives=0):
        events = []
        for seq, (function, data, reply_data) in enumerate(ops or [], start=1):
            request = ncp.NcpRequest(sequence=seq, function=function, data=data)
            reply = ncp.NcpReply(sequence=seq, data=reply_data)
            events.append(AppEvent(0.002, Dir.C2S, ncp.frame_ncp_ip(request.encode())))
            events.append(AppEvent(0.0005, Dir.S2C, ncp.frame_ncp_ip(reply.encode())))
        return TcpSession(
            client_ip=_CLIENT, server_ip=_SERVER, client_mac=1, server_mac=2,
            sport=51000 + len(events), dport=524, start=1.0, rtt=0.0004,
            events=events, loss_rate=0.0,
            keepalive_interval=30.0 if keepalives else None,
            keepalive_count=keepalives,
            close="none" if keepalives else "fin",
        )

    def test_request_mix(self):
        report = _run(NcpAnalyzer(), [self._ncp_session([
            (ncp.FUNC_READ_FILE, b"\x00" * 6, b"\x00\x00" + b"r" * 8190),
            (ncp.FUNC_FILE_SEARCH, b"\x00" * 40, b"\x00\x00" + b"f" * 140),
        ])])
        assert report.requests_by_type["Read"] == 1
        assert report.requests_by_type["File Search"] == 1

    def test_read_dominates_bytes(self):
        report = _run(NcpAnalyzer(), [self._ncp_session([
            (ncp.FUNC_READ_FILE, b"\x00" * 6, b"\x00\x00" + b"r" * 8190),
            (ncp.FUNC_FILE_SEARCH, b"\x00" * 40, b"\x00\x00" + b"f" * 140),
        ])])
        assert report.bytes_type_fraction("Read") > 0.9

    def test_modal_reply_sizes(self):
        report = _run(NcpAnalyzer(), [self._ncp_session([
            (ncp.FUNC_WRITE_FILE, b"w" * 100, b"\x00\x00"),           # 2-byte mode
            (ncp.FUNC_FILE_SIZE, b"\x00" * 6, b"\x00\x00" + b"s" * 8),  # 10-byte
            (ncp.FUNC_READ_FILE, b"\x00" * 6, b"\x00\x00" + b"r" * 258),  # 260-byte
        ])])
        assert sorted(report.reply_sizes) == [2, 10, 260]

    def test_read_request_14_byte_mode(self):
        report = _run(NcpAnalyzer(), [self._ncp_session([
            (ncp.FUNC_READ_FILE, b"\x00" * 6, b"\x00\x00"),
        ])])
        assert report.request_sizes == [14]

    def test_keepalive_only_connection_detected(self):
        report = _run(NcpAnalyzer(), [self._ncp_session(keepalives=5)])
        assert report.keepalive_only_conns == 1
        assert report.keepalive_only_fraction() == 1.0

    def test_active_connection_not_keepalive_only(self):
        report = _run(NcpAnalyzer(), [self._ncp_session(
            ops=[(ncp.FUNC_READ_FILE, b"\x00" * 6, b"\x00\x00")], keepalives=0,
        )])
        assert report.keepalive_only_conns == 0


class TestBackupAnalyzer:
    def _backup_session(self, dport, c2s_bytes, s2c_bytes=0):
        events = []
        if c2s_bytes:
            record = bp.BackupRecord(bp.MAGIC_DANTZ, bp.REC_DATA, b"\x00" * c2s_bytes)
            events.append(AppEvent(0.01, Dir.C2S, record.encode()))
        if s2c_bytes:
            record = bp.BackupRecord(bp.MAGIC_DANTZ, bp.REC_DATA, b"\x00" * s2c_bytes)
            events.append(AppEvent(0.01, Dir.S2C, record.encode()))
        return TcpSession(
            client_ip=_CLIENT, server_ip=_SERVER, client_mac=1, server_mac=2,
            sport=52000 + dport % 100, dport=dport, start=1.0, rtt=0.0004,
            events=events, loss_rate=0.0,
        )

    def test_products_identified_by_port(self):
        report = _run(BackupAnalyzer(), [
            self._backup_session(bp.VERITAS_DATA_PORT, 100_000),
            self._backup_session(bp.DANTZ_PORT, 100_000, 80_000),
            self._backup_session(bp.CONNECTED_PORT, 10_000),
        ])
        assert report.conns("VERITAS-BACKUP-DATA") == 1
        assert report.conns("DANTZ") == 1
        assert report.conns("CONNECTED-BACKUP") == 1

    def test_veritas_one_way(self):
        report = _run(BackupAnalyzer(), [
            self._backup_session(bp.VERITAS_DATA_PORT, 500_000),
        ])
        assert report.reverse_fraction("VERITAS-BACKUP-DATA") < 0.01

    def test_dantz_bidirectional(self):
        report = _run(BackupAnalyzer(), [
            self._backup_session(bp.DANTZ_PORT, 300_000, 200_000),
        ])
        assert report.bidirectional_fraction("DANTZ") == 1.0
        assert report.reverse_fraction("DANTZ") > 0.3
