"""Tests for repro.util.fmt."""

from repro.util.fmt import fmt_bytes, fmt_count, fmt_duration, fmt_mb, fmt_pct


class TestFmtBytes:
    def test_small(self):
        assert fmt_bytes(512) == "512 B"

    def test_kb(self):
        assert fmt_bytes(1500) == "1.50 KB"

    def test_gb(self):
        assert fmt_bytes(13.12e9) == "13.12 GB"

    def test_tb(self):
        assert "TB" in fmt_bytes(2e12)


class TestFmtMb:
    def test_whole_megabytes(self):
        assert fmt_mb(152e6) == "152MB"

    def test_sub_megabyte(self):
        assert fmt_mb(700_000) == "0.7MB"


class TestFmtPct:
    def test_round(self):
        assert fmt_pct(0.66) == "66%"

    def test_sub_one_percent_keeps_decimal(self):
        assert fmt_pct(0.002) == "0.2%"

    def test_zero(self):
        assert fmt_pct(0.0) == "0%"

    def test_precision(self):
        assert fmt_pct(0.1234, precision=1) == "12.3%"


class TestFmtCount:
    def test_millions(self):
        assert fmt_count(17.8e6) == "17.8M"

    def test_thousands(self):
        assert fmt_count(2500) == "2.5K"

    def test_small(self):
        assert fmt_count(42) == "42"


class TestFmtDuration:
    def test_microseconds(self):
        assert "us" in fmt_duration(5e-5)

    def test_milliseconds(self):
        assert "ms" in fmt_duration(0.02)

    def test_seconds(self):
        assert fmt_duration(10.0) == "10.0 s"

    def test_minutes(self):
        assert fmt_duration(600) == "10.0 min"

    def test_hours(self):
        assert fmt_duration(7200) == "2.0 hr"
