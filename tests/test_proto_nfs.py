"""Tests for repro.proto.nfs (ONC RPC + NFSv3)."""

import pytest

from repro.proto.nfs import (
    NFS3_OK,
    NFS3ERR_NOENT,
    PROC_ACCESS,
    PROC_GETATTR,
    PROC_LOOKUP,
    PROC_READ,
    PROC_READDIR,
    PROC_WRITE,
    RpcCall,
    RpcReply,
    frame_tcp_record,
    parse_tcp_records,
    proc_table_row,
)


class TestRpcCall:
    def test_getattr_round_trip(self):
        call = RpcCall(xid=101, proc=PROC_GETATTR)
        back = RpcCall.decode(call.encode())
        assert back.xid == 101
        assert back.proc == PROC_GETATTR

    def test_lookup_carries_name(self):
        call = RpcCall(xid=5, proc=PROC_LOOKUP, name="missing-file")
        assert RpcCall.decode(call.encode()).name == "missing-file"

    def test_read_carries_offset_count(self):
        call = RpcCall(xid=6, proc=PROC_READ, offset=8192, count=8192)
        back = RpcCall.decode(call.encode())
        assert back.offset == 8192
        assert back.count == 8192

    def test_write_carries_data(self):
        call = RpcCall(xid=7, proc=PROC_WRITE, offset=0, data=b"w" * 8192)
        back = RpcCall.decode(call.encode())
        assert back.data == b"w" * 8192
        assert back.count == 8192

    def test_write_size_is_data_mode(self):
        """Write calls land in the ~8 KB mode of Figure 8a."""
        assert len(RpcCall(xid=1, proc=PROC_WRITE, data=b"w" * 8192).encode()) > 8192

    def test_control_calls_are_small(self):
        """Non-IO calls land in the ~100-byte mode of Figure 8a."""
        assert len(RpcCall(xid=1, proc=PROC_GETATTR).encode()) < 150

    def test_rejects_reply(self):
        reply = RpcReply(xid=1, proc=PROC_READ).encode()
        with pytest.raises(ValueError):
            RpcCall.decode(reply)

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            RpcCall.decode(b"\x00" * 10)


class TestRpcReply:
    def test_read_reply_round_trip(self):
        reply = RpcReply(xid=9, proc=PROC_READ, data=b"r" * 8192)
        back = RpcReply.decode(reply.encode())
        assert back.xid == 9
        assert back.status == NFS3_OK

    def test_error_status(self):
        reply = RpcReply(xid=10, proc=PROC_LOOKUP, status=NFS3ERR_NOENT)
        assert RpcReply.decode(reply.encode()).status == NFS3ERR_NOENT

    def test_rejects_call(self):
        with pytest.raises(ValueError):
            RpcReply.decode(RpcCall(xid=1, proc=PROC_READ).encode())


class TestTcpRecordMarking:
    def test_round_trip(self):
        messages = [RpcCall(xid=i, proc=PROC_GETATTR).encode() for i in range(3)]
        stream = b"".join(frame_tcp_record(m) for m in messages)
        assert parse_tcp_records(stream) == messages

    def test_last_fragment_bit_set(self):
        framed = frame_tcp_record(b"abcd")
        assert framed[0] & 0x80

    def test_truncated_final_record(self):
        stream = frame_tcp_record(b"x" * 100)[:-30]
        records = parse_tcp_records(stream)
        assert len(records) == 1
        assert len(records[0]) == 70


class TestTableRows:
    def test_named_rows(self):
        assert proc_table_row(PROC_READ) == "Read"
        assert proc_table_row(PROC_WRITE) == "Write"
        assert proc_table_row(PROC_GETATTR) == "GetAttr"
        assert proc_table_row(PROC_LOOKUP) == "LookUp"
        assert proc_table_row(PROC_ACCESS) == "Access"

    def test_other_rows(self):
        assert proc_table_row(PROC_READDIR) == "Other"
        assert proc_table_row(99) == "Other"
