"""Tests for repro.proto.ncp, repro.proto.backupproto, repro.proto.misc."""

import pytest

from repro.proto import backupproto as bp
from repro.proto import misc
from repro.proto.ncp import (
    FUNC_CLOSE_FILE,
    FUNC_DIRECTORY_SERVICE,
    FUNC_FILE_DIR_INFO,
    FUNC_FILE_SEARCH,
    FUNC_FILE_SIZE,
    FUNC_OPEN_FILE,
    FUNC_READ_FILE,
    FUNC_WRITE_FILE,
    NcpReply,
    NcpRequest,
    frame_ncp_ip,
    function_table_row,
    parse_ncp_ip_stream,
)


class TestNcpRequest:
    def test_round_trip(self):
        request = NcpRequest(sequence=9, function=FUNC_FILE_DIR_INFO, data=b"\x00" * 30)
        back = NcpRequest.decode(request.encode())
        assert back.sequence == 9
        assert back.function == FUNC_FILE_DIR_INFO

    def test_read_request_is_14_bytes(self):
        """The Figure 8c mode: read requests encode to 14 bytes."""
        request = NcpRequest(sequence=1, function=FUNC_READ_FILE, data=b"\x00" * 6)
        assert len(request.encode()) == 14

    def test_open_close_disambiguation(self):
        opened = NcpRequest(sequence=1, function=FUNC_OPEN_FILE)
        closed = NcpRequest(sequence=2, function=FUNC_CLOSE_FILE)
        assert NcpRequest.decode(opened.encode()).function == FUNC_OPEN_FILE
        assert NcpRequest.decode(closed.encode()).function == FUNC_CLOSE_FILE

    def test_connection_number_16bit(self):
        request = NcpRequest(sequence=1, function=FUNC_READ_FILE, connection=0x1234)
        assert NcpRequest.decode(request.encode()).connection == 0x1234

    def test_rejects_reply_type(self):
        with pytest.raises(ValueError):
            NcpRequest.decode(NcpReply(sequence=1).encode())


class TestNcpReply:
    def test_round_trip(self):
        reply = NcpReply(sequence=4, completion_code=0, data=b"\x00\x00" + b"d" * 8)
        back = NcpReply.decode(reply.encode())
        assert back.sequence == 4
        assert back.succeeded
        assert back.data == b"\x00\x00" + b"d" * 8

    def test_failure_code(self):
        reply = NcpReply(sequence=1, completion_code=0x9C)
        assert not NcpReply.decode(reply.encode()).succeeded

    def test_rejects_request_type(self):
        with pytest.raises(ValueError):
            NcpReply.decode(NcpRequest(sequence=1, function=72).encode())


class TestNcpFraming:
    def test_round_trip(self):
        messages = [
            NcpRequest(sequence=1, function=FUNC_READ_FILE, data=b"\x00" * 6).encode(),
            NcpReply(sequence=1, data=b"\x00\x00" + b"r" * 100).encode(),
        ]
        stream = b"".join(frame_ncp_ip(m) for m in messages)
        assert parse_ncp_ip_stream(stream) == messages

    def test_stops_at_bad_signature(self):
        stream = frame_ncp_ip(b"abc") + b"XXXX\x00\x00\x00\x10stuff"
        assert len(parse_ncp_ip_stream(stream)) == 1


class TestNcpTableRows:
    def test_all_rows_mapped(self):
        expectations = {
            FUNC_READ_FILE: "Read",
            FUNC_WRITE_FILE: "Write",
            FUNC_FILE_DIR_INFO: "FileDirInfo",
            FUNC_OPEN_FILE: "File Open/Close",
            FUNC_CLOSE_FILE: "File Open/Close",
            FUNC_FILE_SIZE: "File Size",
            FUNC_FILE_SEARCH: "File Search",
            FUNC_DIRECTORY_SERVICE: "Directory Service",
        }
        for function, row in expectations.items():
            assert function_table_row(function) == row
        assert function_table_row(23) == "Other"


class TestBackupRecords:
    def test_round_trip(self):
        record = bp.BackupRecord(bp.MAGIC_DANTZ, bp.REC_DATA, b"\x00" * 500)
        back, consumed = bp.BackupRecord.decode(record.encode())
        assert back == record
        assert consumed == len(record.encode())

    def test_stream(self):
        stream = b"".join(
            bp.BackupRecord(bp.MAGIC_VERITAS, bp.REC_DATA, b"v" * 100).encode()
            for _ in range(4)
        )
        assert len(bp.parse_backup_stream(stream)) == 4

    def test_unknown_magic_rejected(self):
        with pytest.raises(ValueError):
            bp.BackupRecord.decode(b"XXXX\x01\x00\x00\x00\x00")

    def test_parse_stops_at_garbage(self):
        good = bp.BackupRecord(bp.MAGIC_CONNECTED, bp.REC_CONTROL, b"c").encode()
        records = bp.parse_backup_stream(good + b"JUNKJUNKJUNK")
        assert len(records) == 1


class TestMiscBuilders:
    def test_ntp_is_48_bytes(self):
        assert len(misc.build_ntp()) == 48
        assert len(misc.build_ntp(mode=4)) == 48

    def test_ntp_mode_bits(self):
        assert misc.build_ntp(mode=3)[0] & 0x07 == 3

    def test_snmp_is_ber_sequence(self):
        data = misc.build_snmp_get()
        assert data[0] == 0x30
        assert data[1] == len(data) - 2

    def test_dhcp_has_magic_cookie(self):
        data = misc.build_dhcp_discover(0xAABBCCDDEEFF)
        assert b"\x63\x82\x53\x63" in data
        assert len(data) >= 240

    def test_dhcp_carries_mac(self):
        mac = 0x00A0C9010203
        data = misc.build_dhcp_discover(mac)
        assert mac.to_bytes(6, "big") in data

    def test_srvloc_version(self):
        data = misc.build_srvloc_request()
        assert data[0] == 2  # SLPv2
        assert b"service:printer" in data

    def test_sap_has_sdp_payload(self):
        data = misc.build_sap_announce()
        assert b"application/sdp" in data

    def test_syslog_priority(self):
        data = misc.build_syslog(6, "hello")
        assert data.startswith(b"<134>")  # local0.info
