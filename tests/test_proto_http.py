"""Tests for repro.proto.http."""

from hypothesis import given
from hypothesis import strategies as st

from repro.proto.http import (
    HttpRequest,
    HttpResponse,
    build_request,
    build_response,
    parse_requests,
    parse_responses,
)


class TestBuildParseRequests:
    def test_simple_get(self):
        data = build_request("GET", "/index.html", "www.example.com")
        (request,) = parse_requests(data)
        assert request.method == "GET"
        assert request.uri == "/index.html"
        assert request.host == "www.example.com"
        assert not request.is_conditional

    def test_conditional_get(self):
        data = build_request(
            "GET", "/x", "h", headers={"If-Modified-Since": "yesterday"}
        )
        (request,) = parse_requests(data)
        assert request.is_conditional

    def test_if_none_match_is_conditional(self):
        data = build_request("GET", "/x", "h", headers={"If-None-Match": '"tag"'})
        assert parse_requests(data)[0].is_conditional

    def test_post_with_body(self):
        data = build_request("POST", "/sync", "ifolder", body=b"payload-bytes")
        (request,) = parse_requests(data)
        assert request.method == "POST"
        assert request.body == b"payload-bytes"

    def test_user_agent(self):
        data = build_request("GET", "/", "h", user_agent="googlebot-appliance")
        assert parse_requests(data)[0].user_agent == "googlebot-appliance"

    def test_pipelined_requests(self):
        data = build_request("GET", "/a", "h") + build_request("GET", "/b", "h")
        requests = parse_requests(data)
        assert [r.uri for r in requests] == ["/a", "/b"]

    def test_incomplete_headers_returns_partial(self):
        data = build_request("GET", "/a", "h") + b"GET /b HTTP/1.1\r\nHost:"
        assert len(parse_requests(data)) == 1

    def test_garbage_stops_parsing(self):
        assert parse_requests(b"\x00\x01\x02\r\n\r\n") == []

    def test_truncated_body_with_flag(self):
        data = build_request("POST", "/x", "h", body=b"z" * 100)[:-50]
        requests = parse_requests(data, truncated=True)
        assert len(requests) == 1
        assert len(requests[0].body) == 50


class TestBuildParseResponses:
    def test_simple_ok(self):
        data = build_response(200, "OK", "text/html", b"<html></html>")
        (response,) = parse_responses(data)
        assert response.status == 200
        assert response.content_type == "text/html"
        assert response.body_size == 13

    def test_not_modified_no_body(self):
        data = build_response(304, "Not Modified")
        (response,) = parse_responses(data)
        assert response.status == 304
        assert response.body_size == 0

    def test_content_categories(self):
        cases = {
            "text/html": "text",
            "image/gif": "image",
            "application/pdf": "application",
            "audio/mpeg": "other",
            "": "other",
        }
        for ctype, expected in cases.items():
            response = HttpResponse(status=200, headers={"content-type": ctype})
            assert response.content_category == expected

    def test_content_type_strips_parameters(self):
        response = HttpResponse(
            status=200, headers={"content-type": "text/html; charset=utf-8"}
        )
        assert response.content_type == "text/html"

    def test_persistent_connection_stream(self):
        data = b"".join(
            build_response(200, "OK", "image/gif", bytes(size))
            for size in (10, 20, 30)
        )
        responses = parse_responses(data)
        assert [r.body_size for r in responses] == [10, 20, 30]

    def test_truncated_body_reports_content_length(self):
        data = build_response(200, "OK", "application/zip", b"z" * 1000)[:200]
        (response,) = parse_responses(data, truncated=True)
        assert response.body_size == 1000
        assert len(response.body) < 1000

    def test_non_http_prefix_stops(self):
        assert parse_responses(b"SSH-2.0-OpenSSH\r\n\r\n") == []


class TestRequestResponsePairing:
    def test_equal_counts_on_clean_session(self):
        client = b"".join(build_request("GET", f"/{i}", "h") for i in range(4))
        server = b"".join(
            build_response(200, "OK", "text/plain", b"a" * i) for i in range(4)
        )
        assert len(parse_requests(client)) == len(parse_responses(server)) == 4


@given(
    method=st.sampled_from(["GET", "POST", "HEAD"]),
    uri=st.text(alphabet="abcdefgh/0123456789", min_size=1, max_size=30),
    body=st.binary(max_size=500),
)
def test_request_round_trip_property(method, uri, body):
    data = build_request(method, "/" + uri, "host.example", body=body)
    (request,) = parse_requests(data)
    assert request.method == method
    assert request.uri == "/" + uri
    assert request.body == body


@given(status=st.integers(min_value=100, max_value=599), body=st.binary(max_size=500))
def test_response_round_trip_property(status, body):
    data = build_response(status, "Reason", "application/octet-stream", body)
    (response,) = parse_responses(data)
    assert response.status == status
    assert response.body == body


class TestChunkedEncoding:
    def test_round_trip(self):
        data = build_response(200, "OK", "text/html", b"z" * 10_000, chunked=True)
        (response,) = parse_responses(data)
        assert response.body == b"z" * 10_000
        assert response.headers["transfer-encoding"] == "chunked"
        assert response.body_size == 10_000

    def test_empty_body(self):
        data = build_response(200, "OK", "text/html", b"", chunked=True)
        (response,) = parse_responses(data)
        assert response.body == b""

    def test_pipelined_after_chunked(self):
        stream = (
            build_response(200, "OK", "text/html", b"first", chunked=True)
            + build_response(200, "OK", "text/plain", b"second")
        )
        responses = parse_responses(stream)
        assert [r.body for r in responses] == [b"first", b"second"]

    def test_truncated_chunk_recovers_prefix(self):
        data = build_response(200, "OK", "text/html", b"q" * 5000, chunked=True)
        responses = parse_responses(data[:-2600], truncated=True)
        assert len(responses) == 1
        assert responses[0].body == b"q" * len(responses[0].body)
        assert 0 < len(responses[0].body) < 5000

    def test_chunk_sizes_respected(self):
        data = build_response(200, "OK", "text/html", b"a" * 9000,
                              chunked=True, chunk_size=4096)
        # 4096 + 4096 + 808 + terminator
        assert data.count(b"\r\n1000\r\n") + data.count(b"1000\r\n") >= 1
        (response,) = parse_responses(data)
        assert len(response.body) == 9000


from hypothesis import given as _given


@_given(body=st.binary(max_size=20_000))
def test_chunked_round_trip_property(body):
    data = build_response(200, "OK", "application/octet-stream", body, chunked=True)
    (response,) = parse_responses(data)
    assert response.body == body
