"""Tests for the DNS and Netbios/NS analyzers (per-datagram path)."""

from repro.analysis.analyzers.dns import DnsAnalyzer
from repro.analysis.analyzers.netbios import NetbiosAnalyzer
from repro.analysis.flow import FlowTable
from repro.net.packet import decode_packet, make_udp_packet
from repro.proto import dns, netbios
from repro.proto.dns import RCODE_NOERROR, RCODE_NXDOMAIN
from repro.util.addr import ip_to_int

_CLIENT = ip_to_int("131.243.1.10")
_SERVER = ip_to_int("131.243.5.5")
_WAN = ip_to_int("8.8.4.4")


def _feed(analyzer, datagrams):
    """datagrams: (ts, src, dst, sport, dport, payload)."""
    table = FlowTable(udp_observer=analyzer.on_udp)
    for ts, src, dst, sport, dport, payload in datagrams:
        table.process(decode_packet(
            make_udp_packet(ts, 1, 2, src, dst, sport, dport, payload)
        ))
    table.flush()
    return analyzer.result()


class TestDnsAnalyzer:
    def _exchange(self, ts, qtype, rcode, client=_CLIENT, server=_SERVER,
                  latency=0.0004, name="h.example", ident=7):
        query = dns.DnsMessage(ident=ident, questions=[dns.DnsQuestion(name, qtype)])
        response = dns.DnsMessage(
            ident=ident, is_response=True, rcode=rcode,
            questions=[dns.DnsQuestion(name, qtype)],
        )
        return [
            (ts, client, server, 40000, 53, query.encode()),
            (ts + latency, server, client, 53, 40000, response.encode()),
        ]

    def test_request_types_counted(self):
        datagrams = (
            self._exchange(1.0, dns.QTYPE_A, RCODE_NOERROR, ident=1)
            + self._exchange(2.0, dns.QTYPE_AAAA, RCODE_NOERROR, ident=2)
            + self._exchange(3.0, dns.QTYPE_A, RCODE_NXDOMAIN, ident=3)
        )
        report = _feed(DnsAnalyzer(), datagrams)
        assert report.internal.qtypes["A"] == 2
        assert report.internal.qtypes["AAAA"] == 1

    def test_rcodes_counted(self):
        datagrams = (
            self._exchange(1.0, dns.QTYPE_A, RCODE_NOERROR, ident=1)
            + self._exchange(2.0, dns.QTYPE_A, RCODE_NXDOMAIN, ident=2)
        )
        report = _feed(DnsAnalyzer(), datagrams)
        assert report.internal.rcode_fraction(RCODE_NOERROR) == 0.5
        assert report.internal.rcode_fraction(RCODE_NXDOMAIN) == 0.5

    def test_latency_measured(self):
        report = _feed(DnsAnalyzer(), self._exchange(1.0, dns.QTYPE_A, RCODE_NOERROR,
                                                     latency=0.02))
        (latency,) = report.internal.latencies
        assert 0.015 < latency < 0.025

    def test_wan_side_separate(self):
        datagrams = self._exchange(1.0, dns.QTYPE_A, RCODE_NOERROR,
                                   client=_SERVER, server=_WAN, latency=0.02)
        report = _feed(DnsAnalyzer(), datagrams)
        assert report.wan.requests == 1
        assert report.internal.requests == 0

    def test_requests_per_client(self):
        datagrams = (
            self._exchange(1.0, dns.QTYPE_A, RCODE_NOERROR, ident=1)
            + self._exchange(2.0, dns.QTYPE_A, RCODE_NOERROR, ident=2)
            + self._exchange(3.0, dns.QTYPE_A, RCODE_NOERROR,
                             client=_CLIENT + 1, ident=3)
        )
        report = _feed(DnsAnalyzer(), datagrams)
        assert report.top_client_share(1) == 2 / 3

    def test_garbage_payload_ignored(self):
        report = _feed(DnsAnalyzer(), [(1.0, _CLIENT, _SERVER, 40000, 53, b"\x01")])
        assert report.internal.requests == 0


class TestNetbiosAnalyzer:
    def _exchange(self, ts, name, opcode=netbios.NB_OPCODE_QUERY,
                  rcode=RCODE_NOERROR, client=_CLIENT, suffix=0x00, ident=9):
        request = netbios.NbnsPacket(ident=ident, opcode=opcode, name=name, suffix=suffix)
        response = netbios.NbnsPacket(
            ident=ident, opcode=opcode, name=name, suffix=suffix,
            is_response=True, rcode=rcode,
        )
        return [
            (ts, client, _SERVER, 137, 137, request.encode()),
            (ts + 0.001, _SERVER, client, 137, 137, response.encode()),
        ]

    def test_request_types(self):
        datagrams = (
            self._exchange(1.0, "WS01")
            + self._exchange(2.0, "WS01", opcode=netbios.NB_OPCODE_REFRESH)
        )
        report = _feed(NetbiosAnalyzer(), datagrams)
        assert report.request_types["query"] == 1
        assert report.request_types["refresh"] == 1

    def test_name_types(self):
        datagrams = (
            self._exchange(1.0, "WS01", suffix=netbios.NAME_TYPE_WORKSTATION)
            + self._exchange(2.0, "DOM", suffix=netbios.NAME_TYPE_DOMAIN)
        )
        report = _feed(NetbiosAnalyzer(), datagrams)
        assert report.name_types["host"] == 1
        assert report.name_types["domain"] == 1

    def test_distinct_query_failure_rate(self):
        """The stale-name metric counts distinct (client, name) queries."""
        datagrams = []
        for i in range(5):  # repeated failures of the same stale name
            datagrams += self._exchange(float(i), "STALE", rcode=RCODE_NXDOMAIN, ident=i)
        datagrams += self._exchange(10.0, "ALIVE", rcode=RCODE_NOERROR, ident=99)
        report = _feed(NetbiosAnalyzer(), datagrams)
        assert report.distinct_query_failure_rate() == 0.5

    def test_top_clients_share(self):
        datagrams = []
        for i in range(10):
            datagrams += self._exchange(float(i), f"N{i}", client=_CLIENT + i, ident=i)
        report = _feed(NetbiosAnalyzer(), datagrams)
        assert report.top_clients_share(10) == 1.0
        assert report.top_clients_share(1) == 0.1

    def test_non_nbns_traffic_ignored(self):
        report = _feed(NetbiosAnalyzer(), [(1.0, _CLIENT, _SERVER, 40000, 53, b"data")])
        assert report.requests == 0
