"""The runtime wired through the study pipeline and the CLI.

The load-bearing guarantees: any ``jobs`` value renders byte-identical
tables and figures from the same seed (the acceptance bar for the
parallel path); a worker crash costs the study one quarantined dataset
under the tolerant policies and a typed raise under strict; warm store
runs short-circuit inside the workers; and the CLI flags surface all of
it without perturbing stdout.
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

import repro.core.study as study_module
from repro.analysis.errors import ErrorKind, IngestionError
from repro.core.cli import main
from repro.core.study import _dataset_unit_worker, run_study
from repro.runtime import RetryPolicy

_PARAMS = dict(seed=7, scale=0.004, datasets=("D0", "D1"), max_windows=2)
_TABLES = (1, 2, 3, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)
_FAST_RETRY = RetryPolicy(max_retries=1, backoff=0.01)


def _study_digest(results) -> str:
    """One digest over every rendered table and figure of a run."""
    digest = hashlib.sha256()
    for number in _TABLES:
        digest.update(results.render_table(number).encode())
    for number in range(1, 11):
        digest.update(results.render_figure(number).encode())
    digest.update(results.render_data_quality().encode())
    return digest.hexdigest()


# -- workers (module-level: they cross the fork boundary) --------------------


def _crash_d1_worker(spec):
    """The real dataset worker, except D1 dies hard every time."""
    if spec["dataset"] == "D1":
        os._exit(23)
    return _dataset_unit_worker(spec)


# -- determinism -------------------------------------------------------------


class TestDeterminism:
    def test_same_digest_at_jobs_1_2_4(self):
        digests = {
            jobs: _study_digest(run_study(jobs=jobs, **_PARAMS))
            for jobs in (1, 2, 4)
        }
        assert digests[1] == digests[2] == digests[4]

    def test_parallel_run_against_store_matches_and_hits_cache(self, tmp_path):
        store_dir = str(tmp_path / "store")
        cold = run_study(jobs=2, store_dir=store_dir, **_PARAMS)
        warm = run_study(jobs=2, store_dir=store_dir, **_PARAMS)
        assert _study_digest(cold) == _study_digest(warm)
        cold_caches = {
            event["unit"]: event["cache"]
            for event in cold.telemetry.unit_events("unit_finish")
        }
        warm_caches = {
            event["unit"]: event["cache"]
            for event in warm.telemetry.unit_events("unit_finish")
        }
        assert set(cold_caches.values()) == {"miss"}
        assert set(warm_caches.values()) == {"hit"}

    def test_parallel_matches_sequential_store_bytes(self, tmp_path):
        """A parallel cold run and a sequential cold run shard to
        interchangeable stores: the sequential reader warm-loads what
        parallel workers wrote."""
        par_dir = str(tmp_path / "par")
        run_study(jobs=2, store_dir=par_dir, **_PARAMS)
        warm_sequential = run_study(jobs=1, store_dir=par_dir, **_PARAMS)
        sequential = run_study(jobs=1, **_PARAMS)
        assert _study_digest(warm_sequential) == _study_digest(sequential)
        hit = [
            event["cache"]
            for event in warm_sequential.telemetry.unit_events("unit_finish")
        ]
        assert set(hit) == {"hit"}

    def test_out_dir_pcaps_identical_across_jobs(self, tmp_path):
        seq_dir, par_dir = tmp_path / "seq", tmp_path / "par"
        run_study(jobs=1, out_dir=str(seq_dir), **_PARAMS)
        run_study(jobs=4, out_dir=str(par_dir), **_PARAMS)
        seq_files = sorted(p.relative_to(seq_dir) for p in seq_dir.rglob("*.pcap"))
        par_files = sorted(p.relative_to(par_dir) for p in par_dir.rglob("*.pcap"))
        assert seq_files == par_files and seq_files
        for rel in seq_files:
            assert (seq_dir / rel).read_bytes() == (par_dir / rel).read_bytes(), rel


# -- fault recovery ----------------------------------------------------------


class TestWorkerFaults:
    def test_tolerant_policy_quarantines_the_failed_unit(self, monkeypatch):
        monkeypatch.setattr(
            study_module, "_dataset_unit_worker", _crash_d1_worker
        )
        results = run_study(
            jobs=2, error_policy="tolerant", retry=_FAST_RETRY, **_PARAMS
        )
        assert set(results.analyses) == {"D0"}  # D1 quarantined, study alive
        assert len(results.unit_failures) == 1
        failure = results.unit_failures[0]
        assert failure.kind is ErrorKind.WORKER_ERROR
        assert failure.path == "dataset:D1"
        assert "exit code 23" in failure.detail
        assert results.total_errors >= 1
        quality = results.render_data_quality()
        assert "unit dataset:D1 failed (worker_error)" in quality
        retries = results.telemetry.unit_events("unit_retry")
        assert [event["unit"] for event in retries] == ["dataset:D1"]

    def test_strict_policy_raises_typed_worker_error(self, monkeypatch):
        monkeypatch.setattr(
            study_module, "_dataset_unit_worker", _crash_d1_worker
        )
        with pytest.raises(IngestionError) as info:
            run_study(jobs=2, retry=_FAST_RETRY, **_PARAMS)
        assert info.value.kind is ErrorKind.WORKER_ERROR
        assert "dataset:D1" in str(info.value)

    def test_unknown_dataset_rejected_before_any_worker_starts(self):
        with pytest.raises(KeyError):
            run_study(jobs=2, seed=7, scale=0.004, datasets=("D0", "DX"))


# -- the CLI -----------------------------------------------------------------

_CLI_ARGS = [
    "--seed", "7", "--scale", "0.004", "--datasets", "D0", "D1",
    "--max-windows", "2", "--tables", "2", "--figures",
]


class TestCli:
    def test_jobs_flag_leaves_stdout_byte_identical(self, capsys):
        assert main(_CLI_ARGS) == 0
        sequential = capsys.readouterr().out
        assert main(_CLI_ARGS + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == sequential

    def test_progress_and_telemetry_flags(self, tmp_path, capsys):
        telemetry_path = tmp_path / "events.jsonl"
        assert main(
            _CLI_ARGS
            + ["--jobs", "2", "--progress", "--telemetry", str(telemetry_path)]
        ) == 0
        captured = capsys.readouterr()
        assert "[runtime] dataset:D0" in captured.err
        assert "Runtime: per-unit wall time" in captured.err  # timing table
        records = [
            json.loads(line)
            for line in telemetry_path.read_text().strip().splitlines()
        ]
        events = [record["event"] for record in records]
        assert events[0] == "study_start"
        assert events[-1] == "study_finish"
        assert events.count("unit_finish") == 2
