"""Shared fixtures: a small end-to-end study reused across test modules.

Generating and analyzing traces takes seconds even at tiny scale, so the
expensive fixtures are session-scoped and every test that needs realistic
analysis output shares them.
"""

from __future__ import annotations

import pytest

from repro.core.study import run_study
from repro.gen.topology import Enterprise


@pytest.fixture(scope="session")
def enterprise() -> Enterprise:
    """A deterministic topology shared by generator tests."""
    return Enterprise(seed=1234)


@pytest.fixture(scope="session")
def small_study():
    """A quick two-dataset study (D0 full-payload, D1 header-only).

    Twelve windows cover the mail/auth/NFS server subnets plus ordinary
    client subnets, which keeps the category mix representative at this
    tiny scale.
    """
    return run_study(seed=42, scale=0.004, datasets=("D0", "D1"), max_windows=12)


@pytest.fixture(scope="session")
def d3_study():
    """A D3 study covering the router-1 vantage (print/DNS servers)."""
    return run_study(seed=42, scale=0.006, datasets=("D3",), max_windows=10)


@pytest.fixture(scope="session")
def store_study(tmp_path_factory):
    """A tiny store-backed D0 study plus its store root.

    The run is cold (nothing cached beforehand), so afterwards the store
    holds exactly this study's shards.  Tests that corrupt the store must
    copy it into their own tmp dir first.
    """
    root = tmp_path_factory.mktemp("conn-store")
    results = run_study(
        seed=7, scale=0.004, datasets=("D0",), max_windows=4, store_dir=str(root)
    )
    return results, root
