"""Per-tenant daemon configuration: file parsing, precedence, and the
supervisor actually honoring the override when it launches a feed."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.daemon import (
    DaemonConfig,
    DaemonFileConfig,
    DaemonSupervisor,
    TenantSpec,
    load_daemon_config,
    parse_flow_budget,
)
from repro.stream.flowtable import DEFAULT_MAX_FLOWS


def _write(tmp_path: Path, payload: dict) -> Path:
    path = tmp_path / "daemon.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


# -- parse_flow_budget -------------------------------------------------------


def test_parse_flow_budget_forms():
    assert parse_flow_budget("4096") == (None, 4096)
    assert parse_flow_budget("lan=512") == ("lan", 512)
    with pytest.raises(ValueError):
        parse_flow_budget("lan=lots")
    with pytest.raises(ValueError):
        parse_flow_budget("0")


# -- the config file ---------------------------------------------------------


def test_load_full_config(tmp_path):
    path = _write(tmp_path, {
        "window": 30.0,
        "flow_budget": 4096,
        "rules": [{"name": "hot", "metric": "mbps", "threshold": 50}],
        "tenants": {
            "acme": {
                "flow_budget": 512,
                "rules": [{
                    "name": "acme-loss",
                    "metric": "retransmit_rate",
                    "threshold": 0.02,
                    # Even a lying tenant key is pinned to the block:
                    "tenant": "someone-else",
                }],
            },
            "beta": {"flow_budget": 64},
        },
    })
    cfg = load_daemon_config(path)
    assert cfg.settings == {"window": 30.0, "flow_budget": 4096}
    assert cfg.tenant_flow_budgets == {"acme": 512, "beta": 64}
    by_name = {rule.name: rule for rule in cfg.rules}
    assert by_name["hot"].tenant is None
    assert by_name["acme-loss"].tenant == "acme"


@pytest.mark.parametrize(
    "payload",
    [
        {"flow_budgt": 10},                      # top-level typo
        {"tenants": {"a": {"flow_budge": 10}}},  # per-tenant typo
        {"tenants": {"a": {"flow_budget": 0}}},
        {"flow_budget": 0},
        {"tenants": ["a"]},
        {"rules": [{"metric": "mbps", "threshold": 1}]},  # nameless rule
        {"tenants": {"a": {"rules": [{"name": "x", "metric": "nope",
                                      "threshold": 1}]}}},
    ],
)
def test_malformed_configs_refuse_to_load(tmp_path, payload):
    with pytest.raises(ValueError):
        load_daemon_config(_write(tmp_path, payload))


def test_unreadable_config_raises(tmp_path):
    with pytest.raises(ValueError, match="unreadable"):
        load_daemon_config(tmp_path / "missing.json")


# -- precedence --------------------------------------------------------------


def test_precedence_specific_beats_general_cli_beats_file(tmp_path):
    cfg = load_daemon_config(_write(tmp_path, {
        "flow_budget": 4096,
        "tenants": {"acme": {"flow_budget": 512},
                    "beta": {"flow_budget": 64}},
    }))
    # File only: per-tenant file > file global > default.
    resolved = cfg.resolve()
    assert resolved.flow_budget == 4096
    assert resolved.flow_budget_for("acme") == 512
    assert resolved.flow_budget_for("unlisted") == 4096

    # CLI global beats file global but NOT the file's per-tenant entry.
    resolved = cfg.resolve(cli_global_budget=8192)
    assert resolved.flow_budget == 8192
    assert resolved.flow_budget_for("acme") == 512
    assert resolved.flow_budget_for("unlisted") == 8192

    # CLI per-tenant beats everything for its tenant only.
    resolved = cfg.resolve(
        cli_global_budget=8192, cli_tenant_budgets={"acme": 99}
    )
    assert resolved.flow_budget_for("acme") == 99
    assert resolved.flow_budget_for("beta") == 64


def test_precedence_without_any_budget_uses_default(tmp_path):
    resolved = DaemonFileConfig().resolve()
    assert resolved.flow_budget == DEFAULT_MAX_FLOWS
    assert resolved.flow_budget_for("anyone") == DEFAULT_MAX_FLOWS


def test_cli_setting_overrides_file_setting(tmp_path):
    cfg = load_daemon_config(
        _write(tmp_path, {"window": 30.0, "checkpoint_every": 100})
    )
    resolved = cfg.resolve(window=15.0)
    assert resolved.window == 15.0           # explicit CLI flag wins
    assert resolved.checkpoint_every == 100  # file survives where CLI silent
    assert resolved.error_policy == "tolerant"  # untouched default


# -- the supervisor honors the override --------------------------------------


def test_feed_payload_uses_per_tenant_budget(tmp_path):
    tenants = [
        TenantSpec("acme", tmp_path / "acme.pcap"),
        TenantSpec("beta", tmp_path / "beta.pcap"),
    ]
    config = DaemonConfig(
        flow_budget=4096, tenant_flow_budgets={"acme": 512}
    )
    supervisor = DaemonSupervisor(tenants, tmp_path / "store", config=config)
    payloads = {
        spec.name: supervisor._feed_payload(spec) for spec in tenants
    }
    assert payloads["acme"]["flow_budget"] == 512
    assert payloads["beta"]["flow_budget"] == 4096
    # Everything else is shared verbatim.
    assert payloads["acme"]["window"] == config.window
    assert payloads["acme"]["error_policy"] == config.error_policy
