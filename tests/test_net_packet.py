"""Tests for the high-level packet model (craft + flat decode)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.net.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPX
from repro.net.icmp import ICMP_ECHO_REQUEST
from repro.net.ipv4 import PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.net.ipx import IpxPacket
from repro.net.packet import (
    CapturedPacket,
    decode_packet,
    make_arp_packet,
    make_icmp_packet,
    make_ipx_packet,
    make_tcp_packet,
    make_udp_packet,
)
from repro.net.tcp import ACK, PSH, SYN


class TestCapturedPacket:
    def test_truncate(self):
        pkt = CapturedPacket(ts=1.0, data=b"x" * 100, wire_len=100)
        cut = pkt.truncate(68)
        assert cut.caplen == 68
        assert cut.wire_len == 100
        assert cut.truncated

    def test_truncate_noop_when_short(self):
        pkt = CapturedPacket(ts=1.0, data=b"x" * 50, wire_len=50)
        assert pkt.truncate(68) is pkt


class TestTcpCraftDecode:
    def test_fields_survive(self):
        pkt = make_tcp_packet(
            ts=2.5, src_mac=0xA, dst_mac=0xB,
            src_ip=0x83F30101, dst_ip=0x83F30202,
            src_port=44000, dst_port=25, seq=777, ack=888,
            flags=ACK | PSH, payload=b"MAIL FROM:<a@b>\r\n",
        )
        d = decode_packet(pkt)
        assert d.ts == 2.5
        assert d.src_mac == 0xA and d.dst_mac == 0xB
        assert d.src_ip == 0x83F30101 and d.dst_ip == 0x83F30202
        assert d.proto == PROTO_TCP
        assert (d.src_port, d.dst_port) == (44000, 25)
        assert (d.seq, d.ack) == (777, 888)
        assert d.tcp_flags == ACK | PSH
        assert d.payload == b"MAIL FROM:<a@b>\r\n"
        assert d.payload_len == len(d.payload)

    def test_syn_with_mss(self):
        pkt = make_tcp_packet(1, 1, 2, 3, 4, 5, 6, 0, 0, SYN, mss=1460)
        d = decode_packet(pkt)
        assert d.tcp_flags == SYN
        assert d.payload_len == 0

    def test_full_mss_wire_len(self):
        pkt = make_tcp_packet(1, 1, 2, 3, 4, 5, 6, 0, 0, ACK, payload=b"z" * 1460)
        assert pkt.wire_len == 14 + 20 + 20 + 1460

    def test_snaplen_68_recovers_transport_header(self):
        """The D1/D2 scenario: headers survive, payload does not."""
        pkt = make_tcp_packet(1, 1, 2, 3, 4, 5, 80, 9, 0, ACK | PSH, payload=b"w" * 1000)
        d = decode_packet(pkt.truncate(68))
        assert d.src_port == 5 and d.dst_port == 80
        assert d.payload_len == 1000  # true length recovered from IP header
        assert len(d.payload) < 1000
        assert d.payload_truncated

    def test_snaplen_1500_truncates_full_mss_frame(self):
        """A 1514-byte frame under snaplen 1500 loses 14 payload bytes."""
        pkt = make_tcp_packet(1, 1, 2, 3, 4, 5, 80, 9, 0, ACK, payload=b"w" * 1460)
        d = decode_packet(pkt.truncate(1500))
        assert d.payload_len == 1460
        assert len(d.payload) == 1446


class TestUdpCraftDecode:
    def test_fields_survive(self):
        pkt = make_udp_packet(3.0, 1, 2, 10, 20, 5353, 53, payload=b"query")
        d = decode_packet(pkt)
        assert d.proto == PROTO_UDP
        assert (d.src_port, d.dst_port) == (5353, 53)
        assert d.payload == b"query"

    def test_truncated_udp(self):
        pkt = make_udp_packet(1, 1, 2, 3, 4, 5, 6, payload=b"u" * 500)
        d = decode_packet(pkt.truncate(68))
        assert d.payload_len == 500
        assert len(d.payload) < 500


class TestIcmpCraftDecode:
    def test_fields_survive(self):
        pkt = make_icmp_packet(1.0, 1, 2, 3, 4, ICMP_ECHO_REQUEST, ident=9, sequence=2)
        d = decode_packet(pkt)
        assert d.proto == PROTO_ICMP
        assert d.icmp_type == ICMP_ECHO_REQUEST


class TestNonIpDecode:
    def test_arp(self):
        pkt = make_arp_packet(1.0, 5, 0xFFFFFFFFFFFF, 1, 5, 100, 0, 200)
        d = decode_packet(pkt)
        assert d.ethertype == ETHERTYPE_ARP
        assert d.src_ip is None
        assert not d.is_ip
        assert pkt.wire_len == 60  # padded to Ethernet minimum

    def test_ipx(self):
        ipx = IpxPacket(0x04, 0, 1, 1, 0, 2, 2, payload=b"sap")
        pkt = make_ipx_packet(1.0, 2, 0xFFFFFFFFFFFF, ipx)
        d = decode_packet(pkt)
        assert d.ethertype == ETHERTYPE_IPX
        assert d.proto is None

    def test_runt_frame_flagged_not_raised(self):
        decoded = decode_packet(CapturedPacket(ts=0.0, data=b"\x00" * 8, wire_len=8))
        assert decoded.runt
        assert decoded.ethertype == -1
        assert decoded.caplen == 8
        assert not decoded.is_ip


@given(
    sport=st.integers(min_value=1, max_value=65535),
    dport=st.integers(min_value=1, max_value=65535),
    seq=st.integers(min_value=0, max_value=2**32 - 1),
    payload=st.binary(max_size=1460),
)
def test_tcp_craft_decode_property(sport, dport, seq, payload):
    """Any crafted TCP packet decodes back to its inputs."""
    pkt = make_tcp_packet(0.0, 1, 2, 3, 4, sport, dport, seq, 0, ACK, payload=payload)
    d = decode_packet(pkt)
    assert d.src_port == sport
    assert d.dst_port == dport
    assert d.seq == seq
    assert d.payload == payload
