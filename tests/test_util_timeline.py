"""Tests for repro.util.timeline (Figure 9 machinery)."""

import pytest

from repro.util.timeline import ByteTimeline


class TestByteTimeline:
    def test_bin_accumulation(self):
        timeline = ByteTimeline(0.0, 10.0, 1.0)
        timeline.add(0.5, 100)
        timeline.add(0.9, 50)
        timeline.add(5.5, 200)
        bins = timeline.bins()
        assert bins[0] == 150
        assert bins[5] == 200

    def test_end_timestamp_lands_in_last_bin(self):
        timeline = ByteTimeline(0.0, 10.0, 1.0)
        timeline.add(10.0, 42)
        assert timeline.bins()[-1] == 42

    def test_rejects_out_of_span(self):
        timeline = ByteTimeline(0.0, 10.0)
        with pytest.raises(ValueError):
            timeline.add(11.0, 1)
        with pytest.raises(ValueError):
            timeline.add(-1.0, 1)

    def test_rejects_empty_span(self):
        with pytest.raises(ValueError):
            ByteTimeline(5.0, 5.0)

    def test_mbps_conversion(self):
        timeline = ByteTimeline(0.0, 2.0, 1.0)
        timeline.add(0.5, 1_250_000)  # 10 Mbit in one second
        assert timeline.mbps()[0] == pytest.approx(10.0)

    def test_peak_windows_monotone(self):
        """Peak utilization cannot increase with a wider window (Fig 9a)."""
        timeline = ByteTimeline(0.0, 120.0, 1.0)
        for second in range(120):
            timeline.add(second + 0.5, 1000 if second % 10 else 500_000)
        p1 = timeline.peak_mbps(1.0)
        p10 = timeline.peak_mbps(10.0)
        p60 = timeline.peak_mbps(60.0)
        assert p1 >= p10 >= p60 > 0

    def test_peak_window_validation(self):
        timeline = ByteTimeline(0.0, 10.0, 1.0)
        with pytest.raises(ValueError):
            timeline.peak_mbps(0.5)

    def test_utilization_summary(self):
        timeline = ByteTimeline(0.0, 4.0, 1.0)
        timeline.add_many([(0.5, 1000), (1.5, 2000), (2.5, 3000), (3.5, 4000)])
        summary = timeline.utilization_summary()
        assert summary.n == 4
        assert summary.maximum > summary.minimum

    def test_utilization_cdf(self):
        timeline = ByteTimeline(0.0, 3.0, 1.0)
        timeline.add(0.1, 1)
        cdf = timeline.utilization_cdf()
        assert len(cdf) == timeline.num_bins


class TestStreamingTimeline:
    def test_freeze_matches_batch_timeline(self):
        from repro.util.timeline import StreamingTimeline

        points = [(0.5, 100), (0.9, 50), (5.5, 200), (9.9, 75)]
        batch = ByteTimeline(0.0, 10.0, 1.0)
        batch.add_many(points)
        streaming = StreamingTimeline(1.0)
        for ts, nbytes in points:
            streaming.add(ts, nbytes)
        assert streaming.freeze(0.0, 10.0).bins() == batch.bins()

    def test_overflow_folds_into_last_bin(self):
        from repro.util.timeline import StreamingTimeline

        streaming = StreamingTimeline(1.0)
        streaming.add(0.5, 10)
        streaming.add(99.5, 40)  # past the frozen span
        frozen = streaming.freeze(0.0, 5.0)
        assert frozen.bins()[0] == 10
        assert frozen.bins()[-1] == 40

    def test_snapshot_restore_round_trip(self):
        from repro.util.timeline import StreamingTimeline

        streaming = StreamingTimeline(1.0)
        streaming.add(1.5, 100)
        restored = StreamingTimeline.restore(streaming.snapshot())
        streaming.add(3.5, 7)
        restored.add(3.5, 7)
        assert restored.freeze(0.0, 5.0).bins() == streaming.freeze(0.0, 5.0).bins()
