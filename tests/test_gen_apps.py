"""Tests for the application workload generators.

Each generator is exercised against a realistic window context and its
session output checked for the structural properties the paper reports.
"""

from __future__ import annotations

import random

import pytest

from repro.gen.apps.backup_gen import BackupGenerator
from repro.gen.apps.base import WindowContext, poisson
from repro.gen.apps.bulk_gen import BulkGenerator
from repro.gen.apps.dns_gen import DnsGenerator
from repro.gen.apps.email_gen import EmailGenerator, IMAP_PORT, IMAPS_PORT, SMTP_PORT
from repro.gen.apps.http_gen import HTTP_PORT, HTTPS_PORT, HttpGenerator
from repro.gen.apps.interactive_gen import InteractiveGenerator
from repro.gen.apps.link_gen import LinkGenerator
from repro.gen.apps.misc_gen import MiscGenerator
from repro.gen.apps.ncp_gen import NcpGenerator
from repro.gen.apps.netbios_gen import NetbiosNsGenerator
from repro.gen.apps.netmgnt_gen import NetMgntGenerator
from repro.gen.apps.nfs_gen import NfsGenerator
from repro.gen.apps.scanner_gen import ScannerGenerator
from repro.gen.apps.streaming_gen import StreamingGenerator
from repro.gen.apps.windows_gen import WindowsGenerator
from repro.gen.datasets import DATASETS
from repro.gen.session import IcmpExchange, RawPackets, TcpSession, UdpExchange
from repro.gen.topology import Role


def _ctx(enterprise, dataset="D0", subnet_index=0, duration=3600.0, scale=0.02, seed=5):
    config = DATASETS[dataset]
    subnets = enterprise.subnets_of_router(config.router)
    subnet = subnets[subnet_index]
    return WindowContext(
        enterprise=enterprise,
        subnet=subnet,
        t0=1000.0,
        t1=1000.0 + duration,
        rng=random.Random(seed),
        config=config,
        scale=scale,
    )


class TestPoisson:
    def test_zero_mean(self):
        assert poisson(random.Random(1), 0.0) == 0

    def test_small_mean_distribution(self):
        rng = random.Random(2)
        samples = [poisson(rng, 3.0) for _ in range(3000)]
        assert 2.8 < sum(samples) / len(samples) < 3.2

    def test_large_mean_normal_approx(self):
        rng = random.Random(2)
        samples = [poisson(rng, 400.0) for _ in range(300)]
        assert 380 < sum(samples) / len(samples) < 420


class TestWindowContext:
    def test_count_scales(self, enterprise):
        ctx = _ctx(enterprise, scale=0.5)
        counts = [ctx.count(1000.0) for _ in range(20)]
        assert 300 < sum(counts) / len(counts) < 700

    def test_start_time_within_window(self, enterprise):
        ctx = _ctx(enterprise)
        for _ in range(50):
            assert ctx.t0 <= ctx.start_time() <= ctx.t1

    def test_rtt_scales(self, enterprise):
        ctx = _ctx(enterprise)
        ent = sorted(ctx.ent_rtt() for _ in range(500))
        wan = sorted(ctx.wan_rtt() for _ in range(500))
        assert ent[250] < 0.01
        assert wan[250] > ent[250] * 5

    def test_internal_peer_crosses_router(self, enterprise):
        ctx = _ctx(enterprise)
        for _ in range(30):
            assert ctx.internal_peer().subnet_index != ctx.subnet.index


class TestDnsGenerator:
    def test_exchanges_on_port_53(self, enterprise):
        sessions = DnsGenerator().generate(_ctx(enterprise))
        assert sessions
        assert all(isinstance(s, UdpExchange) and s.dport == 53 for s in sessions)

    def test_query_and_response_events(self, enterprise):
        sessions = DnsGenerator().generate(_ctx(enterprise))
        assert all(len(s.events) == 2 for s in sessions)

    def test_wan_dns_at_dns_server_subnet(self, enterprise):
        server = enterprise.servers(Role.DNS_SERVER)[0]
        subnets = enterprise.subnets_of_router(1)
        position = [i for i, s in enumerate(subnets) if s.index == server.subnet_index][0]
        ctx = _ctx(enterprise, dataset="D3", subnet_index=position)
        sessions = DnsGenerator().generate(ctx)
        wan = [s for s in sessions if not enterprise.is_internal(s.server_ip)
               or not enterprise.is_internal(s.client_ip)]
        assert wan  # the resolver/authoritative vantage sees WAN DNS


class TestNetbiosGenerator:
    def test_port_137(self, enterprise):
        sessions = NetbiosNsGenerator().generate(_ctx(enterprise))
        assert sessions
        assert all(s.dport == 137 and s.sport == 137 for s in sessions)


class TestHttpGenerator:
    def test_ports(self, enterprise):
        sessions = HttpGenerator().generate(_ctx(enterprise))
        assert sessions
        assert all(s.dport in (HTTP_PORT, HTTPS_PORT) for s in sessions)

    def test_wan_browsing_dominates_internal(self, enterprise):
        """User browsing (automated clients aside) is mostly wide-area."""
        auto_ips = {
            host.ip
            for role in (Role.SCANNER, Role.GOOGLE_BOT)
            for host in enterprise.servers(role)
        }
        wan = ent = 0
        for seed in range(8):  # browsing is bursty; aggregate windows
            sessions = HttpGenerator().generate(_ctx(enterprise, scale=0.05, seed=seed))
            browsing = [
                s for s in sessions
                if s.dport == HTTP_PORT and s.client_ip not in auto_ips
            ]
            wan += sum(1 for s in browsing if not enterprise.is_internal(s.server_ip))
            ent += sum(1 for s in browsing if enterprise.is_internal(s.server_ip))
        assert wan > ent


class TestEmailGenerator:
    def test_imap_tls_policy_dial(self, enterprise):
        d0_sessions = EmailGenerator().generate(_ctx(enterprise, "D0", scale=0.2))
        d1_sessions = EmailGenerator().generate(_ctx(enterprise, "D1", scale=0.2))
        d0_clear = sum(1 for s in d0_sessions if s.dport == IMAP_PORT)
        d1_clear = sum(1 for s in d1_sessions if s.dport == IMAP_PORT)
        d1_tls = sum(1 for s in d1_sessions if s.dport == IMAPS_PORT)
        assert d0_clear > 0
        assert d1_tls > d1_clear  # post-policy, IMAP/S dominates

    def test_mail_subnet_carries_wan_smtp(self, enterprise):
        server = enterprise.servers(Role.SMTP_SERVER)[0]
        subnets = enterprise.subnets_of_router(0)
        position = [i for i, s in enumerate(subnets) if s.index == server.subnet_index][0]
        ctx = _ctx(enterprise, "D0", subnet_index=position, scale=0.05)
        sessions = EmailGenerator().generate(ctx)
        wan_smtp = [
            s for s in sessions
            if s.dport == SMTP_PORT and (
                not enterprise.is_internal(s.client_ip)
                or not enterprise.is_internal(s.server_ip)
            )
        ]
        assert wan_smtp


class TestWindowsGenerator:
    def test_ports(self, enterprise):
        sessions = WindowsGenerator().generate(_ctx(enterprise, scale=0.1))
        assert sessions
        ports = {s.dport for s in sessions}
        assert 139 in ports or 445 in ports

    def test_sessions_cross_router(self, enterprise):
        ctx = _ctx(enterprise, scale=0.1)
        for session in WindowsGenerator().generate(ctx):
            client = enterprise.host_by_ip(session.client_ip)
            server = enterprise.host_by_ip(session.server_ip)
            if client is not None and server is not None:
                assert client.subnet_index != server.subnet_index


class TestNfsNcpGenerators:
    def test_nfs_mix_follows_dials(self, enterprise):
        ctx = _ctx(enterprise, "D0", scale=0.3)
        sessions = NfsGenerator().generate(ctx)
        assert sessions
        # D0's dial is read-heavy: most event payload bytes flow S2C (reads).
        total_events = sum(len(s.events) for s in sessions)
        assert total_events > 10

    def test_ncp_keepalive_only_connections_present(self, enterprise):
        sessions = NcpGenerator().generate(_ctx(enterprise, "D0", scale=0.3))
        keepalive_only = [
            s for s in sessions
            if isinstance(s, TcpSession) and not s.events and s.keepalive_count > 0
        ]
        assert keepalive_only
        assert all(s.close == "none" for s in keepalive_only)

    def test_ncp_port(self, enterprise):
        sessions = NcpGenerator().generate(_ctx(enterprise, "D0", scale=0.3))
        assert all(s.dport == 524 for s in sessions)


class TestBackupGenerator:
    def test_veritas_one_way(self, enterprise):
        from repro.gen.session import Dir

        sessions = BackupGenerator().generate(_ctx(enterprise, "D0", scale=0.05))
        data_sessions = [s for s in sessions if s.dport == 13724]
        assert data_sessions
        for session in data_sessions:
            directions = {e.direction for e in session.events}
            assert directions == {Dir.C2S}

    def test_dantz_bidirectional_within_connection(self, enterprise):
        from repro.gen.session import Dir

        rng_attempts = 0
        for seed in range(12):
            sessions = BackupGenerator().generate(
                _ctx(enterprise, "D0", scale=0.05, seed=seed)
            )
            for session in sessions:
                if session.dport == 497:
                    directions = {e.direction for e in session.events}
                    if directions == {Dir.C2S, Dir.S2C}:
                        return
                    rng_attempts += 1
        pytest.fail("no bidirectional Dantz connection generated")


class TestScannerGenerator:
    def test_sweeps_ascending_order(self, enterprise):
        sessions = []
        for seed in range(8):
            sessions = ScannerGenerator().generate(_ctx(enterprise, "D1", seed=seed))
            if sessions:
                break
        assert sessions
        tcp = [s for s in sessions if isinstance(s, TcpSession)]
        icmp = [s for s in sessions if isinstance(s, IcmpExchange)]
        if tcp:
            targets = [s.server_ip for s in tcp]
            assert targets == sorted(targets) or len(set(s.client_ip for s in tcp)) > 1
        if icmp:
            targets = [s.dst_ip for s in icmp[:60]]
            assert targets == sorted(targets)

    def test_sweep_touches_many_hosts(self, enterprise):
        for seed in range(8):
            sessions = ScannerGenerator().generate(_ctx(enterprise, "D1", seed=seed))
            tcp = [s for s in sessions if isinstance(s, TcpSession)]
            if tcp:
                assert len({s.server_ip for s in tcp}) > 50
                return


class TestOtherGenerators:
    def test_netmgnt_produces_sessions(self, enterprise):
        sessions = NetMgntGenerator().generate(_ctx(enterprise))
        assert sessions

    def test_misc_produces_sessions(self, enterprise):
        sessions = MiscGenerator().generate(_ctx(enterprise))
        assert sessions

    def test_link_produces_non_ip(self, enterprise):
        (raw,) = LinkGenerator().generate(_ctx(enterprise))
        assert isinstance(raw, RawPackets)
        assert raw.packets

    def test_streaming_multicast_uses_single_flow_per_channel(self, enterprise):
        for seed in range(10):
            sessions = StreamingGenerator().generate(_ctx(enterprise, seed=seed))
            raws = [s for s in sessions if isinstance(s, RawPackets)]
            if raws:
                from repro.net.packet import decode_packet

                ports = {decode_packet(p).src_port for p in raws[0].packets}
                assert len(ports) == 1
                return

    def test_bulk_transfers(self, enterprise):
        sessions = BulkGenerator().generate(_ctx(enterprise, scale=0.05))
        assert any(s.dport in (20, 21, 1217) for s in sessions)

    def test_interactive_small_packets(self, enterprise):
        sessions = InteractiveGenerator().generate(_ctx(enterprise, scale=0.3))
        ssh = [s for s in sessions if s.dport == 22]
        assert ssh
        small = [e for s in ssh for e in s.events if len(e.payload) < 100]
        assert len(small) > 10
