"""Tests for the dataset analysis engine and load analysis (§6)."""

import random

from repro.analysis.engine import Analyzer, DatasetAnalyzer
from repro.analysis.load import load_report
from repro.gen.packetize import realize_all
from repro.gen.session import AppEvent, Dir, TcpSession
from repro.util.addr import ip_to_int

_ENT_A = ip_to_int("131.243.1.40")
_ENT_B = ip_to_int("131.243.8.8")
_WAN = ip_to_int("66.35.250.10")


def _bulk_session(client, server, nbytes, start=100.0, rtt=0.0005, loss=0.0, dport=13724):
    return TcpSession(
        client_ip=client, server_ip=server, client_mac=1, server_mac=2,
        sport=53000, dport=dport, start=start, rtt=rtt, loss_rate=loss,
        events=[AppEvent(0.0, Dir.C2S, b"\x00" * nbytes)],
    )


def _analyze(sessions, name="T", full_payload=True, analyzers=()):
    engine = DatasetAnalyzer(name, full_payload=full_payload, analyzers=analyzers)
    packets = list(realize_all(sessions, random.Random(8)))
    engine.process_packets(packets, label="trace0")
    return engine


class TestDatasetAnalyzer:
    def test_trace_stats_packets(self):
        engine = _analyze([_bulk_session(_ENT_A, _ENT_B, 50_000)])
        analysis = engine.finish()
        assert analysis.total_packets == analysis.traces[0].packets > 30

    def test_l2_counts_all_ip(self):
        engine = _analyze([_bulk_session(_ENT_A, _ENT_B, 10_000)])
        analysis = engine.finish()
        totals = analysis.l2_totals()
        assert totals["ip"] == analysis.total_packets

    def test_utilization_timeline_built(self):
        engine = _analyze([_bulk_session(_ENT_A, _ENT_B, 500_000)])
        analysis = engine.finish()
        assert analysis.traces[0].utilization is not None
        assert analysis.traces[0].utilization_summary().maximum > 0

    def test_retransmit_attribution_ent_vs_wan(self):
        sessions = [
            _bulk_session(_ENT_A, _ENT_B, 2_000_000, loss=0.05),
            _bulk_session(_ENT_A, _WAN, 2_000_000, rtt=0.03, loss=0.0),
        ]
        engine = _analyze(sessions)
        stats = engine.finish().traces[0]
        assert stats.retransmits["ent"] > 0
        assert stats.retransmits["wan"] == 0

    def test_retransmit_rate_requires_1000_packets(self):
        engine = _analyze([_bulk_session(_ENT_A, _ENT_B, 5_000)])
        stats = engine.finish().traces[0]
        assert stats.retransmit_rate("ent") is None

    def test_scanner_detection_in_finish(self):
        sweep = [
            _bulk_session(_ENT_A, _ENT_B + offset, 10, start=100.0 + offset, dport=80)
            for offset in range(60)
        ]
        engine = _analyze(sweep)
        analysis = engine.finish()
        assert _ENT_A in analysis.scanner_sources
        assert analysis.removed_conns == 60
        assert analysis.filtered_conns() == []

    def test_known_scanners_passed_through(self):
        engine = _analyze([_bulk_session(_ENT_A, _ENT_B, 1000)])
        analysis = engine.finish(known_scanners=[_ENT_A])
        assert _ENT_A in analysis.scanner_sources
        assert analysis.filtered_conns() == []

    def test_analyzers_receive_scanner_set(self):
        class Probe(Analyzer):
            name = "probe"

            def result(self):
                return set(self.scanners)

        probe = Probe()
        engine = _analyze([_bulk_session(_ENT_A, _ENT_B, 1000)], analyzers=[probe])
        analysis = engine.finish(known_scanners=[12345])
        assert analysis.analyzer_results["probe"] == {12345}

    def test_multiple_traces_indexed(self):
        engine = DatasetAnalyzer("T")
        packets = list(realize_all([_bulk_session(_ENT_A, _ENT_B, 1000)], random.Random(1)))
        engine.process_packets(packets, label="t0")
        engine.process_packets(packets, label="t1")
        analysis = engine.finish()
        assert len(analysis.traces) == 2
        assert {conn.trace_index for conn in analysis.conns} == {0, 1}


class TestLoadReport:
    def _stats(self, sessions):
        engine = _analyze(sessions)
        return engine.finish().traces

    def test_peak_cdfs_ordering(self):
        # Two bursts 15 s apart so the trace spans a 10-second window.
        session = _bulk_session(_ENT_A, _ENT_B, 3_000_000)
        session.events.append(AppEvent(15.0, Dir.C2S, b"\x00" * 1_000_000))
        report = load_report(self._stats([session]))
        peak_1s = report.peak_cdfs[1.0].max
        peak_10s = report.peak_cdfs[10.0].max
        assert peak_1s >= peak_10s > 0

    def test_retransmit_rates_collected(self):
        traces = self._stats([_bulk_session(_ENT_A, _ENT_B, 3_000_000, loss=0.03)])
        report = load_report(traces)
        assert report.retransmit_rates["ent"]
        assert report.max_retransmit_rate("ent") > 0.001

    def test_fraction_above(self):
        traces = self._stats([_bulk_session(_ENT_A, _ENT_B, 3_000_000, loss=0.08)])
        report = load_report(traces)
        assert report.fraction_above("ent", 0.005) == 1.0
        assert report.fraction_above("wan", 0.005) == 0.0

    def test_empty_traces(self):
        report = load_report([])
        assert report.retransmit_rates == {"ent": [], "wan": []}


class TestMinorTransports:
    def test_minor_ip_protocols_counted(self):
        from repro.net.ethernet import EthernetFrame
        from repro.net.ipv4 import Ipv4Packet, PROTO_IGMP, PROTO_GRE
        from repro.net.packet import CapturedPacket

        engine = DatasetAnalyzer("T")
        packets = []
        for proto in (PROTO_IGMP, PROTO_IGMP, PROTO_GRE):
            ip = Ipv4Packet(src_ip=_ENT_A, dst_ip=_ENT_B, proto=proto,
                            payload=b"\x00" * 8)
            frame = EthernetFrame(dst_mac=1, src_mac=2, ethertype=0x0800,
                                  payload=ip.encode())
            data = frame.encode()
            packets.append(CapturedPacket(ts=1.0, data=data, wire_len=len(data)))
        engine.process_packets(packets, label="t")
        analysis = engine.finish()
        totals = analysis.other_transport_totals()
        assert totals[PROTO_IGMP] == 2
        assert totals[PROTO_GRE] == 1
        assert analysis.conns == []  # no flows for minor transports
