"""The store's query engine: filters, scans, and aggregations."""

from __future__ import annotations

import pytest

from repro.gen.topology import ENTERPRISE_NET
from repro.store import ConnFilter, ConnStore, StoreQuery
from repro.store.query import GROUP_DIMENSIONS, SAMPLE_FIELDS, aggregate_records


@pytest.fixture(scope="module")
def query(store_study) -> StoreQuery:
    _, root = store_study
    return StoreQuery(ConnStore(root))


@pytest.fixture(scope="module")
def baseline(store_study):
    """The cold analysis the cached records must agree with."""
    results, _ = store_study
    return results.analyses["D0"]


def test_datasets_lists_cached_names(query):
    assert query.datasets() == ["D0"]


def test_unfiltered_scan_matches_the_scan_filtered_baseline(query, baseline):
    # The default scan excludes scanner sources — the §3 baseline every
    # table is computed over.
    assert query.count(ConnFilter()) == len(list(baseline.filtered_conns()))


def test_include_scanners_restores_the_raw_records(query, baseline):
    assert query.count(ConnFilter(include_scanners=True)) == len(baseline.conns)


def test_proto_counts_partition_the_scan(query):
    total = query.count(ConnFilter())
    by_proto = {
        proto: query.count(ConnFilter(proto=proto))
        for proto in ("tcp", "udp", "icmp")
    }
    assert sum(by_proto.values()) == total
    assert by_proto["udp"] > 0


def test_locality_filter(query, baseline):
    internal = baseline.internal_net
    for _, conn in query.scan(ConnFilter(locality="ent-ent")):
        assert conn.orig_ip in internal and conn.resp_ip in internal


def test_subnet_filter_matches_either_endpoint(query, baseline):
    some = next(iter(baseline.filtered_conns()))
    cidr = f"{(some.orig_ip >> 24) & 0xFF}.{(some.orig_ip >> 16) & 0xFF}.0.0/16"
    records = list(query.scan(ConnFilter(subnet=cidr)))
    assert records
    assert query.count(ConnFilter(subnet="203.0.113.0/24")) == 0


def test_time_window_filter(query):
    all_first = [conn.first_ts for _, conn in query.scan(ConnFilter())]
    cut = sorted(all_first)[len(all_first) // 2]
    early = query.count(ConnFilter(until=cut))
    late = query.count(ConnFilter(since=cut))
    # Records exactly at the cut satisfy both clauses.
    assert early + late >= len(all_first)
    assert early > 0 and late > 0


def test_service_filter_accepts_label_or_category(query):
    by_label = query.count(ConnFilter(service="dns"))
    by_category = query.count(ConnFilter(service="name"))
    assert by_label > 0
    assert by_category >= by_label


def test_min_bytes_filter(query):
    big = query.count(ConnFilter(min_bytes=10_000))
    assert 0 < big < query.count(ConnFilter())


@pytest.mark.parametrize("by", GROUP_DIMENSIONS)
def test_aggregate_buckets_sum_to_the_scan(query, by):
    rows = query.aggregate(ConnFilter(), by=by)
    assert sum(row.conns for row in rows) == query.count(ConnFilter())
    # Sorted by descending bytes.
    assert [row.bytes for row in rows] == sorted(
        (row.bytes for row in rows), reverse=True
    )


def test_aggregate_rejects_unknown_dimension(query):
    with pytest.raises(ValueError):
        query.aggregate(ConnFilter(), by="flavor")


def test_aggregate_records_helper_matches_store_aggregate(query, baseline):
    records = [("D0", conn) for conn in baseline.filtered_conns()]
    helper = aggregate_records(
        records, "proto", ENTERPRISE_NET, baseline.windows_endpoints
    )
    assert helper == query.aggregate(ConnFilter(), by="proto")


@pytest.mark.parametrize("field", SAMPLE_FIELDS)
def test_samples_extract_every_field(query, field):
    samples = query.samples(field, ConnFilter(proto="tcp"))
    assert samples
    assert all(value >= 0 for value in samples)


def test_samples_reject_unknown_field(query):
    with pytest.raises(ValueError):
        query.samples("charm", ConnFilter())


def test_cdf_is_built_over_the_samples(query):
    samples = query.samples("total_bytes", ConnFilter())
    cdf = query.cdf("total_bytes", ConnFilter())
    assert cdf.n == len(samples)


def test_table_renders_with_total_row(query):
    table = query.table(ConnFilter(), by="proto")
    rendered = table.render()
    assert "proto" in rendered
    assert rendered.rstrip().splitlines()[-1].startswith("total")
