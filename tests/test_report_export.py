"""Tests for the CSV/text export layer."""

import csv

from repro.report.export import export_figure_csv, export_study, export_table_csv
from repro.report.model import CdfFigure, SeriesFigure, Table
from repro.util.stats import Cdf


class TestTableExport:
    def test_csv_round_trip(self, tmp_path):
        table = Table("T", "demo", ["row", "D0", "D1"])
        table.add_row("IP", "98%", "97%")
        path = export_table_csv(table, tmp_path / "t.csv")
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["row", "D0", "D1"]
        assert rows[1] == ["IP", "98%", "97%"]


class TestFigureExport:
    def test_cdf_long_format(self, tmp_path):
        figure = CdfFigure("F", "demo", "bytes")
        figure.add("ent:D0", Cdf([1, 2, 3]))
        path = export_figure_csv(figure, tmp_path / "f.csv")
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["curve", "x", "F"]
        assert rows[-1] == ["ent:D0", "3", "1.0"]

    def test_series_long_format(self, tmp_path):
        figure = SeriesFigure("F10", "demo", "rate")
        figure.add("ENT", [0.1, 0.2])
        path = export_figure_csv(figure, tmp_path / "s.csv")
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[1] == ["ENT", "0", "0.1"]
        assert rows[2] == ["ENT", "1", "0.2"]


class TestStudyExport:
    def test_every_artifact_written(self, small_study, tmp_path):
        written = export_study(small_study, tmp_path)
        names = {path.name for path in written}
        # 14 tables + 10 figures (some multi-part), each as .csv and .txt.
        assert "table02.csv" in names and "table02.txt" in names
        assert "table15.csv" in names
        assert any(name.startswith("figure01") for name in names)
        assert any(name.startswith("figure10") for name in names)
        assert all(path.exists() and path.stat().st_size > 0 for path in written)
