"""The robustness acceptance test: a fully corrupted study still reports.

Every trace of a generated dataset is hit with a different corruption
class (cycling through all of :data:`repro.gen.faults.FAULTS`), and the
study must still produce every table and figure of the paper under the
``tolerant`` policy — with the damage accounted for in the data-quality
section.  The same input under ``strict`` must fail fast with a typed
error naming the file.
"""

from __future__ import annotations

import pytest

from repro.analysis.errors import ErrorKind, IngestionError
from repro.core.study import run_study
from repro.gen.faults import FAULTS, corrupt_dataset

ALL_TABLES = range(1, 16)
ALL_FIGURES = range(1, 11)


@pytest.fixture(scope="module")
def corrupted_study():
    """A D0 study where *every* trace was corrupted, one fault class each.

    Twelve windows, twelve fault classes: each class appears exactly once.
    """
    applied = {}

    def corrupt(name, dataset_traces):
        applied.update(corrupt_dataset(dataset_traces, seed=9))

    results = run_study(
        seed=3,
        scale=0.003,
        datasets=("D0",),
        max_windows=12,
        error_policy="tolerant",
        mutate_traces=corrupt,
    )
    return results, applied


class TestTolerantStudySurvives:
    def test_every_fault_class_was_applied(self, corrupted_study):
        _, applied = corrupted_study
        assert sorted(set(applied.values())) == sorted(FAULTS)

    def test_all_tables_build(self, corrupted_study):
        results, _ = corrupted_study
        for number in ALL_TABLES:
            rendered = results.render_table(number)
            assert rendered.strip(), f"Table {number} rendered empty"

    def test_all_figures_build(self, corrupted_study):
        results, _ = corrupted_study
        for number in ALL_FIGURES:
            rendered = results.render_figure(number)
            assert rendered.strip(), f"Figure {number} rendered empty"

    def test_errors_accounted(self, corrupted_study):
        results, _ = corrupted_study
        assert results.total_errors > 0
        analysis = results.analyses["D0"]
        totals = analysis.error_totals()
        # The structurally fatal classes must each have left a mark.
        assert totals.get(ErrorKind.TRUNCATED_BODY.value, 0) > 0
        assert totals.get(ErrorKind.RUNT_FRAME.value, 0) > 0
        # bad_magic / truncated_global_header quarantine whole traces.
        assert len(analysis.quarantined_traces()) >= 2
        # Most traces survive: only header-level damage is unsalvageable.
        assert len(analysis.traces) == 12
        assert len(analysis.quarantined_traces()) <= 4
        assert analysis.total_packets > 0

    def test_data_quality_section_reports_damage(self, corrupted_study):
        results, _ = corrupted_study
        text = results.render_data_quality()
        assert "Data quality" in text
        assert "tolerant" in text
        assert "quarantined" in text
        table = results.data_quality()
        rows = {row[0]: row[1] for row in table.rows}
        assert rows["error policy"] == "tolerant"
        assert rows["total errors"] > 0
        assert rows["traces quarantined"] >= 2

    def test_quarantined_traces_withhold_connections(self, corrupted_study):
        results, _ = corrupted_study
        analysis = results.analyses["D0"]
        quarantined_paths = {t.path for t in analysis.quarantined_traces()}
        live = [t for t in analysis.traces if t.path not in quarantined_paths]
        assert live  # the study still has usable windows
        assert len(analysis.conns) > 0


class TestStrictStudyFailsFast:
    def test_strict_raises_typed_error_naming_file(self):
        corrupted = {}

        def corrupt(name, dataset_traces):
            # One structurally fatal fault on the first trace is enough.
            corrupt_dataset(
                dataset_traces, seed=9, faults=["truncated_record_body"]
            )
            corrupted["path"] = str(dataset_traces.traces[0].path)

        with pytest.raises(IngestionError) as excinfo:
            run_study(
                seed=3,
                scale=0.003,
                datasets=("D0",),
                max_windows=2,
                error_policy="strict",
                mutate_traces=corrupt,
            )
        err = excinfo.value
        assert isinstance(err.kind, ErrorKind)
        assert corrupted["path"] in str(err)
        assert err.offset is not None and err.offset >= 24
