"""Tests for repro.proto.cifs (SMB messages and Table 10 categories)."""

import pytest

from repro.proto.cifs import (
    CMD_CLOSE,
    CMD_ECHO,
    CMD_NEGOTIATE,
    CMD_NT_CREATE_ANDX,
    CMD_READ_ANDX,
    CMD_SESSION_SETUP_ANDX,
    CMD_TRANS,
    CMD_TREE_CONNECT_ANDX,
    CMD_WRITE_ANDX,
    LANMAN_PIPE,
    SMB_HEADER_LEN,
    STATUS_ACCESS_DENIED,
    SmbMessage,
    command_category,
    parse_smb_stream,
)


class TestSmbMessage:
    def test_basic_round_trip(self):
        msg = SmbMessage(command=CMD_NEGOTIATE, mid=42)
        back = SmbMessage.decode(msg.encode())
        assert back.command == CMD_NEGOTIATE
        assert back.mid == 42
        assert not back.is_response

    def test_response_flag(self):
        msg = SmbMessage(command=CMD_SESSION_SETUP_ANDX, is_response=True)
        assert SmbMessage.decode(msg.encode()).is_response

    def test_status_survives(self):
        msg = SmbMessage(command=CMD_TREE_CONNECT_ANDX, is_response=True,
                         status=STATUS_ACCESS_DENIED)
        assert SmbMessage.decode(msg.encode()).status == STATUS_ACCESS_DENIED

    def test_trans_carries_pipe_name_and_data(self):
        msg = SmbMessage(command=CMD_TRANS, name="\\PIPE\\SPOOLSS", fid=7, data=b"\x05" * 40)
        back = SmbMessage.decode(msg.encode())
        assert back.name == "\\PIPE\\SPOOLSS"
        assert back.fid == 7
        assert back.data == b"\x05" * 40

    def test_nt_create_carries_filename(self):
        msg = SmbMessage(command=CMD_NT_CREATE_ANDX, name="\\docs\\report.doc")
        assert SmbMessage.decode(msg.encode()).name == "\\docs\\report.doc"

    def test_read_write_carry_data(self):
        for command in (CMD_READ_ANDX, CMD_WRITE_ANDX):
            msg = SmbMessage(command=command, fid=3, data=b"d" * 512)
            back = SmbMessage.decode(msg.encode())
            assert back.data == b"d" * 512
            assert back.fid == 3

    def test_rejects_bad_magic(self):
        with pytest.raises(ValueError):
            SmbMessage.decode(b"\x00" * 40)

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            SmbMessage.decode(b"\xffSMB")

    def test_header_length(self):
        assert SMB_HEADER_LEN == 32


class TestCategories:
    def test_rpc_pipe_detection(self):
        msg = SmbMessage(command=CMD_TRANS, name="\\PIPE\\NETLOGON")
        assert msg.is_rpc_pipe
        assert not msg.is_lanman
        assert command_category(msg) == "RPC Pipes"

    def test_lanman_detection(self):
        msg = SmbMessage(command=CMD_TRANS, name=LANMAN_PIPE)
        assert msg.is_lanman
        assert not msg.is_rpc_pipe
        assert command_category(msg) == "LANMAN"

    def test_lanman_case_insensitive(self):
        msg = SmbMessage(command=CMD_TRANS, name="\\pipe\\lanman")
        assert msg.is_lanman

    def test_file_sharing(self):
        assert command_category(SmbMessage(command=CMD_READ_ANDX)) == "Windows File Sharing"
        assert command_category(SmbMessage(command=CMD_WRITE_ANDX)) == "Windows File Sharing"

    def test_basic_commands(self):
        for command in (CMD_NEGOTIATE, CMD_SESSION_SETUP_ANDX, CMD_TREE_CONNECT_ANDX,
                        CMD_NT_CREATE_ANDX, CMD_CLOSE, CMD_ECHO):
            assert command_category(SmbMessage(command=command)) == "SMB Basic"

    def test_unknown_command_is_other(self):
        assert command_category(SmbMessage(command=0x99)) == "Other"


class TestStreamParsing:
    def test_parses_sequence(self):
        payloads = [
            SmbMessage(command=CMD_NEGOTIATE).encode(),
            SmbMessage(command=CMD_NEGOTIATE, is_response=True).encode(),
            SmbMessage(command=CMD_TRANS, name="\\PIPE\\LSARPC", data=b"x").encode(),
        ]
        messages = parse_smb_stream(payloads)
        assert len(messages) == 3

    def test_skips_garbage_payloads(self):
        payloads = [b"\x00garbage", SmbMessage(command=CMD_CLOSE).encode()]
        messages = parse_smb_stream(payloads)
        assert len(messages) == 1
        assert messages[0].command == CMD_CLOSE
