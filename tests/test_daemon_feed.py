"""The tenant feed worker: artifact publication, resume, drain, pacing.

These tests run :func:`repro.daemon.feed.run_feed` in-process (no fork)
— the child-process plumbing is exercised by the supervisor tests; here
the contract is the artifact tree itself: every closed window becomes a
durable JSON file, completed traces leave markers that make restarts
skip them, and a drain stops mid-trace at a checkpoint the next
incarnation resumes into, byte-identically.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.daemon import PacedSource, run_feed, tenant_dir, tenant_digest
from repro.gen.capture import generate_dataset
from repro.gen.topology import Enterprise


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    out = tmp_path_factory.mktemp("daemon-feed-traces")
    return generate_dataset(
        "D0", Enterprise(seed=7), out, seed=7, scale=0.004, max_windows=3
    )


def payload_for(dataset, store_root, *, traces=None, **overrides):
    body = {
        "tenant": "acme",
        "traces": [str(t.path) for t in (traces or dataset.traces)],
        "store_root": str(store_root),
        "window": 60.0,
        "flow_budget": 4096,
        "checkpoint_every": 200,
        "error_policy": "strict",
        "packet_rate": 0.0,
    }
    body.update(overrides)
    return body


class Collector:
    """A ``send`` callback that records every feed message."""

    def __init__(self):
        self.messages = []

    def __call__(self, kind, body):
        self.messages.append((kind, body))

    def kinds(self):
        return [kind for kind, _ in self.messages]

    def of(self, kind):
        return [body for k, body in self.messages if k == kind]


class TestArtifacts:
    def test_run_publishes_windows_markers_and_rollup(self, dataset, tmp_path):
        sent = Collector()
        assert run_feed(payload_for(dataset, tmp_path), threading.Event(),
                        sent) == "done"
        base = tenant_dir(tmp_path, "acme")
        windows = sorted((base / "windows").glob("*.json"))
        markers = sorted((base / "traces").glob("t*.json"))
        assert len(markers) == len(dataset.traces)
        assert len(windows) == len(sent.of("window")) > 0
        # Window artifacts carry the tenant and parse cleanly.
        first = json.loads(windows[0].read_text())
        assert first["tenant"] == "acme" and "packets" in first
        # The rollup aggregates what the markers say.
        result = json.loads((base / "result.json").read_text())
        marker_packets = sum(
            json.loads(m.read_text())["packets"] for m in markers
        )
        assert result["packets"] == marker_packets > 0
        assert result["traces"] == len(markers)
        assert sent.of("done")[0] == result
        # One completion message per trace, in order.
        assert [b["trace"] for b in sent.of("trace")] == list(
            range(len(dataset.traces))
        )

    def test_markers_make_restarts_skip_finished_traces(self, dataset, tmp_path):
        run_feed(payload_for(dataset, tmp_path), threading.Event(), Collector())
        base = tenant_dir(tmp_path, "acme")
        before = {
            p.name: p.stat().st_mtime_ns
            for p in (base / "windows").glob("*.json")
        }
        sent = Collector()
        assert run_feed(payload_for(dataset, tmp_path), threading.Event(),
                        sent) == "done"
        # Nothing re-ingested: no trace messages, no window republishes.
        assert sent.of("trace") == []
        after = {
            p.name: p.stat().st_mtime_ns
            for p in (base / "windows").glob("*.json")
        }
        assert after == before


class TestDrain:
    def test_drain_before_first_trace_reports_zero_packets(
        self, dataset, tmp_path
    ):
        drain = threading.Event()
        drain.set()
        sent = Collector()
        assert run_feed(payload_for(dataset, tmp_path), drain, sent) == "drained"
        assert sent.of("drained") == [
            {"tenant": "acme", "trace": 0, "packets": 0}
        ]

    def test_mid_trace_drain_resumes_to_identical_digest(
        self, dataset, tmp_path
    ):
        reference = tmp_path / "reference"
        run_feed(payload_for(dataset, reference), threading.Event(),
                 Collector())
        expected = tenant_digest(reference, "acme")

        resumed = tmp_path / "resumed"
        drain = threading.Event()
        sent = Collector()

        def drain_on_first_window(kind, body):
            sent(kind, body)
            if kind == "window":
                drain.set()  # the engine checks this per packet

        assert run_feed(payload_for(dataset, resumed),
                        drain, drain_on_first_window) == "drained"
        drained = sent.of("drained")
        assert drained and drained[0]["packets"] > 0
        assert tenant_digest(resumed, "acme") != expected  # partial so far
        # Second incarnation resumes from the flushed checkpoint.
        assert run_feed(payload_for(dataset, resumed), threading.Event(),
                        Collector()) == "done"
        assert tenant_digest(resumed, "acme") == expected


class TestPacedSource:
    def test_unpaced_source_adds_no_sleeps(self):
        source = PacedSource(list(range(500)), packet_rate=0.0)
        start = time.monotonic()
        assert sum(1 for _ in source) == 500
        assert time.monotonic() - start < 0.5
        assert source.packets_read == 500

    def test_pacing_throttles_iteration(self):
        # 256 packets at 6400 pkts/s = four 64-packet batches -> >=30ms.
        source = PacedSource(list(range(256)), packet_rate=6400.0)
        start = time.monotonic()
        assert sum(1 for _ in source) == 256
        assert time.monotonic() - start >= 0.03
