"""Tests for repro.proto.smtp and repro.proto.imap."""

from repro.proto import imap, smtp


class TestSmtpDialogue:
    def _round_trip(self, rcpts, message, accept=True):
        client = smtp.build_client_stream("relay.example", "alice@example", rcpts, message)
        server = smtp.build_server_stream("mail.example", len(rcpts), accept)
        return smtp.parse_dialogue(client, server)

    def test_basic_transaction(self):
        dialogue = self._round_trip(["bob@peer"], b"Subject: hi\r\n\r\nbody\r\n")
        assert dialogue.client_helo == "relay.example"
        assert dialogue.mail_from == "alice@example"
        assert dialogue.rcpt_to == ["bob@peer"]
        assert dialogue.accepted
        assert dialogue.quit_seen

    def test_multiple_recipients(self):
        dialogue = self._round_trip(["a@x", "b@y", "c@z"], b"m\r\n")
        assert len(dialogue.rcpt_to) == 3

    def test_message_size_counts_data_section(self):
        message = b"Subject: s\r\n\r\n" + b"x" * 1000 + b"\r\n"
        dialogue = self._round_trip(["r@x"], message)
        assert abs(dialogue.message_size - len(message)) < 20

    def test_rejected_message(self):
        dialogue = self._round_trip(["r@x"], b"m\r\n", accept=False)
        assert not dialogue.accepted

    def test_empty_streams(self):
        dialogue = smtp.parse_dialogue(b"", b"")
        assert dialogue.mail_from == ""
        assert not dialogue.accepted

    def test_dot_stuffed_terminator_not_confused(self):
        # A lone "." line inside DATA ends the message; content before it counts.
        client = smtp.build_client_stream("h", "a@x", ["b@y"], b"line1\r\nline2\r\n")
        dialogue = smtp.parse_dialogue(client, smtp.build_server_stream("s", 1))
        assert dialogue.quit_seen

    def test_server_stream_contains_go_ahead(self):
        server = smtp.build_server_stream("mail.example", 1)
        assert b"354" in server
        assert server.startswith(b"220 mail.example")


class TestImapSession:
    def test_basic_session(self):
        client = imap.build_client_stream("user", polls=3, fetches=2)
        server = imap.build_server_stream([500, 1500])
        session = imap.parse_session(client, server)
        assert session.poll_count == 3
        assert session.fetched_bytes == 2000
        assert session.logged_in
        assert session.logout_seen

    def test_no_fetches(self):
        client = imap.build_client_stream("user", polls=1, fetches=0)
        server = imap.build_server_stream([])
        session = imap.parse_session(client, server)
        assert session.fetched_bytes == 0

    def test_commands_recorded_in_order(self):
        client = imap.build_client_stream("user", polls=0, fetches=1)
        session = imap.parse_session(client, b"")
        assert session.commands[:2] == ["LOGIN", "SELECT"]
        assert session.commands[-1] == "LOGOUT"

    def test_literal_bytes_not_misparsed_as_lines(self):
        # A fetched message containing CRLFs must not break literal skipping.
        body_size = 300
        server = imap.build_server_stream([body_size])
        session = imap.parse_session(imap.build_client_stream("u", 0, 1), server)
        assert session.fetched_bytes == body_size

    def test_empty_streams(self):
        session = imap.parse_session(b"", b"")
        assert session.commands == []
        assert not session.logged_in
