"""Tests for the tap schedule and dataset generation (repro.gen.capture)."""

from pathlib import Path

import pytest

from repro.gen.capture import generate_dataset, generate_study, schedule_windows
from repro.gen.datasets import DATASET_ORDER, DATASETS
from repro.net.packet import decode_packet
from repro.pcap.reader import PcapReader


class TestSchedule:
    def test_window_counts(self, enterprise):
        assert len(schedule_windows(DATASETS["D0"], enterprise)) == 22
        assert len(schedule_windows(DATASETS["D1"], enterprise)) == 44
        assert len(schedule_windows(DATASETS["D3"], enterprise)) == 18

    def test_two_subnets_at_a_time(self, enterprise):
        windows = schedule_windows(DATASETS["D0"], enterprise)
        by_slot: dict[float, list[int]] = {}
        for window in windows:
            by_slot.setdefault(window.t0, []).append(window.subnet_index)
        assert all(len(subnets) == 2 for subnets in by_slot.values())

    def test_windows_cover_all_router_subnets(self, enterprise):
        windows = schedule_windows(DATASETS["D3"], enterprise)
        covered = {w.subnet_index for w in windows}
        router1 = {s.index for s in enterprise.subnets_of_router(1)}
        assert covered == router1

    def test_durations_match_config(self, enterprise):
        for name in DATASET_ORDER:
            config = DATASETS[name]
            for window in schedule_windows(config, enterprise):
                assert window.duration == config.tap_seconds

    def test_rounds_do_not_overlap(self, enterprise):
        windows = schedule_windows(DATASETS["D1"], enterprise)
        slots = sorted({(w.t0, w.t1) for w in windows})
        for (t0_a, t1_a), (t0_b, _t1_b) in zip(slots, slots[1:]):
            assert t0_b >= t1_a


class TestGenerateDataset:
    def test_writes_trace_files(self, enterprise, tmp_path):
        traces = generate_dataset("D0", enterprise, tmp_path, seed=1, scale=0.002,
                                  max_windows=4)
        assert len(traces.traces) == 4
        for trace in traces.traces:
            assert Path(trace.path).exists()
            assert trace.packet_count > 0
        assert traces.total_packets == sum(t.packet_count for t in traces.traces)

    def test_snaplen_applied(self, enterprise, tmp_path):
        traces = generate_dataset("D1", enterprise, tmp_path, seed=1, scale=0.002,
                                  max_windows=2)
        with PcapReader.open(traces.traces[0].path) as reader:
            assert reader.snaplen == 68
            assert all(p.caplen <= 68 for p in reader)

    def test_timestamps_within_window(self, enterprise, tmp_path):
        traces = generate_dataset("D0", enterprise, tmp_path, seed=1, scale=0.002,
                                  max_windows=2)
        for trace in traces.traces:
            with PcapReader.open(trace.path) as reader:
                for packet in reader:
                    assert trace.window.t0 <= packet.ts <= trace.window.t1 + 1e-6

    def test_deterministic(self, enterprise, tmp_path):
        a = generate_dataset("D0", enterprise, tmp_path / "a", seed=9, scale=0.002,
                             max_windows=2)
        b = generate_dataset("D0", enterprise, tmp_path / "b", seed=9, scale=0.002,
                             max_windows=2)
        for trace_a, trace_b in zip(a.traces, b.traces):
            assert trace_a.packet_count == trace_b.packet_count
            assert Path(trace_a.path).read_bytes() == Path(trace_b.path).read_bytes()

    def test_seed_changes_output(self, enterprise, tmp_path):
        a = generate_dataset("D0", enterprise, tmp_path / "a", seed=9, scale=0.002,
                             max_windows=2)
        b = generate_dataset("D0", enterprise, tmp_path / "b", seed=10, scale=0.002,
                             max_windows=2)
        assert a.total_packets != b.total_packets

    def test_scale_changes_volume(self, enterprise, tmp_path):
        small = generate_dataset("D0", enterprise, tmp_path / "s", seed=9, scale=0.002,
                                 max_windows=4)
        large = generate_dataset("D0", enterprise, tmp_path / "l", seed=9, scale=0.01,
                                 max_windows=4)
        assert large.total_packets > small.total_packets * 2

    def test_traffic_involves_monitored_subnet(self, enterprise, tmp_path):
        """The tap only sees packets to/from the monitored subnet (or
        broadcast/multicast into it)."""
        traces = generate_dataset("D0", enterprise, tmp_path, seed=3, scale=0.002,
                                  max_windows=2)
        for trace in traces.traces:
            prefix = enterprise.subnets[trace.window.subnet_index].subnet
            with PcapReader.open(trace.path) as reader:
                for packet in reader:
                    decoded = decode_packet(packet)
                    if decoded.src_ip is None:
                        continue  # ARP/IPX broadcast within the subnet
                    involved = decoded.src_ip in prefix or decoded.dst_ip in prefix
                    multicast = decoded.dst_ip >= 0xE0000000
                    assert involved or multicast


class TestGenerateStudy:
    def test_multiple_datasets(self, enterprise, tmp_path):
        study = generate_study(tmp_path, seed=2, scale=0.002,
                               datasets=("D0", "D3"), max_windows=2,
                               enterprise=enterprise)
        assert set(study) == {"D0", "D3"}
        assert all(traces.total_packets > 0 for traces in study.values())


class TestDatasetDials:
    def test_mixes_are_distributions(self):
        from repro.gen.datasets import DATASETS

        for name, config in DATASETS.items():
            nfs_total = sum(config.dials.nfs_mix.values())
            ncp_total = sum(config.dials.ncp_mix.values())
            assert 0.9 < nfs_total < 1.1, name
            assert 0.9 < ncp_total < 1.1, name

    def test_paper_metadata(self):
        from repro.gen.datasets import DATASETS

        assert DATASETS["D0"].tap_seconds == 600.0
        assert DATASETS["D1"].per_tap == 2
        assert DATASETS["D1"].snaplen == DATASETS["D2"].snaplen == 68
        assert all(
            DATASETS[n].snaplen == 1500 for n in ("D0", "D3", "D4")
        )
        assert DATASETS["D3"].num_subnets == 18

    def test_full_payload_property(self):
        from repro.gen.datasets import DATASETS

        assert DATASETS["D0"].full_payload
        assert not DATASETS["D1"].full_payload

    def test_imap_policy_change(self):
        from repro.gen.datasets import DATASETS

        assert DATASETS["D0"].dials.imap_tls_frac < 0.6
        assert all(
            DATASETS[n].dials.imap_tls_frac > 0.9 for n in ("D1", "D2", "D3", "D4")
        )
