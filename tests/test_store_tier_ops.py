"""Tiered-store operations under load and under fire.

Three acceptance gates live here: (1) query answers are byte-identical
on a tiered store before, during, and after rebalance/compaction — even
from eight concurrent reader threads; (2) compacting a live checkpoint
chain changes nothing a resuming engine can observe; (3) a SIGKILL at
any publish inside compaction leaves a store that gc + scrub bring back
to clean, with the checkpoint still loadable.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import threading

import pytest

from repro.analysis.analyzers import DEFAULT_ANALYZERS
from repro.analysis.errors import ErrorPolicy
from repro.chaos import CHAOS_ENV, FaultKind, FaultPlane, FaultRule
from repro.chaos.faults import CRASH_EXIT_CODE
from repro.gen.capture import generate_dataset
from repro.gen.topology import ENTERPRISE_NET, Enterprise
from repro.service.app import store_state_token
from repro.store import ConnFilter, StoreQuery, StoreScrubber, compact_checkpoints
from repro.store.query import GROUP_DIMENSIONS
from repro.store.tier import init_tier, open_store
from repro.stream.checkpoint import StreamCheckpointer, decode_result_batch
from repro.stream.engine import StreamConfig, StreamDatasetAnalyzer
from repro.stream.flowtable import StreamFlowTable
from repro.stream.source import PacketSource

_THREADS = 8


def _snapshot(query: StoreQuery) -> dict:
    result: dict = {"datasets": query.datasets()}
    for by in GROUP_DIMENSIONS:
        result[f"agg-{by}"] = [
            (row.group, row.conns, row.bytes, row.pkts)
            for row in query.aggregate(ConnFilter(), by=by)
        ]
    result["count"] = query.count(ConnFilter(proto="tcp", min_bytes=100))
    result["table"] = query.table(ConnFilter(), by="category").render()
    return result


@pytest.fixture()
def tiered(store_study, tmp_path):
    """A private tiered two-root copy of the shared study store."""
    _, root = store_study
    shutil.copytree(root, tmp_path / "store")
    return init_tier(tmp_path / "store", roots=(str(tmp_path / "root-b"),))


def test_tiering_never_changes_a_query_answer(store_study, tiered):
    _, root = store_study
    baseline = _snapshot(StoreQuery(open_store(root)))
    assert _snapshot(StoreQuery(tiered)) == baseline  # flat layout, tiered code
    tiered.rebalance()
    assert _snapshot(StoreQuery(tiered)) == baseline  # objects split across roots
    token = store_state_token(tiered.root)
    compact_checkpoints(tiered, grace_s=0)
    assert _snapshot(StoreQuery(tiered)) == baseline
    # The service's cache/ETag token never notices either operation.
    assert store_state_token(tiered.root) == token


def test_eight_threads_read_identically_during_rebalance(tiered):
    sequential = _snapshot(StoreQuery(tiered))
    results: list[dict | None] = [None] * _THREADS
    errors: list[BaseException] = []
    start = threading.Barrier(_THREADS + 1)

    def churn() -> None:
        try:
            start.wait(timeout=30)
            # One bucket at a time: readers overlap every copy/flip/reap.
            while tiered.rebalance(max_buckets=1).pending:
                pass
            compact_checkpoints(tiered, grace_s=0)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            errors.append(exc)

    def hammer(slot: int) -> None:
        try:
            query = StoreQuery(tiered)
            start.wait(timeout=30)
            for _ in range(3):
                results[slot] = _snapshot(query)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            errors.append(exc)

    threads = [threading.Thread(target=churn, daemon=True)] + [
        threading.Thread(target=hammer, args=(slot,), daemon=True)
        for slot in range(_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    for slot, result in enumerate(results):
        assert result == sequential, f"thread {slot} diverged mid-rebalance"
    assert tiered.rebalance().pending == ()


# -- checkpoint compaction ---------------------------------------------------


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    out = tmp_path_factory.mktemp("tier-ops-traces")
    return generate_dataset(
        "D0", Enterprise(seed=7), out, seed=7, scale=0.004, max_windows=3
    )


def _make(dataset, **kwargs):
    return StreamDatasetAnalyzer(
        "D0",
        full_payload=dataset.config.full_payload,
        internal_net=ENTERPRISE_NET,
        analyzers=[c() for c in DEFAULT_ANALYZERS],
        error_policy=ErrorPolicy.STRICT,
        **kwargs,
    )


@pytest.fixture(scope="module")
def finished_results(dataset):
    """Real finished-flow results (records, states, streams) captured
    straight off the flow table — exactly what ``flush_batch`` persists
    in a live streaming run."""
    captured: list = []
    real_finish = StreamFlowTable.finish

    def spying(self):
        results = real_finish(self)
        captured.extend(results)
        return results

    StreamFlowTable.finish = spying
    try:
        analyzer = _make(dataset)
        analyzer.process_pcap(dataset.traces[0].path)
        analyzer.finish()
    finally:
        StreamFlowTable.finish = real_finish
    assert len(captured) >= 8
    return captured


def _checkpoint_with_batches(store, results, key="ck-t000", batches=4):
    """A checkpoint whose chain holds ``batches`` real result shards."""
    checkpointer = StreamCheckpointer(store, key)
    chunk = max(1, -(-len(results) // batches))
    for start in range(0, len(results), chunk):
        checkpointer.flush_batch(results[start : start + chunk])
    checkpointer.save({"trace": {"packets": len(results)}})
    return checkpointer


def _batches_of(store, manifest) -> list:
    results = []
    for digest in manifest["batches"]:
        results.extend(decode_result_batch(store.get_object(digest)))
    return results


def test_compaction_merges_the_chain_and_preserves_every_result(
    dataset, finished_results, tmp_path
):
    store = init_tier(tmp_path / "store", roots=(str(tmp_path / "b"),))
    store.rebalance()
    _checkpoint_with_batches(store, finished_results)
    (manifest,) = store.checkpoints()
    assert len(manifest["batches"]) == 4
    before = _batches_of(store, manifest)

    report = compact_checkpoints(store, grace_s=0)
    assert report.compacted == [manifest["key"]]
    assert report.batches_before == 4 and report.batches_after == 1

    (compacted,) = store.checkpoints()
    assert len(compacted["batches"]) == 1
    assert compacted["compacted_from"] == 4
    # Identical results in identical order out of the super-shard.
    after = _batches_of(store, compacted)
    assert [(p.flow_id, p.phase, p.seq) for p in after] == [
        (p.flow_id, p.phase, p.seq) for p in before
    ]
    assert [p.result.record for p in after] == [p.result.record for p in before]
    # The checkpointer resumes through the compacted chain — the *state*
    # shard was rewritten too, not just the manifest (load restores the
    # batch list from the state).
    loaded = StreamCheckpointer.load(store, compacted["key"])
    assert loaded is not None
    checkpointer, state = loaded
    assert checkpointer.batch_digests == compacted["batches"]
    assert state["trace"]["packets"] == len(finished_results)
    resumed = checkpointer.load_batches()
    assert [p.result.record for p in resumed] == [
        p.result.record for p in before
    ]
    # The orphaned originals are gc's to reclaim; the store stays clean.
    store.gc(tmp_grace_s=0)
    assert StoreScrubber(store).scrub(tmp_grace_s=0).ok
    final = _batches_of(store, next(iter(store.checkpoints())))
    assert [p.result.record for p in final] == [
        p.result.record for p in after
    ]


def test_compaction_skips_live_writers_and_already_compact_chains(
    finished_results, tmp_path
):
    store = open_store(tmp_path / "store")
    _checkpoint_with_batches(store, finished_results, key="ck-one", batches=1)
    _checkpoint_with_batches(store, finished_results, key="ck-live", batches=3)
    # Freshly-written manifests are inside the live-writer grace.
    report = compact_checkpoints(store, grace_s=3600)
    assert report.compacted == [] and report.skipped_live >= 1
    report = compact_checkpoints(store, grace_s=0)
    assert report.compacted == ["ck-live"] and report.skipped_small == 1


def test_tiered_crash_resume_equals_uninterrupted(
    dataset, tmp_path, monkeypatch
):
    """The streaming engine's checkpoint/resume parity holds verbatim on
    a rebalanced multi-root store, with a compaction pass in between."""
    plain = _make(dataset)
    for trace in dataset.traces:
        plain.process_pcap(trace.path)
    plain_analysis = plain.finish()

    store = init_tier(tmp_path / "store", roots=(str(tmp_path / "b"),))
    store.rebalance()
    real_iter = PacketSource.__iter__
    left = {"n": 6000}

    def crashing(self):
        for pkt in real_iter(self):
            left["n"] -= 1
            if left["n"] < 0:
                raise RuntimeError("simulated crash")
            yield pkt

    monkeypatch.setattr(PacketSource, "__iter__", crashing)
    crashed = _make(
        dataset,
        config=StreamConfig(checkpoint_every=100),
        store=store,
        checkpoint_base="ck",
    )
    with pytest.raises(RuntimeError):
        for trace in dataset.traces:
            crashed.process_pcap(trace.path)
    monkeypatch.setattr(PacketSource, "__iter__", real_iter)
    assert list(store.checkpoints())
    compact_checkpoints(store, grace_s=0)  # must not disturb the live state
    resumed = _make(
        dataset,
        config=StreamConfig(checkpoint_every=100),
        store=store,
        checkpoint_base="ck",
    )
    for trace in dataset.traces:
        resumed.process_pcap(trace.path)
    analysis = resumed.finish()
    assert analysis.conns == plain_analysis.conns
    assert list(store.checkpoints()) == []


@pytest.mark.parametrize("publish_index", [1, 2, 3])
def test_sigkill_mid_compaction_is_recoverable(
    dataset, finished_results, tmp_path, publish_index
):
    """Kill compaction at each of its publishes (super-shard, state
    shard, manifest); the store must come back clean via gc + scrub and
    the checkpoint must still load."""
    store = init_tier(tmp_path / "store", roots=(str(tmp_path / "b"),))
    store.rebalance()
    _checkpoint_with_batches(store, finished_results)
    (manifest,) = store.checkpoints()
    before = _batches_of(store, manifest)

    plane = FaultPlane(
        rules=[FaultRule(FaultKind.CRASH, op="publish", at=(publish_index,))]
    )
    script = (
        "from repro.store import compact_checkpoints\n"
        "from repro.store.tier import open_store\n"
        f"store = open_store({str(store.root)!r})\n"
        "compact_checkpoints(store, grace_s=0)\n"
    )
    env = dict(os.environ, **{CHAOS_ENV: plane.to_env()})
    env["PYTHONPATH"] = "src"
    proc = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, cwd="."
    )
    assert proc.returncode == CRASH_EXIT_CODE, proc.stderr

    survivor = open_store(store.root)
    (manifest_now,) = survivor.checkpoints()
    # Old chain or new chain — never a mix, and always decodable.
    assert _batches_of(survivor, manifest_now) is not None
    loaded = StreamCheckpointer.load(survivor, manifest_now["key"])
    assert loaded is not None
    checkpointer, _state = loaded
    replayed = []
    for digest in checkpointer.batch_digests:
        replayed.extend(decode_result_batch(survivor.get_object(digest)))
    assert [p.result.record for p in replayed] == [
        p.result.record for p in before
    ]
    # gc sweeps whatever the crash orphaned; scrub then finds a clean store.
    survivor.gc(tmp_grace_s=0)
    report = StoreScrubber(survivor).scrub(tmp_grace_s=0)
    assert report.ok, report.render()
