"""Tests for the bounded streaming flow table (repro.stream.flowtable).

The load-bearing property is *ordering parity*: whatever the eviction
knobs do mid-trace, the sorted result sequence must equal the batch
:class:`~repro.analysis.flow.FlowTable` flush for the same packets —
except where a turned-down knob genuinely splits a connection, which
must be counted as ``early_eviction`` rather than silently diverging.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.flow import FlowTable
from repro.gen.packetize import realize_session
from repro.gen.session import AppEvent, Dir, TcpSession
from repro.net.icmp import ICMP_ECHO_REQUEST
from repro.net.packet import decode_packet, make_icmp_packet, make_udp_packet
from repro.stream.flowtable import (
    PHASE_OCCURRENCE,
    PHASE_TCP,
    PHASE_UDP,
    StreamFlowTable,
)

_A, _B, _C, _D = 0x0A000001, 0x0A000002, 0x0A000003, 0x0A000004


def _udp(ts, src=_A, dst=_B, sport=40000, dport=9999, payload=b"x"):
    return decode_packet(
        make_udp_packet(ts, 1, 2, src, dst, sport, dport, payload)
    )


def _icmp(ts, src=_A, dst=_B):
    return decode_packet(
        make_icmp_packet(ts, 1, 2, src, dst, ICMP_ECHO_REQUEST, ident=7)
    )


def _tcp_session_packets(start=0.0, sport=44000, dport=80, **kwargs):
    base = dict(
        client_ip=_A, server_ip=_B, client_mac=1, server_mac=2,
        sport=sport, dport=dport, start=start, rtt=0.001, loss_rate=0.0,
        events=[AppEvent(0.0, Dir.C2S, b"GET /\r\n\r\n")],
    )
    base.update(kwargs)
    return [decode_packet(p) for p in realize_session(TcpSession(**base), random.Random(4))]


def _batch_records(packets):
    table = FlowTable(collect_payload=True)
    for pkt in packets:
        table.process(pkt)
    return [result.record for result in table.flush()]


def _stream_records(packets, **knobs):
    table = StreamFlowTable(collect_payload=True, **knobs)
    for pkt in packets:
        table.process(pkt)
    pending = table.finish()
    pending.sort(key=lambda item: item.sort_key(table.promotions))
    return [item.result.record for item in pending], table


class TestBatchParity:
    def test_tcp_session_identical_records(self):
        packets = _tcp_session_packets()
        records, table = _stream_records(packets)
        assert records == _batch_records(packets)
        assert table.early_eviction == 0
        assert table.flow_overflow == 0

    def test_udp_gap_eviction_matches_batch_order(self):
        # Two same-key UDP bursts 120s apart wrapped in other traffic:
        # the batch table evicts the first burst lazily at the second's
        # arrival (occurrence order), which must survive streaming.
        packets = [
            _udp(0.0),
            _udp(1.0, src=_C, dst=_D, sport=41000),
            _icmp(2.0, src=_C),
            _udp(120.5),  # same key as t=0.0, gap > 60s
            _udp(121.0, src=_C, dst=_D, sport=41000),
        ]
        records, table = _stream_records(packets)
        assert records == _batch_records(packets)
        assert table.early_eviction == 0

    def test_mixed_protocol_phase_order(self):
        packets = [
            _udp(0.0),
            *_tcp_session_packets(start=0.5),
            _icmp(1.0),
            _udp(1.5, src=_C, sport=41000),
        ]
        records, _ = _stream_records(packets)
        assert records == _batch_records(packets)
        # End-of-trace phases: TCP first, then UDP, then ICMP.
        assert [r.proto for r in records] == ["tcp", "udp", "udp", "icmp"]


class TestTimeouts:
    def test_idle_timeout_evicts_tcp(self):
        packets = _tcp_session_packets()
        table = StreamFlowTable(idle_timeout=10.0)
        for pkt in packets:
            table.process(pkt)
        assert table.live_flows == 1
        table.process(_udp(packets[-1].ts + 11.0, src=_C, sport=41000))
        # The sweep at the UDP packet evicted the idle TCP flow.
        assert table.live_flows == 1  # just the fresh UDP flow
        assert table.pending_results == 1
        assert table._pending[0].phase == PHASE_TCP

    def test_idle_vs_hard_timeout_eviction_ordering(self):
        # Flow 1 stays active (hard timeout fires); flow 2 goes idle
        # first.  Idle sweeps run before the hard-timeout sweep, so the
        # idle victim must be emitted first even though flow 1 is older.
        table = StreamFlowTable(idle_timeout=20.0, hard_timeout=50.0)
        table.process(_udp(0.0))  # flow 1 (udp key A->B)
        t = 0.0
        table.process(_tcp_session_packets(start=1.0)[0])  # flow 2, then idle
        for t in (10.0, 30.0, 45.0):
            table.process(_udp(t))  # keeps flow 1 active
        # t=45 sweep: TCP flow idle > 20s -> evicted by idle timeout.
        assert table.pending_results == 1
        assert table._pending[0].phase == PHASE_TCP
        table.process(_udp(55.0))
        # t=55 sweep: flow 1 is 55s old -> hard timeout despite activity.
        phases = [p.phase for p in table._pending]
        assert phases == [PHASE_TCP, PHASE_UDP]

    def test_hard_timeout_sweeps_in_creation_order(self):
        table = StreamFlowTable(hard_timeout=30.0)
        table.process(_udp(0.0))
        table.process(_udp(15.0, src=_C, sport=41000))
        # Keep both active so only the hard timeout can fire.
        table.process(_udp(20.0))
        table.process(_udp(25.0, src=_C, sport=41000))
        table.process(_udp(40.0, src=_D, sport=42000))
        # Only the t=0 flow is over-age at t=40; the t=15 flow follows later.
        assert [p.result.record.first_ts for p in table._pending] == [0.0]
        table.process(_udp(50.0, src=_D, sport=42000))
        assert [p.result.record.first_ts for p in table._pending] == [0.0, 15.0]


class TestOverflow:
    def test_overflow_evicts_lru_and_counts(self):
        table = StreamFlowTable(max_flows=2)
        table.process(_udp(0.0))
        table.process(_udp(1.0, src=_C, sport=41000))
        table.process(_udp(2.0))  # touch flow 1: flow 2 becomes LRU
        table.process(_udp(3.0, src=_D, sport=42000))  # forces an eviction
        assert table.flow_overflow == 1
        assert table.live_flows == 2
        evicted = table._pending[0].result.record
        assert (evicted.orig_ip, evicted.orig_port) == (_C, 41000)

    def test_overflow_records_all_conserved(self):
        packets = [_udp(float(i), src=_A + i, sport=40000 + i) for i in range(6)]
        records, table = _stream_records(packets, max_flows=2)
        assert len(records) == 6
        assert table.flow_overflow == 4

    def test_max_flows_must_be_positive(self):
        with pytest.raises(ValueError):
            StreamFlowTable(max_flows=0)


class TestTombstones:
    def test_promotion_restores_batch_order(self):
        # Capacity forces flow A out early; a same-key packet past the
        # batch gap threshold proves batch would have evicted it at that
        # instant, so A's result is promoted into the occurrence phase
        # and the final ordering matches batch exactly.
        packets = [
            _udp(0.0),                      # flow A
            _udp(1.0, src=_C, sport=41000),  # flow B evicts A (capacity)
            _udp(120.0),                     # same key as A, gap > 60s
        ]
        records, table = _stream_records(packets, max_flows=1)
        assert table.early_eviction == 0
        assert table.promotions  # A was promoted, not split
        assert records == _batch_records(packets)

    def test_split_within_gap_counts_early_eviction(self):
        packets = [
            _udp(0.0),                      # flow A
            _udp(1.0, src=_C, sport=41000),  # evicts A (capacity)
            _udp(30.0),                      # same key, inside the gap
        ]
        records, table = _stream_records(packets, max_flows=1)
        assert table.early_eviction == 1
        # The connection was genuinely split: one extra record vs batch.
        assert len(records) == len(_batch_records(packets)) + 1

    def test_tcp_reuse_after_eviction_is_always_a_split(self):
        first = _tcp_session_packets()
        again = _tcp_session_packets(start=200.0)
        table = StreamFlowTable(idle_timeout=50.0)
        for pkt in first:
            table.process(pkt)
        table.process(_udp(first[-1].ts + 60.0, src=_C, sport=41000))  # sweep
        for pkt in again:
            table.process(pkt)
        assert table.early_eviction == 1


class TestDrain:
    def test_drain_withholds_tombstone_watched_results(self):
        table = StreamFlowTable(max_flows=1)
        table.process(_udp(0.0))
        table.process(_udp(1.0, src=_C, sport=41000))  # evicts flow A
        # A's sort key may still be promoted: not safe to flush.
        assert table.drain() == []
        assert table.pending_results == 1
        table.process(_udp(120.0))  # resolves A's tombstone (promotion)
        drained = table.drain()
        assert [d.result.record.first_ts for d in drained] == [0.0]
        # Admitting the new same-key flow evicted B (capacity), so B's
        # result is now the one being watched.
        assert table.pending_results == 1

    def test_drain_releases_gap_evictions_immediately(self):
        table = StreamFlowTable()
        table.process(_udp(0.0))
        table.process(_udp(120.0))  # lazy gap eviction, phase 0
        drained = table.drain()
        assert len(drained) == 1
        assert drained[0].phase == PHASE_OCCURRENCE
