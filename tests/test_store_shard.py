"""The shard layer: codec round-trips, columns, and every corruption class.

Corruption tests follow the PR-1 contract: a damaged shard never leaks a
raw ``struct.error`` — it raises :class:`ShardError` carrying an
:class:`ErrorKind` from the closed taxonomy, so the strict/tolerant
policy machinery treats cache defects exactly like pcap defects.
"""

from __future__ import annotations

import struct
import zlib
from collections import Counter, defaultdict

import pytest

from repro.analysis.conn import ConnRecord, ConnState
from repro.analysis.engine import TraceStats
from repro.analysis.errors import ErrorKind
from repro.store import codec
from repro.store.schema import SCHEMA_VERSION
from repro.store.shard import (
    DatasetShard,
    KIND_DATASET,
    KIND_TRACE,
    MAGIC,
    ShardError,
    ShardNewerThanReader,
    decode_conn_columns,
    decode_dataset_shard,
    decode_shard,
    decode_trace_shard,
    encode_conn_columns,
    encode_dataset_shard,
    encode_shard,
    encode_trace_shard,
)
from repro.util.timeline import ByteTimeline


def make_conn(row: int = 0, **overrides) -> ConnRecord:
    conn = ConnRecord(
        proto="tcp",
        orig_ip=0x0A000001 + row,
        resp_ip=0xC0A80001,
        orig_port=1024 + row,
        resp_port=80,
        first_ts=1000.5 + row,
        last_ts=1010.25 + row,
        orig_pkts=3,
        resp_pkts=4,
        orig_bytes=120,
        resp_bytes=4096,
        state=ConnState.SF,
        trace_index=row % 2,
        app="http",
    )
    for name, value in overrides.items():
        setattr(conn, name, value)
    return conn


# -- codec ------------------------------------------------------------------


@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        False,
        0,
        -1,
        2**70,
        -(2**70),
        3.14159,
        float("inf"),
        "höst",
        b"\x00\xff",
        (1, "two", None),
        [1, [2, [3]]],
        {"a": 1, "b": [2, 3]},
        frozenset({1, 2, 3}),
        Counter({"x": 5, "y": 1}),
    ],
)
def test_codec_round_trips(value):
    assert codec.decode(codec.encode(value)) == value


def test_codec_set_encoding_is_order_independent():
    a = codec.encode({3, 1, 2, 100})
    b = codec.encode({100, 2, 1, 3})
    assert a == b


def test_codec_preserves_dict_insertion_order():
    value = {"z": 1, "a": 2, "m": 3}
    assert list(codec.decode(codec.encode(value))) == ["z", "a", "m"]


def test_codec_rejects_unregistered_types():
    class Stray:
        pass

    with pytest.raises(codec.CodecError):
        codec.encode(Stray())


def test_codec_rejects_trailing_garbage():
    with pytest.raises(codec.CodecError):
        codec.decode(codec.encode(1) + b"\x00")


# -- columnar connection block ---------------------------------------------


def test_conn_columns_round_trip():
    conns = [
        make_conn(0),
        make_conn(1, proto="udp", state=ConnState.OTH, app="dns"),
        make_conn(2, notes={"ssl": True}),
        make_conn(3, proto="icmp", orig_port=0, resp_port=0, app=""),
    ]
    decoded = decode_conn_columns(encode_conn_columns(conns))
    assert decoded == conns


def test_conn_columns_empty():
    assert decode_conn_columns(encode_conn_columns([])) == []


def test_conn_columns_corruption_is_a_decode_error():
    data = encode_conn_columns([make_conn(0)])
    with pytest.raises(ShardError) as info:
        decode_conn_columns(data[: len(data) // 2])
    assert info.value.kind is ErrorKind.DECODE_ERROR


# -- shard container --------------------------------------------------------


def _sample_shard() -> bytes:
    return encode_shard(KIND_TRACE, {"meta": b"abc", "conns": b"\x01" * 32})


def test_shard_round_trip():
    version, kind, sections = decode_shard(_sample_shard())
    assert version == SCHEMA_VERSION
    assert kind == KIND_TRACE
    assert sections == {"meta": b"abc", "conns": b"\x01" * 32}


def test_truncated_tail_is_truncated_body():
    data = _sample_shard()
    with pytest.raises(ShardError) as info:
        decode_shard(data[:-6], path="x.rcs")
    assert info.value.kind is ErrorKind.TRUNCATED_BODY
    assert info.value.path == "x.rcs"


def test_tiny_file_is_truncated_header():
    with pytest.raises(ShardError) as info:
        decode_shard(MAGIC + b"\x01")
    assert info.value.kind is ErrorKind.TRUNCATED_HEADER


def test_foreign_magic_is_bad_magic():
    data = b"PK\x03\x04" + _sample_shard()[4:]
    with pytest.raises(ShardError) as info:
        decode_shard(data)
    assert info.value.kind is ErrorKind.BAD_MAGIC


def test_flipped_payload_byte_is_crc_mismatch():
    data = bytearray(_sample_shard())
    data[10] ^= 0xFF
    with pytest.raises(ShardError) as info:
        decode_shard(bytes(data))
    assert info.value.kind is ErrorKind.DECODE_ERROR
    assert "crc" in info.value.detail


def test_future_schema_version_is_rejected():
    # Bump the version byte and re-sign the CRC so only the version differs.
    data = bytearray(encode_shard(KIND_TRACE, {"meta": b"abc"}, version=99))
    assert data[4] == 99
    with pytest.raises(ShardNewerThanReader) as info:
        decode_shard(bytes(data))
    assert info.value.kind is ErrorKind.BAD_MAGIC


def test_wrong_kind_is_rejected():
    data = encode_shard(KIND_DATASET, {"meta": b"abc"})
    with pytest.raises(ShardError) as info:
        decode_shard(data, expect_kind=KIND_TRACE)
    assert info.value.kind is ErrorKind.DECODE_ERROR


def test_section_overrun_is_truncated_body():
    # Grow a section's declared length past the footer, re-signing the CRC
    # so the truncation check (not the CRC check) must catch it.
    data = bytearray(encode_shard(KIND_TRACE, {"m": b"abcd"}))
    offset = struct.calcsize(">4sBBH") + 1 + 1  # header, name len, name
    struct.pack_into(">Q", data, offset, 1 << 20)
    body = bytes(data[:-8])
    data = body + struct.pack(">I4s", zlib.crc32(body) & 0xFFFFFFFF, b"1SCR")
    with pytest.raises(ShardError) as info:
        decode_shard(data)
    assert info.value.kind is ErrorKind.TRUNCATED_BODY


# -- trace / dataset shards -------------------------------------------------


def _sample_stats() -> TraceStats:
    stats = TraceStats(index=0, path="D0/D0-w000-subnet04.pcap")
    stats.packets = 17
    stats.start_ts = 1000.0
    stats.end_ts = 1060.0
    stats.l2_counts = Counter({"ipv4": 15, "arp": 2})
    timeline = ByteTimeline(1000.0, 1060.0, 10.0)
    timeline.add(1005.0, 1500)
    stats.utilization = timeline
    stats.tcp_packets = {"ent": 10, "wan": 5}
    return stats


def test_trace_shard_round_trip():
    conns = [make_conn(row) for row in range(5)]
    stats = _sample_stats()
    data = encode_trace_shard("D0", "D0/D0-w000-subnet04.pcap", "ab" * 32, stats, conns)
    shard = decode_trace_shard(data)
    assert shard.dataset == "D0"
    assert shard.source == "D0/D0-w000-subnet04.pcap"
    assert shard.source_digest == "ab" * 32
    assert shard.conns == conns
    assert shard.stats.packets == stats.packets
    assert shard.stats.l2_counts == stats.l2_counts
    assert shard.stats.utilization.bins() == stats.utilization.bins()


def test_trace_shard_rejects_absolute_sources():
    with pytest.raises(ValueError):
        encode_trace_shard("D0", "/tmp/evil.pcap", "0" * 64, _sample_stats(), [])


def test_trace_shard_bytes_are_deterministic():
    conns = [make_conn(row, notes={"n": row}) for row in range(3)]
    args = ("D0", "D0/t.pcap", "cd" * 32, _sample_stats(), conns)
    assert encode_trace_shard(*args) == encode_trace_shard(*args)


def test_dataset_shard_round_trip():
    results = {"http": Counter({"GET": 3})}
    shard = DatasetShard(
        name="D0",
        full_payload=True,
        internal_net="10.0.0.0/9",
        error_policy="strict",
        scanner_sources={1, 2, 3},
        windows_endpoints={(5, 139), (6, 445)},
        removed_conns=9,
        analyzer_errors={"http": 0},
        analyzer_results=results,
    )
    decoded = decode_dataset_shard(encode_dataset_shard(shard))
    assert decoded == shard


def test_dataset_shard_missing_section_is_decode_error():
    data = encode_shard(KIND_DATASET, {"dataset": codec.encode({})})
    with pytest.raises(ShardError) as info:
        decode_dataset_shard(data)
    assert info.value.kind is ErrorKind.DECODE_ERROR
