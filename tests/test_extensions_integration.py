"""Integration tests for the extension analyses over a real small study."""

from repro.analysis.roles import classify_roles
from repro.analysis.scans import characterize_scanners
from repro.gen.topology import Role


class TestRolesOverStudy:
    def test_real_servers_rediscovered(self, small_study):
        """Traffic-only role inference re-finds placed servers."""
        analysis = small_study.analyses["D0"]
        report = classify_roles(
            analysis.filtered_conns(), analysis.internal_net,
            analysis.windows_endpoints,
        )
        truth = {h.ip for h in small_study.enterprise.servers(Role.SMTP_SERVER)}
        inferred = {p.ip for p in report.servers_for("SMTP")}
        assert truth & inferred

    def test_most_hosts_are_not_servers(self, small_study):
        analysis = small_study.analyses["D1"]
        report = classify_roles(analysis.filtered_conns(), analysis.internal_net)
        counts = report.kind_counts()
        total = sum(counts.values())
        assert counts["server"] + counts["mixed"] < 0.1 * total

    def test_profiles_internal_only(self, small_study):
        analysis = small_study.analyses["D0"]
        report = classify_roles(analysis.filtered_conns(), analysis.internal_net)
        assert all(ip in analysis.internal_net for ip in report.profiles)


class TestScansOverStudy:
    def test_scanners_characterized(self, small_study):
        analysis = small_study.analyses["D1"]
        known = tuple(
            h.ip for h in small_study.enterprise.servers(Role.SCANNER)
        )
        report = characterize_scanners(analysis.conns, known_scanners=known)
        assert report.profiles
        widest = report.by_extent()[0]
        assert widest.distinct_targets > 30
        assert widest.conns >= widest.distinct_targets

    def test_scan_fraction_matches_engine(self, small_study):
        analysis = small_study.analyses["D1"]
        report = characterize_scanners(analysis.conns)
        engine_fraction = analysis.removed_conns / len(analysis.conns)
        # The characterization and the engine's own filter see similar
        # scan volume (the engine additionally knows the site's scanners).
        assert abs(report.removed_fraction - engine_fraction) < 0.1

    def test_internal_tcp_and_external_icmp_scanners(self, small_study):
        analysis = small_study.analyses["D1"]
        report = characterize_scanners(analysis.conns)
        kinds = {profile.is_icmp_scanner for profile in report.profiles.values()}
        # Both scanner species appear in hour-long datasets.
        assert kinds == {True, False}
