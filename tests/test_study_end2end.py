"""End-to-end integration tests over a small generated study.

These assert the *shape* properties the paper reports, at small scale:
exact values vary with the seed, but orderings and rough magnitudes must
hold for the reproduction to be meaningful.
"""

import pytest

from repro.analysis.conn import Locality
from repro.analysis.locality import origin_breakdown
from repro.core.experiments import EXPERIMENTS
from repro.core.study import run_study


class TestStudyPlumbing:
    def test_datasets_present(self, small_study):
        assert set(small_study.analyses) == {"D0", "D1"}
        assert set(small_study.breakdowns) == {"D0", "D1"}

    def test_traces_and_conns_nonempty(self, small_study):
        for name, analysis in small_study.analyses.items():
            assert analysis.total_packets > 1000, name
            assert len(analysis.conns) > 50, name

    def test_full_payload_flags(self, small_study):
        assert small_study.analyses["D0"].full_payload
        assert not small_study.analyses["D1"].full_payload

    def test_deterministic_given_seed(self, small_study):
        again = run_study(seed=42, scale=0.004, datasets=("D0",), max_windows=12)
        assert (
            again.analyses["D0"].total_packets
            == small_study.analyses["D0"].total_packets
        )


class TestBroadBreakdownShapes:
    def test_ip_dominates_l2(self, small_study):
        for analysis in small_study.analyses.values():
            totals = analysis.l2_totals()
            assert totals["ip"] / sum(totals.values()) > 0.9

    def test_tcp_wins_bytes_udp_wins_conns(self, small_study):
        """Table 3's shape: TCP carries the bytes, UDP the connections.

        At 12-of-44 windows the per-dataset byte split is noisy (a single
        heavy NFS-over-UDP pair can tip one dataset), so bytes are checked
        in aggregate plus a per-dataset floor; the full-schedule benchmark
        asserts the strict per-dataset version.
        """
        total_tcp = total_udp = 0
        for analysis in small_study.analyses.values():
            conns = analysis.filtered_conns()
            tcp_bytes = sum(c.total_bytes for c in conns if c.proto == "tcp")
            udp_bytes = sum(c.total_bytes for c in conns if c.proto == "udp")
            tcp_conns = sum(1 for c in conns if c.proto == "tcp")
            udp_conns = sum(1 for c in conns if c.proto == "udp")
            assert udp_conns > tcp_conns
            assert tcp_bytes / (tcp_bytes + udp_bytes) > 0.40
            total_tcp += tcp_bytes
            total_udp += udp_bytes
        assert total_tcp > total_udp

    def test_scan_filter_removes_plausible_fraction(self, small_study):
        for analysis in small_study.analyses.values():
            fraction = analysis.removed_conns / len(analysis.conns)
            assert 0.01 < fraction < 0.30

    def test_name_category_dominates_connections(self, small_study):
        breakdown = small_study.breakdowns["D1"]
        name_share = breakdown.conn_fraction("name")
        assert name_share > 0.3
        assert name_share > breakdown.conn_fraction("web")

    def test_name_bytes_negligible(self, small_study):
        breakdown = small_study.breakdowns["D1"]
        assert breakdown.byte_fraction("name") < 0.02

    def test_bulk_categories_dominate_bytes(self, small_study):
        breakdown = small_study.breakdowns["D0"]
        heavy = (
            breakdown.byte_fraction("net-file")
            + breakdown.byte_fraction("backup")
            + breakdown.byte_fraction("bulk")
        )
        assert heavy > 0.4


class TestOriginsAndLocality:
    def test_ent_ent_dominates(self, small_study):
        for analysis in small_study.analyses.values():
            breakdown = origin_breakdown(analysis.filtered_conns(), analysis.internal_net)
            assert breakdown.fraction(Locality.ENT_ENT) > 0.5

    def test_multicast_present_but_minority(self, small_study):
        analysis = small_study.analyses["D1"]
        breakdown = origin_breakdown(analysis.filtered_conns(), analysis.internal_net)
        mcast = breakdown.fraction(Locality.MCAST_INT) + breakdown.fraction(Locality.MCAST_EXT)
        assert 0.02 < mcast < 0.35


class TestVantagePointEffects:
    def test_mail_vantage_carries_more_email_bytes(self, small_study, d3_study):
        """D0-D2 monitor the mail subnets; D3 does not (Table 8)."""
        d0_email = small_study.analyses["D0"].analyzer_results["email"].total_bytes()
        d3_email = d3_study.analyses["D3"].analyzer_results["email"].total_bytes()
        d0_total = sum(c.total_bytes for c in small_study.analyses["D0"].filtered_conns())
        d3_total = sum(c.total_bytes for c in d3_study.analyses["D3"].filtered_conns())
        assert d0_email / max(d0_total, 1) > d3_email / max(d3_total, 1)

    def test_print_vantage_spoolss_heavy(self, d3_study):
        """Table 11's D3/D4 column: printing dominates DCE/RPC."""
        report = d3_study.analyses["D3"].analyzer_results["windows"]
        spoolss = report.rpc_request_fraction("Spoolss/WritePrinter") + report.rpc_request_fraction("Spoolss/other")
        auth = report.rpc_request_fraction("NetLogon") + report.rpc_request_fraction("LsaRPC")
        assert spoolss > auth

    def test_d0_auth_heavier_than_d3(self, small_study, d3_study):
        d0 = small_study.analyses["D0"].analyzer_results["windows"]
        d3 = d3_study.analyses["D3"].analyzer_results["windows"]
        d0_auth = d0.rpc_request_fraction("NetLogon") + d0.rpc_request_fraction("LsaRPC")
        d3_auth = d3.rpc_request_fraction("NetLogon") + d3.rpc_request_fraction("LsaRPC")
        assert d0_auth > d3_auth


class TestHeaderOnlyDatasets:
    def test_d1_has_no_payload_analysis(self, small_study):
        """D1 (snaplen 68) is omitted from payload analyses, as in §5."""
        report = small_study.analyses["D1"].analyzer_results["http"]
        assert report.internal.requests == 0

    def test_d1_transport_analysis_still_works(self, small_study):
        report = small_study.analyses["D1"].analyzer_results["email"]
        assert report.total_bytes() > 0


class TestExperimentRegistry:
    def test_every_experiment_has_bench(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.bench.startswith("benchmarks/") or experiment.bench == ""

    def test_registry_covers_tables_and_figures(self):
        ids = {e.exp_id for e in EXPERIMENTS.values()}
        for table in (1, 2, 3, 6, 9, 10, 11, 12, 13, 14, 15):
            assert f"Table {table}" in ids
        for figure in range(1, 11):
            assert f"Figure {figure}" in ids
