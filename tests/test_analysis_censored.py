"""Tests for the Kaplan-Meier censored-duration estimator."""

import math
import random

import pytest

from repro.analysis.censored import DurationSample, KaplanMeier, censored_durations
from repro.analysis.conn import ConnRecord, ConnState


def _conn(duration, state):
    return ConnRecord(
        proto="tcp", orig_ip=1, resp_ip=2, orig_port=1, resp_port=993,
        first_ts=0.0, last_ts=duration, state=state,
    )


class TestKaplanMeier:
    def test_no_censoring_matches_empirical(self):
        samples = [DurationSample(d, False) for d in (1.0, 2.0, 3.0, 4.0)]
        km = KaplanMeier(samples)
        assert km.survival(0.5) == 1.0
        assert km.survival(1.0) == pytest.approx(0.75)
        assert km.survival(2.5) == pytest.approx(0.5)
        assert km.survival(4.0) == pytest.approx(0.0)
        assert km.median == 2.0

    def test_censoring_raises_survival(self):
        """Censored long-livers pull the curve up versus treating their
        observed spans as complete."""
        complete = [DurationSample(d, False) for d in (1, 1, 10, 10)]
        censored = [DurationSample(d, d == 10) for d in (1, 1, 10, 10)]
        naive = KaplanMeier(complete)
        adjusted = KaplanMeier(censored)
        assert adjusted.survival(5) >= naive.survival(5)

    def test_all_censored_gives_no_median(self):
        km = KaplanMeier([DurationSample(d, True) for d in (1.0, 2.0)])
        assert km.median is None
        assert km.survival(100) == 1.0

    def test_quantile_validation(self):
        km = KaplanMeier([DurationSample(1.0, False)])
        with pytest.raises(ValueError):
            km.quantile(0.0)

    def test_recovers_exponential_under_fixed_censoring(self):
        """The statistical property that matters: with exp(1/600)
        sessions censored at a 3600 s window, KM still recovers the
        survival function below the censoring horizon."""
        rng = random.Random(7)
        mean = 600.0
        window = 3600.0
        samples = []
        for _ in range(4000):
            true_duration = rng.expovariate(1.0 / mean)
            if true_duration > window:
                samples.append(DurationSample(window, True))
            else:
                samples.append(DurationSample(true_duration, False))
        km = KaplanMeier(samples)
        for t in (200.0, 600.0, 1500.0):
            expected = math.exp(-t / mean)
            assert km.survival(t) == pytest.approx(expected, abs=0.04)

    def test_naive_cdf_underestimates_but_km_does_not(self):
        """The paper's IMAP/S problem in miniature: hour windows cap a
        50-minute-median session distribution.  The naive median is
        biased low; KM's is close (or honestly unidentifiable)."""
        rng = random.Random(11)
        mean = 2500.0
        window = 3600.0
        samples = []
        naive = []
        for _ in range(3000):
            duration = rng.expovariate(1.0 / mean)
            observed = min(duration, window)
            naive.append(observed)
            samples.append(DurationSample(observed, duration > window))
        km = KaplanMeier(samples)
        true_median = mean * math.log(2)  # ~1733 s
        naive_median = sorted(naive)[len(naive) // 2]
        assert km.median == pytest.approx(true_median, rel=0.10)
        assert abs(km.median - true_median) <= abs(naive_median - true_median) + 1


class TestCensoredDurations:
    def test_states_map_to_censoring(self):
        conns = [
            _conn(10.0, ConnState.SF),
            _conn(20.0, ConnState.EST),
            _conn(30.0, ConnState.RSTO),
            _conn(40.0, ConnState.OTH),
            _conn(0.0, ConnState.REJ),
            _conn(0.0, ConnState.S0),
        ]
        samples = censored_durations(conns)
        assert len(samples) == 4  # failed attempts excluded
        by_duration = {s.duration: s.censored for s in samples}
        assert by_duration[10.0] is False
        assert by_duration[20.0] is True
        assert by_duration[30.0] is False
        assert by_duration[40.0] is True

    def test_study_integration(self, small_study):
        """IMAP/S sessions in hour-long windows: censoring is material."""
        analysis = small_study.analyses["D1"]
        imaps = [
            c for c in analysis.filtered_conns()
            if c.proto == "tcp" and c.resp_port == 993
        ]
        samples = censored_durations(imaps)
        if len(samples) >= 10:
            km = KaplanMeier(samples)
            censored_frac = sum(1 for s in samples if s.censored) / len(samples)
            assert 0 <= censored_frac <= 1
            assert km.survival(0.0) <= 1.0
