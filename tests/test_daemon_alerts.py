"""The daemon's alert engine: threshold rules, hysteresis, per-tenant state.

The contract: a rule raises only after ``raise_after`` consecutive
breaching windows, clears only after ``clear_after`` consecutive calm
windows at or below ``clear_threshold``, and tracks that state per
``(tenant, rule)`` so tenants never share alert streaks.
"""

from __future__ import annotations

import json

import pytest

from repro.daemon import AlertEngine, AlertRule, load_alert_rules


def window(index=0, *, bytes_=0, duration=60.0, packets=0, tcp_packets=0,
           retransmits=0, conn_starts=None):
    """A minimal published-window payload for the metric extractors."""
    return {
        "index": index,
        "start_ts": index * duration,
        "duration": duration,
        "packets": packets,
        "bytes": bytes_,
        "tcp_packets": tcp_packets,
        "retransmits": retransmits,
        "conn_starts": conn_starts or {},
    }


def mbps_window(index, mbps):
    """A window whose utilization metric evaluates to ``mbps``."""
    return window(index, bytes_=int(mbps * 1e6 / 8 * 60), duration=60.0)


class TestRuleValidation:
    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown alert metric"):
            AlertRule(name="x", metric="jitter", threshold=1.0,
                      clear_threshold=1.0)

    def test_counts_must_be_positive(self):
        with pytest.raises(ValueError, match="must be >= 1"):
            AlertRule(name="x", metric="mbps", threshold=1.0,
                      clear_threshold=1.0, raise_after=0)

    def test_clear_threshold_above_threshold_rejected(self):
        with pytest.raises(ValueError, match="unclearable"):
            AlertRule(name="x", metric="mbps", threshold=1.0,
                      clear_threshold=2.0)


class TestHysteresis:
    def rule(self, **kwargs):
        defaults = dict(name="hot", metric="mbps", threshold=10.0,
                        clear_threshold=5.0, raise_after=2, clear_after=2)
        defaults.update(kwargs)
        return AlertRule(**defaults)

    def test_raises_after_consecutive_breaches_only(self):
        engine = AlertEngine([self.rule()])
        assert engine.observe_window("t", 0, mbps_window(0, 20)) == []
        events = engine.observe_window("t", 0, mbps_window(1, 20))
        assert [e["event"] for e in events] == ["alert_raise"]
        assert events[0]["rule"] == "hot" and events[0]["window"] == 1
        assert engine.active_alerts("t") == ["hot"]
        # Already active: further breaches emit nothing new.
        assert engine.observe_window("t", 0, mbps_window(2, 20)) == []

    def test_calm_window_resets_the_breach_streak(self):
        engine = AlertEngine([self.rule()])
        engine.observe_window("t", 0, mbps_window(0, 20))
        engine.observe_window("t", 0, mbps_window(1, 1))  # streak broken
        assert engine.observe_window("t", 0, mbps_window(2, 20)) == []
        assert engine.active_alerts("t") == []

    def test_clears_after_consecutive_calm_windows_only(self):
        engine = AlertEngine([self.rule()])
        engine.observe_window("t", 0, mbps_window(0, 20))
        engine.observe_window("t", 0, mbps_window(1, 20))  # raised
        assert engine.observe_window("t", 0, mbps_window(2, 1)) == []
        events = engine.observe_window("t", 0, mbps_window(3, 1))
        assert [e["event"] for e in events] == ["alert_clear"]
        assert engine.active_alerts("t") == []

    def test_band_between_thresholds_resets_both_streaks(self):
        engine = AlertEngine([self.rule()])
        engine.observe_window("t", 0, mbps_window(0, 20))
        engine.observe_window("t", 0, mbps_window(1, 20))  # raised
        engine.observe_window("t", 0, mbps_window(2, 1))   # one calm...
        engine.observe_window("t", 0, mbps_window(3, 7))   # ...band resets it
        assert engine.observe_window("t", 0, mbps_window(4, 1)) == []
        assert engine.active_alerts("t") == ["hot"]  # still raised

    def test_state_is_per_tenant(self):
        engine = AlertEngine([self.rule(raise_after=2)])
        engine.observe_window("a", 0, mbps_window(0, 20))
        # Tenant b's first breach must not ride tenant a's streak.
        assert engine.observe_window("b", 0, mbps_window(0, 20)) == []
        assert engine.observe_window("a", 0, mbps_window(1, 20)) != []
        assert engine.active_alerts("a") == ["hot"]
        assert engine.active_alerts("b") == []

    def test_tenant_scoped_rule_ignores_other_tenants(self):
        engine = AlertEngine([self.rule(raise_after=1, tenant="a")])
        assert engine.observe_window("b", 0, mbps_window(0, 20)) == []
        assert engine.observe_window("a", 0, mbps_window(0, 20)) != []


class TestMetrics:
    def test_retransmit_rate_raises_and_handles_zero_tcp(self):
        rule = AlertRule(name="loss", metric="retransmit_rate",
                         threshold=0.05, clear_threshold=0.05)
        engine = AlertEngine([rule])
        quiet = window(0)  # no tcp packets: rate defined as 0.0
        assert engine.observe_window("t", 0, quiet) == []
        lossy = window(1, tcp_packets=100, retransmits=10)
        events = engine.observe_window("t", 0, lossy)
        assert events[0]["metric"] == "retransmit_rate"
        assert events[0]["value"] == 0.1

    def test_conns_metric_sums_conn_starts(self):
        rule = AlertRule(name="surge", metric="conns", threshold=5.0,
                         clear_threshold=5.0)
        engine = AlertEngine([rule])
        surge = window(0, conn_starts={"http": 4, "dns": 3})
        assert engine.observe_window("t", 0, surge)[0]["value"] == 7.0

    def test_scan_verdict_becomes_alert_event(self):
        events = AlertEngine.observe_scanners("t", 2, [0x0A000005, 0x0A000001])
        assert events == [{
            "event": "alert_scan", "tenant": "t", "trace": 2,
            "sources": [0x0A000001, 0x0A000005], "count": 2,
        }]
        assert AlertEngine.observe_scanners("t", 2, []) == []


class TestConfigLoading:
    def test_loads_rules_with_defaults(self, tmp_path):
        config = tmp_path / "alerts.json"
        config.write_text(json.dumps({"rules": [
            {"name": "hot", "metric": "mbps", "threshold": 10,
             "clear_threshold": 5, "raise_after": 2},
            {"name": "loss", "metric": "retransmit_rate", "threshold": 0.05},
        ]}))
        rules = load_alert_rules(config)
        assert [r.name for r in rules] == ["hot", "loss"]
        assert rules[0].raise_after == 2 and rules[0].clear_after == 1
        # clear_threshold defaults to the threshold itself.
        assert rules[1].clear_threshold == 0.05

    def test_missing_file_names_the_path(self, tmp_path):
        with pytest.raises(ValueError, match="unreadable alert config"):
            load_alert_rules(tmp_path / "nope.json")

    def test_malformed_shapes_rejected(self, tmp_path):
        config = tmp_path / "alerts.json"
        config.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="rules"):
            load_alert_rules(config)
        config.write_text(json.dumps({"rules": [{"metric": "mbps"}]}))
        with pytest.raises(ValueError, match="malformed"):
            load_alert_rules(config)

    def test_bad_rule_error_names_the_rule(self, tmp_path):
        config = tmp_path / "alerts.json"
        config.write_text(json.dumps({"rules": [
            {"name": "weird", "metric": "jitter", "threshold": 1},
        ]}))
        with pytest.raises(ValueError, match="weird"):
            load_alert_rules(config)
