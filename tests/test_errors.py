"""Tests for the error-policy framework and analyzer isolation.

Covers the taxonomy/policy/budget primitives in
``repro.analysis.errors``, the engine-level circuit breakers that keep a
crashing application analyzer from aborting a study, and the
data-quality table that reports what ingestion had to tolerate.
"""

import pytest

from repro.analysis.engine import Analyzer, DatasetAnalyzer
from repro.analysis.errors import (
    AnalyzerFailure,
    CircuitBreaker,
    ErrorBudget,
    ErrorKind,
    ErrorPolicy,
    IngestionError,
    TraceError,
    TraceErrorLog,
    TraceQuarantined,
)
from repro.net.packet import CapturedPacket, make_udp_packet
from repro.report.quality import data_quality_table, render_data_quality


def _udp_packets(n=5):
    return [
        make_udp_packet(float(i), 1, 2, 3, 4, 1000 + i, 53, payload=b"q" * 16)
        for i in range(n)
    ]


class TestErrorPolicy:
    def test_coerce_accepts_values_and_members(self):
        assert ErrorPolicy.coerce("tolerant") is ErrorPolicy.TOLERANT
        assert ErrorPolicy.coerce("skip-trace") is ErrorPolicy.SKIP_TRACE
        assert ErrorPolicy.coerce(ErrorPolicy.STRICT) is ErrorPolicy.STRICT

    def test_coerce_rejects_unknown_with_choices(self):
        with pytest.raises(ValueError, match="strict.*tolerant.*skip-trace"):
            ErrorPolicy.coerce("lenient")


class TestIngestionError:
    def test_is_a_value_error(self):
        assert issubclass(IngestionError, ValueError)

    def test_message_names_kind_path_offset_detail(self):
        err = IngestionError(
            ErrorKind.TRUNCATED_BODY, "/tmp/t.pcap", offset=40, detail="7 of 60 bytes"
        )
        assert "truncated_body" in str(err)
        assert "/tmp/t.pcap" in str(err)
        assert "offset 40" in str(err)
        assert "7 of 60 bytes" in str(err)

    def test_offset_optional(self):
        err = IngestionError(ErrorKind.BAD_MAGIC, "x.pcap")
        assert "offset" not in str(err)


class TestErrorBudget:
    def test_absolute_cap(self):
        budget = ErrorBudget(max_errors=3, min_records=50)
        assert not budget.exceeded(3, 0)
        assert budget.exceeded(4, 0)

    def test_fraction_waits_for_min_records(self):
        budget = ErrorBudget(max_errors=1000, max_fraction=0.25, min_records=50)
        # 10 errors vs 10 clean would be 50% — but below min_records.
        assert not budget.exceeded(10, 10)
        assert budget.exceeded(30, 50)  # 37.5% of 80 records
        assert not budget.exceeded(10, 50)  # 16.7%


class TestTraceErrorLog:
    def test_strict_raises_immediately(self):
        log = TraceErrorLog(policy="strict", path="a.pcap")
        with pytest.raises(IngestionError) as excinfo:
            log.record(ErrorKind.RUNT_FRAME, offset=24, detail="2-byte frame")
        assert excinfo.value.kind is ErrorKind.RUNT_FRAME
        assert excinfo.value.path == "a.pcap"
        assert log.counts == {}  # strict does not accumulate

    def test_tolerant_accumulates_counts_and_samples(self):
        log = TraceErrorLog(policy="tolerant")
        for _ in range(3):
            log.record(ErrorKind.RUNT_FRAME)
        log.record(ErrorKind.DECODE_ERROR, detail="boom")
        assert log.counts == {"runt_frame": 3, "decode_error": 1}
        assert log.total == 4
        assert len(log.samples) == 4
        assert isinstance(log.samples[0], TraceError)
        assert not log.quarantined

    def test_sample_cap(self):
        log = TraceErrorLog(policy="tolerant", budget=ErrorBudget(max_errors=10**6))
        for _ in range(TraceErrorLog.SAMPLE_CAP + 15):
            log.record(ErrorKind.RUNT_FRAME)
        assert len(log.samples) == TraceErrorLog.SAMPLE_CAP
        assert log.total == TraceErrorLog.SAMPLE_CAP + 15

    def test_skip_trace_quarantines_on_first_defect(self):
        log = TraceErrorLog(policy="skip-trace", path="b.pcap")
        with pytest.raises(TraceQuarantined) as excinfo:
            log.record(ErrorKind.DECODE_ERROR)
        assert log.quarantined
        assert excinfo.value.path == "b.pcap"

    def test_fatal_quarantines_even_tolerant(self):
        log = TraceErrorLog(policy="tolerant")
        with pytest.raises(TraceQuarantined):
            log.record(ErrorKind.BAD_MAGIC, fatal=True)
        assert log.quarantined

    def test_budget_exhaustion_quarantines(self):
        log = TraceErrorLog(policy="tolerant", budget=ErrorBudget(max_errors=2))
        log.record(ErrorKind.RUNT_FRAME)
        log.record(ErrorKind.RUNT_FRAME)
        with pytest.raises(TraceQuarantined, match="error budget exceeded"):
            log.record(ErrorKind.RUNT_FRAME)
        assert log.quarantined


class TestCircuitBreaker:
    def test_opens_after_max_failures(self):
        breaker = CircuitBreaker("smtp", max_failures=3)
        assert not breaker.record_failure("on_udp", RuntimeError("a"))
        assert not breaker.record_failure("on_udp", RuntimeError("b"))
        assert breaker.record_failure("on_connection", RuntimeError("c"))
        assert breaker.open
        assert breaker.failures == 3
        assert "on_udp" in breaker.first_error and "'a'" in breaker.first_error
        assert "on_connection" in breaker.last_error

    def test_analyzer_failure_is_falsy(self):
        failure = AnalyzerFailure(name="smtp", failures=3, first_error="on_udp: x")
        assert not failure
        assert failure.disabled


class _CrashingAnalyzer(Analyzer):
    """Raises from on_udp on every datagram."""

    name = "crasher"

    def __init__(self):
        self.calls = 0

    def on_udp(self, record, from_orig, pkt):
        self.calls += 1
        raise RuntimeError("analyzer bug")

    def result(self):
        return {"calls": self.calls}


class _CountingAnalyzer(Analyzer):
    name = "counter"

    def __init__(self):
        self.datagrams = 0

    def on_udp(self, record, from_orig, pkt):
        self.datagrams += 1

    def result(self):
        return self.datagrams


class _BrokenResultAnalyzer(Analyzer):
    name = "broken-result"

    def result(self):
        raise RuntimeError("cannot summarize")


class TestAnalyzerIsolation:
    def test_crashing_analyzer_disabled_others_unaffected(self):
        crasher = _CrashingAnalyzer()
        counter = _CountingAnalyzer()
        engine = DatasetAnalyzer(
            "DX",
            analyzers=[crasher, counter],
            error_policy="tolerant",
            analyzer_max_failures=3,
        )
        engine.process_packets(_udp_packets(10))
        analysis = engine.finish()
        # The breaker opened after 3 failures; no further calls were made.
        assert crasher.calls == 3
        failure = analysis.analyzer_results["crasher"]
        assert isinstance(failure, AnalyzerFailure)
        assert failure.failures == 3
        assert "on_udp" in failure.first_error
        assert analysis.analyzer_errors == {"crasher": 3}
        # The healthy analyzer saw every datagram and reported normally.
        assert analysis.analyzer_results["counter"] == 10
        assert analysis.failed_analyzers() == {"crasher": failure}
        # Analyzer failures roll into the dataset error totals.
        assert analysis.error_totals()[ErrorKind.ANALYZER_ERROR.value] == 3

    def test_strict_reraises_analyzer_exception(self):
        engine = DatasetAnalyzer(
            "DX", analyzers=[_CrashingAnalyzer()], error_policy="strict"
        )
        with pytest.raises(RuntimeError, match="analyzer bug"):
            engine.process_packets(_udp_packets(3))

    def test_result_failure_recorded_not_raised(self):
        engine = DatasetAnalyzer(
            "DX", analyzers=[_BrokenResultAnalyzer()], error_policy="tolerant"
        )
        engine.process_packets(_udp_packets(3))
        analysis = engine.finish()
        failure = analysis.analyzer_results["broken-result"]
        assert isinstance(failure, AnalyzerFailure)
        assert "result" in failure.first_error

    def test_result_failure_raises_under_strict(self):
        engine = DatasetAnalyzer(
            "DX", analyzers=[_BrokenResultAnalyzer()], error_policy="strict"
        )
        engine.process_packets(_udp_packets(3))
        with pytest.raises(RuntimeError, match="cannot summarize"):
            engine.finish()


class TestEngineQuarantine:
    def test_budget_exceeded_quarantines_trace(self):
        """A trace that is mostly runts blows a small budget and comes
        back quarantined, with its connections withheld."""
        runts = [
            CapturedPacket(ts=float(i), data=b"\x00" * 4, wire_len=4)
            for i in range(10)
        ]
        engine = DatasetAnalyzer(
            "DX",
            error_policy="tolerant",
            error_budget=ErrorBudget(max_errors=4),
        )
        stats = engine.process_packets(runts + _udp_packets(5))
        assert stats.quarantined
        assert "error budget exceeded" in stats.quarantine_reason
        assert stats.errors[ErrorKind.RUNT_FRAME.value] == 5
        analysis = engine.finish()
        assert analysis.conns == []  # quarantined trace contributes nothing
        assert analysis.quarantined_traces() == [stats]

    def test_skip_trace_engine_quarantines_then_recovers(self):
        engine = DatasetAnalyzer("DX", error_policy="skip-trace")
        bad = [CapturedPacket(ts=0.0, data=b"\x00" * 4, wire_len=4)]
        stats = engine.process_packets(bad + _udp_packets(5), label="bad")
        assert stats.quarantined
        good = engine.process_packets(_udp_packets(5), label="good")
        assert not good.quarantined
        assert good.packets == 5

    def test_timestamp_regressions_counted_not_fatal(self):
        pkts = _udp_packets(5)
        pkts[2] = make_udp_packet(-10.0, 1, 2, 3, 4, 1002, 53, payload=b"q")
        engine = DatasetAnalyzer("DX", error_policy="tolerant")
        stats = engine.process_packets(pkts)
        assert stats.timestamp_regressions == 1
        assert stats.packets == 5
        assert stats.utilization is not None  # span covers the regression


class TestDataQualityReport:
    @pytest.fixture()
    def analyses(self):
        crasher = _CrashingAnalyzer()
        engine = DatasetAnalyzer(
            "D0", analyzers=[crasher], error_policy="tolerant"
        )
        runts = [CapturedPacket(ts=0.5, data=b"\x00" * 4, wire_len=4)]
        engine.process_packets(_udp_packets(8) + runts, label="t0")
        return {"D0": engine.finish()}

    def test_table_rows(self, analyses):
        table = data_quality_table(analyses)
        rendered = table.render()
        assert "Data quality" in rendered
        assert "error policy" in rendered
        assert "tolerant" in rendered
        assert "errors: runt_frame" in rendered
        assert "analyzers disabled" in rendered
        assert "crasher" in rendered

    def test_render_includes_quarantine_detail(self, tmp_path):
        path = tmp_path / "garbage.pcap"
        path.write_bytes(b"not a pcap at all" + b"\x00" * 32)
        engine = DatasetAnalyzer("D1", error_policy="skip-trace")
        stats = engine.process_pcap(path)
        assert stats.quarantined
        text = render_data_quality({"D1": engine.analysis})
        assert f"quarantined {path}" in text
        assert stats.quarantine_reason in text
