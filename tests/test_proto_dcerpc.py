"""Tests for repro.proto.dcerpc."""

import pytest

from repro.proto.dcerpc import (
    IFACE_EPMAPPER,
    IFACE_LSARPC,
    IFACE_NETLOGON,
    IFACE_SPOOLSS,
    OP_SPOOLSS_WRITEPRINTER,
    PDU_BIND,
    PDU_BIND_ACK,
    PDU_FAULT,
    PDU_REQUEST,
    PDU_RESPONSE,
    PIPE_INTERFACES,
    DcerpcPdu,
    function_label,
    parse_pdu_stream,
)


class TestPduRoundTrip:
    def test_request(self):
        pdu = DcerpcPdu(ptype=PDU_REQUEST, call_id=77, opnum=19, data=b"stub" * 10)
        back = DcerpcPdu.decode(pdu.encode())
        assert back.ptype == PDU_REQUEST
        assert back.call_id == 77
        assert back.opnum == 19
        assert back.data == b"stub" * 10

    def test_response(self):
        pdu = DcerpcPdu(ptype=PDU_RESPONSE, opnum=3, data=b"r" * 64)
        back = DcerpcPdu.decode(pdu.encode())
        assert back.ptype == PDU_RESPONSE
        assert back.data == b"r" * 64

    def test_bind_interface(self):
        for iface in (IFACE_SPOOLSS, IFACE_NETLOGON, IFACE_LSARPC, IFACE_EPMAPPER):
            pdu = DcerpcPdu(ptype=PDU_BIND, interface=iface)
            assert DcerpcPdu.decode(pdu.encode()).interface == iface

    def test_bind_ack(self):
        pdu = DcerpcPdu(ptype=PDU_BIND_ACK, interface=IFACE_SPOOLSS)
        assert DcerpcPdu.decode(pdu.encode()).interface == IFACE_SPOOLSS

    def test_fault(self):
        pdu = DcerpcPdu(ptype=PDU_FAULT, opnum=2)
        assert DcerpcPdu.decode(pdu.encode()).ptype == PDU_FAULT

    def test_frag_len_consistent(self):
        pdu = DcerpcPdu(ptype=PDU_REQUEST, opnum=1, data=b"x" * 100)
        assert pdu.frag_len == len(pdu.encode())

    def test_rejects_wrong_version(self):
        data = bytearray(DcerpcPdu(ptype=PDU_REQUEST).encode())
        data[0] = 4
        with pytest.raises(ValueError):
            DcerpcPdu.decode(bytes(data))

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            DcerpcPdu.decode(b"\x05\x00")


class TestStreamParsing:
    def test_back_to_back_pdus(self):
        stream = (
            DcerpcPdu(ptype=PDU_BIND, interface=IFACE_SPOOLSS).encode()
            + DcerpcPdu(ptype=PDU_BIND_ACK, interface=IFACE_SPOOLSS).encode()
            + DcerpcPdu(ptype=PDU_REQUEST, opnum=19, data=b"q").encode()
            + DcerpcPdu(ptype=PDU_RESPONSE, opnum=19, data=b"s").encode()
        )
        pdus = parse_pdu_stream(stream)
        assert [p.ptype for p in pdus] == [PDU_BIND, PDU_BIND_ACK, PDU_REQUEST, PDU_RESPONSE]

    def test_stops_at_truncation(self):
        stream = DcerpcPdu(ptype=PDU_REQUEST, opnum=1, data=b"x" * 100).encode()
        pdus = parse_pdu_stream(stream[:-50])
        assert pdus == []

    def test_empty(self):
        assert parse_pdu_stream(b"") == []


class TestFunctionLabels:
    def test_writeprinter(self):
        assert function_label(IFACE_SPOOLSS, OP_SPOOLSS_WRITEPRINTER) == "Spoolss/WritePrinter"

    def test_spoolss_other(self):
        assert function_label(IFACE_SPOOLSS, 1) == "Spoolss/other"

    def test_auth_interfaces(self):
        assert function_label(IFACE_NETLOGON, 2) == "NetLogon"
        assert function_label(IFACE_LSARPC, 15) == "LsaRPC"

    def test_unknown(self):
        assert function_label(None, 5) == "Other"
        assert function_label(IFACE_EPMAPPER, 3) == "Other"

    def test_pipe_interface_map(self):
        assert PIPE_INTERFACES["\\PIPE\\SPOOLSS"] == IFACE_SPOOLSS
        assert PIPE_INTERFACES["\\PIPE\\NETLOGON"] == IFACE_NETLOGON
