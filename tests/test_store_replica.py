"""Replicated tiered store: survive the loss of a whole root.

The acceptance gates from the replication work live here: with
``replicas=2`` on three roots, hard-killing any single root mid-load
leaves every query answer — and the service's store-state token — byte
identical; ``repair --replicas`` restores full redundancy on the same
content addresses; and the per-root circuit breakers keep a dead root
from slowing every read.  The 8-thread test kills and repairs a root
*while* readers are running, which is the whole point of the feature.
"""

from __future__ import annotations

import shutil
import threading

import pytest

from repro.chaos import FaultKind, FaultPlane, FaultRule, active
from repro.service.app import store_state_token
from repro.store import ConnFilter, ConnStore, StoreQuery, StoreScrubber
from repro.store.query import GROUP_DIMENSIONS
from repro.store.shard import ShardError, encode_shard
from repro.store.tier import (
    BUCKETS,
    IncrementalScrubber,
    PlacementManifest,
    init_tier,
    open_store,
)
from repro.store.tier.health import HealthTracker

_THREADS = 8


def _snapshot(query: StoreQuery) -> dict:
    result: dict = {"datasets": query.datasets()}
    for by in GROUP_DIMENSIONS:
        result[f"agg-{by}"] = [
            (row.group, row.conns, row.bytes, row.pkts)
            for row in query.aggregate(ConnFilter(), by=by)
        ]
    result["count"] = query.count(ConnFilter(proto="tcp", min_bytes=100))
    result["table"] = query.table(ConnFilter(), by="category").render()
    return result


def _shard(text: str) -> bytes:
    """Valid RCS1 bytes (scrub decodes frames, not just hashes)."""
    return encode_shard(1, {"body": text.encode() * 7})


def replica_store(tmp_path, count=32):
    """A fresh 3-root R=2 store with ``count`` objects written through
    the replicated write path."""
    store = init_tier(
        tmp_path / "store",
        roots=(str(tmp_path / "root-b"), str(tmp_path / "root-c")),
        replicas=2,
    )
    bodies = {}
    for index in range(count):
        data = _shard(f"replica-body-{index:04d}")
        bodies[store.put_object(data)] = data
    return store, bodies


@pytest.fixture()
def replicated_study(store_study, tmp_path):
    """The shared study store as a 3-root R=2 tier at full redundancy."""
    _, root = store_study
    shutil.copytree(root, tmp_path / "store")
    store = init_tier(
        tmp_path / "store",
        roots=(str(tmp_path / "root-b"), str(tmp_path / "root-c")),
        replicas=2,
    )
    store.rebalance()
    report = store.repair_replicas()  # pre-existing objects start at 1 copy
    assert report.ok
    assert StoreScrubber(store).scrub(quarantine=False).ok
    return store


# -- placement ----------------------------------------------------------------


def test_replica_order_is_deterministic_and_distinct():
    placement = PlacementManifest(roots=[".", "b", "c", "d"], replicas=3)
    for bucket in BUCKETS:
        order = placement.replica_order(bucket)
        assert sorted(order) == [0, 1, 2, 3]  # a permutation of every root
        assert order[0] == placement.active_index(bucket)
        indices = placement.replica_indices(bucket)
        assert indices == order[:3]
        assert placement.replica_indices(bucket) == indices  # stable


def test_effective_replicas_is_capped_by_root_count():
    placement = PlacementManifest(roots=[".", "b"], replicas=5)
    assert placement.effective_replicas() == 2
    assert PlacementManifest(roots=["."]).effective_replicas() == 1


def test_replicas_round_trips_through_tier_json(tmp_path):
    store, _ = replica_store(tmp_path, count=1)
    loaded = PlacementManifest.load(store.root)
    assert loaded.replicas == 2
    # Pre-replication manifests load as R=1.
    assert PlacementManifest.from_payload(
        {"schema": 1, "roots": ["."], "assign": loaded.assign}
    ).replicas == 1


def test_init_tier_rejects_zero_replicas(tmp_path):
    with pytest.raises(ValueError):
        init_tier(tmp_path / "store", replicas=0)


# -- replicated writes and reads ----------------------------------------------


def test_put_object_writes_full_replica_set(tmp_path):
    store, bodies = replica_store(tmp_path)
    for digest in bodies:
        paths = store.replica_paths(digest)
        assert len(paths) == 2
        roots = {index for index, _ in paths}
        assert len(roots) == 2  # two *distinct* roots
        for _, path in paths:
            assert path.exists()
    assert len(store.repair_queue) == 0


def test_read_survives_loss_of_any_single_root(tmp_path):
    store, bodies = replica_store(tmp_path)
    for victim in range(1, 3):
        shutil.rmtree(store.roots()[victim])
        fresh = open_store(store.root)  # new process: breakers closed
        for digest, data in bodies.items():
            assert fresh.get_object(digest) == data
        fresh.repair_replicas()  # restore before killing the next root


def test_read_repair_restores_missing_copy_on_same_address(tmp_path):
    store, bodies = replica_store(tmp_path, count=8)
    digest = next(iter(bodies))
    index, path = store.replica_paths(digest)[0]
    path.unlink()
    store.hot.invalidate(digest)
    before = {p.stem for p in store._object_files()}
    assert store.get_object(digest) == bodies[digest]  # the repairing read
    assert path.exists()  # copy is back
    assert {p.stem for p in store._object_files()} == before  # same addresses


def test_repair_replicas_sweep_finds_unqueued_deficits(tmp_path):
    store, bodies = replica_store(tmp_path, count=12)
    # Delete one copy of every object behind the store's back — no
    # queue entries exist, only the sweep can see the damage.
    for digest in bodies:
        store.replica_paths(digest)[1][1].unlink()
    report = store.repair_replicas()
    assert report.ok
    assert report.objects_restored == len(bodies)
    assert report.copies_written == len(bodies)
    for digest in bodies:
        assert all(path.exists() for _, path in store.replica_paths(digest))


# -- circuit breaker ----------------------------------------------------------


def test_breaker_opens_after_threshold_and_probes_after_cooldown():
    clock = [0.0]
    tracker = HealthTracker(
        2, failure_threshold=3, cooldown_s=10.0, clock=lambda: clock[0]
    )
    for _ in range(2):
        tracker.record_failure(1)
    assert tracker.available(1)  # two failures: still closed
    tracker.record_failure(1)
    assert tracker.is_open(1)
    assert not tracker.available(1)  # open: reads skip it
    clock[0] = 10.0
    assert tracker.available(1)  # the half-open probe
    assert not tracker.available(1)  # only ONE probe gets through
    tracker.record_failure(1)  # probe failed: open again
    assert tracker.is_open(1)
    clock[0] = 20.0
    assert tracker.available(1)
    tracker.record_ok(1)  # probe succeeded: closed
    assert tracker.available(1) and tracker.available(1)


def test_chaos_root_down_trips_breaker_and_reads_keep_serving(tmp_path):
    # Every bucket's primary is root 0 here (no rebalance has run), so
    # injecting root_down on root 0 guarantees reads actually meet it.
    store, bodies = replica_store(tmp_path)
    victim = str(store.roots()[0])
    plane = FaultPlane(
        rules=[
            FaultRule(
                kind=FaultKind.ROOT_DOWN, path=f"{victim}*", limit=None
            )
        ]
    )
    with active(plane):
        for digest, data in bodies.items():
            store.hot.invalidate(digest)
            assert store.get_object(digest) == data  # secondary serves
    assert store.health.is_open(0)  # the dead root was learned
    assert not store.health.is_open(1)
    assert not store.health.is_open(2)


def test_chaos_flaky_root_reads_survive_eio(tmp_path):
    store, bodies = replica_store(tmp_path)
    victim = str(store.roots()[0])  # the root every read tries first
    plane = FaultPlane(
        seed=11,
        rules=[
            FaultRule(
                kind=FaultKind.FLAKY_ROOT, op="read",
                path=f"{victim}*", rate=1.0, limit=None,
            )
        ],
    )
    with active(plane):
        for digest, data in bodies.items():
            store.hot.invalidate(digest)
            assert store.get_object(digest) == data
    assert store.health.is_open(0)


def test_writes_reroute_around_a_down_root_and_enqueue_repair(tmp_path):
    store, _ = replica_store(tmp_path, count=4)
    victim = str(store.roots()[1])
    plane = FaultPlane(
        rules=[
            FaultRule(
                kind=FaultKind.ROOT_DOWN, path=f"{victim}*", limit=None
            )
        ]
    )
    new = {}
    with active(plane):
        for index in range(16):
            data = _shard(f"reroute-body-{index:04d}")
            new[store.put_object(data)] = data
    routed_to_1 = [
        digest
        for digest in new
        if any(i == 1 for i, _ in store.replica_paths(digest))
    ]
    assert routed_to_1, "some bucket must map a replica onto the dead root"
    for digest, data in new.items():
        # Two live copies exist even though one replica root was down.
        copies = [
            path
            for path in store._candidate_paths(digest)
            if path.exists()
        ]
        assert len(copies) >= 2
        store.hot.invalidate(digest)
        assert store.get_object(digest) == data
    queued_objects, _ = store.repair_queue.snapshot()
    assert set(routed_to_1) <= set(queued_objects)
    # Chaos lifted: repair drains the queue back to the strict set.
    report = store.repair_replicas()
    assert report.ok
    assert len(store.repair_queue) == 0
    for digest in routed_to_1:
        assert all(path.exists() for _, path in store.replica_paths(digest))


# -- tier status --------------------------------------------------------------


def test_tier_status_reports_a_missing_root_as_down(tmp_path):
    store, _ = replica_store(tmp_path)
    shutil.rmtree(store.roots()[1])
    status = store.tier_status()  # must not raise
    assert status["roots"][1]["status"] == "down"
    assert status["roots"][1]["objects"] == 0
    assert status["roots"][0]["status"] == "ok"
    assert status["replicas"] == 2
    assert status["effective_replicas"] == 2
    assert "under_replicated" in status
    for entry in status["roots"]:
        assert entry["health"]["state"] in ("closed", "open", "half_open")


# -- scrub / repair integration -----------------------------------------------


def test_scrub_reports_replica_deficit_and_repair_clears_it(tmp_path):
    _, root = tmp_path, tmp_path / "flat"
    flat = ConnStore(root)
    bodies = {}
    for index in range(10):
        data = _shard(f"late-replica-{index:04d}")
        bodies[flat.put_object(data)] = data
    # Raise an existing R=1 store to R=2: everything starts at 1 copy.
    store = init_tier(root, roots=(str(tmp_path / "root-b"),), replicas=2)
    report = StoreScrubber(store).scrub(quarantine=False)
    assert not report.ok
    assert report.replica_target == 2
    assert set(report.under_replicated) == set(bodies)
    assert all(count == 1 for count in report.under_replicated.values())
    assert store.repair_replicas().ok
    healed = StoreScrubber(store).scrub(quarantine=False)
    assert healed.ok
    assert healed.under_replicated == {}


def test_incremental_scrub_counts_replicas_across_step_boundaries(tmp_path):
    store, bodies = replica_store(tmp_path, count=12)
    victim = next(iter(bodies))
    store.replica_paths(victim)[1][1].unlink()
    scrubber = IncrementalScrubber(store)
    # budget=1 forces the streaming counter to straddle every boundary.
    cursor = scrubber.run(budget=1, quarantine=False)
    report = scrubber.report(cursor)
    assert report.replica_target == 2
    assert report.under_replicated == {victim: 1}
    assert not report.ok


def test_quarantine_invalidates_hot_cache_entry(tmp_path):
    store, bodies = replica_store(tmp_path, count=4)
    digest = next(iter(bodies))
    assert store.get_object(digest) == bodies[digest]  # warm the hot tier
    for _, path in store.replica_paths(digest):
        path.write_bytes(b"rotten bytes that hash elsewhere")
    report = StoreScrubber(store).scrub()
    assert report.quarantined >= 2
    # The regression this guards: without invalidation the hot tier
    # would keep serving bytes the store just disowned.
    with pytest.raises(ShardError):
        store.get_object(digest)


# -- manifest mirroring -------------------------------------------------------


def test_manifest_mirrors_exist_and_never_perturb_the_state_token(
    replicated_study,
):
    store = replicated_study
    token = store_state_token(store.root)
    keys = [path.stem for path in store.manifests_dir.glob("*.json")]
    assert keys
    mirrored = 0
    for key in keys:
        for _, mirror in store.mirror_paths(key):
            assert mirror.exists()
            mirrored += 1
    assert mirrored  # R=2 means every manifest has one mirror
    # Mirrors live outside the primary manifest listing: same token.
    assert store_state_token(store.root) == token


def test_lookup_falls_back_to_a_mirror_when_primary_is_lost(
    replicated_study,
):
    store = replicated_study
    manifest = next(iter(store.manifests()))
    key = manifest["key"]
    (store.manifests_dir / f"{key}.json").unlink()
    found = store.lookup(key)
    assert found is not None
    assert found["key"] == key
    # Repair restores the primary from the mirror, byte-identically.
    assert store.repair_replicas().ok
    assert (store.manifests_dir / f"{key}.json").exists()
    assert store.lookup(key) == found


def test_gc_keeps_disaster_mirrors_but_sweeps_retired_checkpoints(
    replicated_study,
):
    store = replicated_study
    manifest = next(iter(store.manifests()))
    key = manifest["key"]
    primary = store.manifests_dir / f"{key}.json"
    primary.unlink()  # simulated primary-root damage
    report = store.gc()
    for _, mirror in store.mirror_paths(key):
        assert mirror.exists(), "gc must not eat a disaster copy"
    # And the mirror still pins the objects repair needs.
    assert manifest["dataset_shard"] in store.referenced_objects()
    assert store.repair_replicas().ok
    assert primary.exists()
    assert report.orphan_mirrors == 0


# -- the headline: kill a root mid-load ---------------------------------------


def test_killing_one_root_changes_no_answer_and_repair_restores(
    replicated_study,
):
    store = replicated_study
    healthy = _snapshot(StoreQuery(store))
    token = store_state_token(store.root)
    shutil.rmtree(store.roots()[1])
    fresh = open_store(store.root)
    assert _snapshot(StoreQuery(fresh)) == healthy
    assert store_state_token(fresh.root) == token
    report = fresh.repair_replicas()
    assert report.ok
    assert StoreScrubber(fresh).scrub(quarantine=False).ok
    assert _snapshot(StoreQuery(fresh)) == healthy
    assert store_state_token(fresh.root) == token


def test_eight_threads_read_identically_while_root_dies_and_heals(
    replicated_study,
):
    store = replicated_study
    healthy = _snapshot(StoreQuery(store))
    results: list[list[dict]] = [[] for _ in range(_THREADS)]
    errors: list[BaseException] = []
    start = threading.Barrier(_THREADS + 1)
    stop = threading.Event()

    def reader(slot: int) -> None:
        try:
            start.wait(timeout=30)
            query = StoreQuery(store)
            while not stop.is_set():
                results[slot].append(_snapshot(query))
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=reader, args=(slot,))
        for slot in range(_THREADS)
    ]
    for thread in threads:
        thread.start()
    start.wait(timeout=30)
    try:
        shutil.rmtree(store.roots()[1])  # hard-kill mid-load
        assert store.repair_replicas().ok  # and repair mid-flight
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
    assert not errors, errors
    for slot in range(_THREADS):
        assert results[slot], "every reader must complete at least one pass"
        for snapshot in results[slot]:
            assert snapshot == healthy
    assert StoreScrubber(store).scrub(quarantine=False).ok


# -- unreplicated stores are untouched ----------------------------------------


def test_r1_tier_writes_no_mirrors_and_no_queue(tmp_path):
    store = init_tier(
        tmp_path / "store", roots=(str(tmp_path / "root-b"),), replicas=1
    )
    digest = store.put_object(_shard("single-copy-body"))
    copies = [p for p in store._candidate_paths(digest) if p.exists()]
    assert len(copies) == 1
    assert store.manifest_dirs() == [store.manifests_dir]
    assert len(store.repair_queue) == 0
    status = store.tier_status()
    assert status["replicas"] == 1
    report = StoreScrubber(store).scrub(quarantine=False)
    assert report.replica_target == 1
    assert report.under_replicated == {}
