"""Unit tests for the service response cache and its store-state token."""

from __future__ import annotations

import threading

from repro.service.cache import CachedResponse, ResponseCache, store_state_token


def _resp(marker: bytes = b"{}") -> CachedResponse:
    return CachedResponse(200, "application/json", marker)


def test_hit_miss_counters_and_lru_refresh():
    cache = ResponseCache(max_entries=2)
    key_a = ResponseCache.key_for("/a", "", "tok")
    key_b = ResponseCache.key_for("/b", "", "tok")
    key_c = ResponseCache.key_for("/c", "", "tok")
    assert cache.get(key_a) is None
    cache.put(key_a, _resp(b"a"))
    cache.put(key_b, _resp(b"b"))
    assert cache.get(key_a).body == b"a"  # refreshes a's LRU position
    cache.put(key_c, _resp(b"c"))  # evicts b, the least recently used
    assert cache.get(key_b) is None
    assert cache.get(key_a) is not None
    stats = cache.stats()
    assert stats["evictions"] == 1
    assert stats["entries"] == 2
    assert stats["hits"] == 2 and stats["misses"] == 2


def test_key_for_separates_query_and_state():
    base = ResponseCache.key_for("/query", "by=proto", "tok1")
    assert ResponseCache.key_for("/query", "by=proto", "tok1") == base
    assert ResponseCache.key_for("/query", "by=app", "tok1") != base
    assert ResponseCache.key_for("/query", "by=proto", "tok2") != base
    assert ResponseCache.key_for("/cdf", "by=proto", "tok1") != base


def test_store_state_token_tracks_manifest_set(tmp_path):
    token_empty = store_state_token(tmp_path)
    assert token_empty == store_state_token(tmp_path)  # deterministic

    manifests = tmp_path / "manifests"
    manifests.mkdir()
    (manifests / "aa.json").write_text("{}")
    token_one = store_state_token(tmp_path)
    assert token_one != token_empty

    # Content addresses are immutable: the token depends only on the
    # key *set*, never on file contents.
    (manifests / "aa.json").write_text('{"different": true}')
    assert store_state_token(tmp_path) == token_one

    (manifests / "bb.json").write_text("{}")
    assert store_state_token(tmp_path) != token_one


def test_cache_thread_safety_under_contention():
    cache = ResponseCache(max_entries=16)
    keys = [ResponseCache.key_for(f"/p{i}", "", "tok") for i in range(64)]

    def worker(seed: int) -> None:
        for i in range(300):
            key = keys[(seed * 7 + i) % len(keys)]
            if cache.get(key) is None:
                cache.put(key, _resp(str(i).encode()))

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats = cache.stats()
    assert stats["entries"] <= 16
    assert stats["hits"] + stats["misses"] == 8 * 300
