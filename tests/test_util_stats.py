"""Tests for repro.util.stats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import Cdf, fraction_table, geometric_mean, summarize


class TestCdf:
    def test_basic_evaluation(self):
        cdf = Cdf([1, 2, 3, 4])
        assert cdf(0) == 0.0
        assert cdf(1) == 0.25
        assert cdf(2.5) == 0.5
        assert cdf(4) == 1.0
        assert cdf(100) == 1.0

    def test_empty(self):
        cdf = Cdf([])
        assert len(cdf) == 0
        assert cdf(10) == 0.0

    def test_median_even_sample(self):
        assert Cdf([1, 2, 3, 4]).median == 3

    def test_quantile_bounds(self):
        cdf = Cdf([5, 6, 7])
        assert cdf.quantile(0.0) == 5
        assert cdf.quantile(1.0) == 7

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            Cdf([1]).quantile(1.5)
        with pytest.raises(ValueError):
            Cdf([]).quantile(0.5)

    def test_min_max(self):
        cdf = Cdf([3, 1, 2])
        assert cdf.min == 1
        assert cdf.max == 3

    def test_min_of_empty_raises(self):
        with pytest.raises(ValueError):
            Cdf([]).min

    def test_points_monotone(self):
        cdf = Cdf(range(1000))
        points = cdf.points(max_points=50)
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0

    def test_points_downsampled(self):
        assert len(Cdf(range(10_000)).points(max_points=100)) <= 102

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e9, max_value=1e9), min_size=1))
    def test_cdf_is_monotone_nondecreasing(self, samples):
        cdf = Cdf(samples)
        lo, hi = min(samples), max(samples)
        assert cdf(lo - 1) <= cdf(lo) <= cdf(hi) == 1.0

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1))
    def test_quantiles_within_sample_range(self, samples):
        cdf = Cdf(samples)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert min(samples) <= cdf.quantile(q) <= max(samples)


class TestSummarize:
    def test_values(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.n == 5
        assert summary.mean == 3
        assert summary.minimum == 1
        assert summary.maximum == 5
        assert summary.median == 3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestFractionTable:
    def test_normalizes(self):
        fracs = fraction_table({"a": 1, "b": 3})
        assert fracs == {"a": 0.25, "b": 0.75}

    def test_zero_total(self):
        assert fraction_table({"a": 0, "b": 0}) == {"a": 0.0, "b": 0.0}

    def test_empty(self):
        assert fraction_table({}) == {}


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1, 0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestStreamingMoments:
    def _both(self, samples):
        from repro.util.stats import StreamingMoments

        moments = StreamingMoments()
        for x in samples:
            moments.add(x)
        return moments, summarize(samples)

    @staticmethod
    def _two_pass_stddev(samples):
        mean = sum(samples) / len(samples)
        return (sum((x - mean) ** 2 for x in samples) / len(samples)) ** 0.5

    def test_matches_batch_summarize(self):
        samples = [3.0, 1.0, 4.0, 1.5, 9.2, 2.6, 5.3]
        moments, summary = self._both(samples)
        assert moments.n == summary.n
        assert moments.mean == pytest.approx(summary.mean)
        assert moments.stddev == pytest.approx(self._two_pass_stddev(samples))
        assert moments.minimum == summary.minimum
        assert moments.maximum == summary.maximum

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_welford_agrees_with_two_pass(self, samples):
        moments, summary = self._both(samples)
        assert moments.mean == pytest.approx(summary.mean, abs=1e-6)
        assert moments.stddev == pytest.approx(
            self._two_pass_stddev(samples), abs=1e-4
        )

    def test_merge_equals_single_stream(self):
        from repro.util.stats import StreamingMoments

        left, right, whole = StreamingMoments(), StreamingMoments(), StreamingMoments()
        samples = [1.0, 2.5, -3.0, 7.75, 0.5, 12.0]
        for x in samples[:3]:
            left.add(x)
            whole.add(x)
        for x in samples[3:]:
            right.add(x)
            whole.add(x)
        left.merge(right)
        assert left.n == whole.n
        assert left.mean == pytest.approx(whole.mean)
        assert left.variance == pytest.approx(whole.variance)

    def test_snapshot_restore_round_trip(self):
        from repro.util.stats import StreamingMoments

        moments = StreamingMoments()
        for x in (5.0, 1.0, 8.0):
            moments.add(x)
        restored = StreamingMoments.restore(moments.snapshot())
        restored.add(2.0)
        moments.add(2.0)
        assert restored.snapshot() == moments.snapshot()


class TestP2Quantile:
    def test_small_samples_are_exact(self):
        from repro.util.stats import P2Quantile

        estimator = P2Quantile(0.5)
        for x in (9.0, 1.0, 5.0):
            estimator.add(x)
        assert estimator.value == 5.0

    def test_rejects_degenerate_quantile(self):
        from repro.util.stats import P2Quantile

        with pytest.raises(ValueError):
            P2Quantile(0.0)

    def test_estimate_tracks_exact_quantile(self):
        from repro.util.stats import Cdf, P2Quantile

        import random as random_module

        rng = random_module.Random(11)
        samples = [rng.gauss(50.0, 10.0) for _ in range(5000)]
        for q in (0.5, 0.95):
            estimator = P2Quantile(q)
            for x in samples:
                estimator.add(x)
            exact = Cdf(samples).quantile(q)
            assert estimator.value == pytest.approx(exact, rel=0.05)

    def test_snapshot_restore_round_trip(self):
        from repro.util.stats import P2Quantile

        estimator = P2Quantile(0.9)
        for x in range(100):
            estimator.add(float(x))
        restored = P2Quantile.restore(estimator.snapshot())
        for x in (3.5, 99.5):
            estimator.add(x)
            restored.add(x)
        assert restored.value == estimator.value
