"""Tests for repro.util.stats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import Cdf, fraction_table, geometric_mean, summarize


class TestCdf:
    def test_basic_evaluation(self):
        cdf = Cdf([1, 2, 3, 4])
        assert cdf(0) == 0.0
        assert cdf(1) == 0.25
        assert cdf(2.5) == 0.5
        assert cdf(4) == 1.0
        assert cdf(100) == 1.0

    def test_empty(self):
        cdf = Cdf([])
        assert len(cdf) == 0
        assert cdf(10) == 0.0

    def test_median_even_sample(self):
        assert Cdf([1, 2, 3, 4]).median == 3

    def test_quantile_bounds(self):
        cdf = Cdf([5, 6, 7])
        assert cdf.quantile(0.0) == 5
        assert cdf.quantile(1.0) == 7

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            Cdf([1]).quantile(1.5)
        with pytest.raises(ValueError):
            Cdf([]).quantile(0.5)

    def test_min_max(self):
        cdf = Cdf([3, 1, 2])
        assert cdf.min == 1
        assert cdf.max == 3

    def test_min_of_empty_raises(self):
        with pytest.raises(ValueError):
            Cdf([]).min

    def test_points_monotone(self):
        cdf = Cdf(range(1000))
        points = cdf.points(max_points=50)
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0

    def test_points_downsampled(self):
        assert len(Cdf(range(10_000)).points(max_points=100)) <= 102

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e9, max_value=1e9), min_size=1))
    def test_cdf_is_monotone_nondecreasing(self, samples):
        cdf = Cdf(samples)
        lo, hi = min(samples), max(samples)
        assert cdf(lo - 1) <= cdf(lo) <= cdf(hi) == 1.0

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1))
    def test_quantiles_within_sample_range(self, samples):
        cdf = Cdf(samples)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert min(samples) <= cdf.quantile(q) <= max(samples)


class TestSummarize:
    def test_values(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.n == 5
        assert summary.mean == 3
        assert summary.minimum == 1
        assert summary.maximum == 5
        assert summary.median == 3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestFractionTable:
    def test_normalizes(self):
        fracs = fraction_table({"a": 1, "b": 3})
        assert fracs == {"a": 0.25, "b": 0.75}

    def test_zero_total(self):
        assert fraction_table({"a": 0, "b": 0}) == {"a": 0.0, "b": 0.0}

    def test_empty(self):
        assert fraction_table({}) == {}


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1, 0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
