"""The streaming engine wired through the study pipeline and the CLI.

The acceptance bar: ``engine="stream"`` renders byte-identical tables
and figures to the batch engine at every worker count; parity-default
streaming runs share the batch engine's cache entries while turned-down
eviction knobs fork the key; bounded-table degradation surfaces as
typed data-quality rows instead of errors; and the ``stream``
subcommand exposes all of it with live window narration on stderr.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core.cli import main
from repro.core.study import run_study
from repro.store.cache import ConnStore
from repro.stream.engine import StreamConfig

_PARAMS = dict(seed=7, scale=0.004, datasets=("D0", "D1"), max_windows=2)
_TABLES = (1, 2, 3, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)


def _study_digest(results) -> str:
    """One digest over every rendered table and figure of a run."""
    digest = hashlib.sha256()
    for number in _TABLES:
        digest.update(results.render_table(number).encode())
    for number in range(1, 11):
        digest.update(results.render_figure(number).encode())
    digest.update(results.render_data_quality().encode())
    return digest.hexdigest()


@pytest.fixture(scope="module")
def batch_digest():
    return _study_digest(run_study(**_PARAMS))


class TestDigestParity:
    def test_stream_matches_batch_at_jobs_1_2_4(self, batch_digest):
        for jobs in (1, 2, 4):
            streamed = run_study(engine="stream", jobs=jobs, **_PARAMS)
            assert _study_digest(streamed) == batch_digest, f"jobs={jobs}"

    def test_checkpointed_stream_matches_batch(self, batch_digest, tmp_path):
        streamed = run_study(
            engine="stream",
            stream=StreamConfig(checkpoint_every=300),
            store_dir=str(tmp_path),
            **_PARAMS,
        )
        assert _study_digest(streamed) == batch_digest
        # Completed traces retire their checkpoint manifests.
        assert list(ConnStore(tmp_path).checkpoints()) == []

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_study(engine="turbo", **_PARAMS)


class TestCacheSharing:
    def test_parity_stream_run_feeds_batch_cache(self, batch_digest, tmp_path):
        run_study(engine="stream", store_dir=str(tmp_path), **_PARAMS)
        store = ConnStore(tmp_path)
        manifests_after_stream = len(list(store.manifests()))
        warm = run_study(store_dir=str(tmp_path), **_PARAMS)  # batch
        assert _study_digest(warm) == batch_digest
        # The batch run was served from the stream run's shards: no new
        # manifests were written.
        assert len(list(store.manifests())) == manifests_after_stream

    def test_non_parity_knobs_fork_the_cache_key(self, tmp_path):
        run_study(engine="stream", store_dir=str(tmp_path), **_PARAMS)
        store = ConnStore(tmp_path)
        before = len(list(store.manifests()))
        run_study(
            engine="stream",
            stream=StreamConfig(max_flows=4),
            store_dir=str(tmp_path),
            **_PARAMS,
        )
        assert len(list(store.manifests())) > before


class TestDegradation:
    def test_tiny_flow_table_degrades_to_quality_rows(self):
        results = run_study(
            engine="stream", stream=StreamConfig(max_flows=4), **_PARAMS
        )
        totals = {
            name: analysis.error_totals()
            for name, analysis in results.analyses.items()
        }
        assert any(t.get("flow_overflow", 0) > 0 for t in totals.values())
        rendered = results.render_data_quality()
        assert "errors: flow_overflow" in rendered
        assert "errors: early_eviction" in rendered

    def test_overflow_never_raises_under_strict(self):
        # error_policy defaults to strict in _PARAMS-style runs: the
        # overflow counters must not consume the error budget.
        results = run_study(
            engine="stream",
            stream=StreamConfig(max_flows=2),
            error_policy="strict",
            **_PARAMS,
        )
        assert not results.unit_failures
        assert all(not a.quarantined_traces() for a in results.analyses.values())


class TestStreamCli:
    def test_stream_subcommand_renders_tables(self, capsys):
        code = main(
            [
                "stream",
                "--seed", "7", "--scale", "0.004",
                "--datasets", "D0",
                "--max-windows", "1",
                "--tables", "2",
                "--figures",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Table 2" in captured.out

    def test_stream_subcommand_matches_batch_stdout(self, capsys):
        flags = [
            "--seed", "7", "--scale", "0.004",
            "--datasets", "D0",
            "--max-windows", "1",
            "--tables", "2", "3",
            "--figures", "2",
        ]
        main(flags)
        batch_out = capsys.readouterr().out
        main(["stream", *flags])
        stream_out = capsys.readouterr().out
        assert stream_out == batch_out

    def test_progress_narrates_windows_on_stderr(self, capsys):
        code = main(
            [
                "stream",
                "--seed", "7", "--scale", "0.004",
                "--datasets", "D0",
                "--max-windows", "1",
                "--window", "60",
                "--tables", "2",
                "--figures",
                "--progress",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "[stream] window" in captured.err
        assert "[stream]" not in captured.out

    def test_engine_flag_on_main_command(self, capsys):
        code = main(
            [
                "--engine", "stream",
                "--seed", "7", "--scale", "0.004",
                "--datasets", "D0",
                "--max-windows", "1",
                "--tables", "2",
                "--figures",
            ]
        )
        assert code == 0
        assert "Table 2" in capsys.readouterr().out

    def test_checkpoint_flags_reach_the_engine(self, tmp_path, capsys):
        code = main(
            [
                "stream",
                "--seed", "7", "--scale", "0.004",
                "--datasets", "D0",
                "--max-windows", "1",
                "--store-dir", str(tmp_path),
                "--checkpoint-every", "200",
                "--max-flows", "100000",
                "--tables", "2",
                "--figures",
            ]
        )
        capsys.readouterr()
        assert code == 0
        store = ConnStore(tmp_path)
        assert list(store.manifests())  # the analysis was cached
        assert list(store.checkpoints()) == []  # and checkpoints retired
