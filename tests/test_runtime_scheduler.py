"""The execution runtime: task graphs and the process-pool scheduler.

The load-bearing guarantees: a malformed graph is rejected before any
work starts; units run across workers with results indexed by key (never
by completion order); a crashing, raising, or hanging worker costs its
unit a retry — and after the retry budget, a ``worker_error`` failure
accounted through the PR-1 taxonomy — but never the pool or the run.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.errors import ErrorKind
from repro.runtime import (
    ProcessPoolScheduler,
    RetryPolicy,
    Task,
    TaskGraph,
    TaskGraphError,
    TelemetryLog,
    resolve_jobs,
)

# -- workers (module-level: they cross the fork boundary) --------------------


def square_worker(spec):
    return {"value": spec["n"] ** 2, "packets": spec["n"], "bytes": 0, "cache": None}


def raising_worker(spec):
    raise RuntimeError(f"unit {spec['n']} is unlucky")


def crash_until_worker(spec):
    """Dies hard (no exception, no message) until the attempt counter
    stored in ``spec['counter']`` reaches ``spec['crashes']``."""
    counter = spec["counter"]
    seen = int(open(counter).read()) if os.path.exists(counter) else 0
    if seen < spec["crashes"]:
        with open(counter, "w") as handle:
            handle.write(str(seen + 1))
        os._exit(13)
    return {"survived_after": seen}


def sleeping_worker(spec):
    import time

    time.sleep(spec["seconds"])
    return "overslept"


def order_recording_worker(spec):
    with open(spec["log"], "a") as handle:
        handle.write(spec["name"] + "\n")
    return spec["name"]


# -- the task graph ----------------------------------------------------------


class TestTaskGraph:
    def test_duplicate_keys_rejected(self):
        graph = TaskGraph()
        graph.add(Task(key="a", payload={}))
        with pytest.raises(TaskGraphError, match="duplicate"):
            graph.add(Task(key="a", payload={}))

    def test_unknown_dependency_rejected(self):
        graph = TaskGraph()
        graph.add(Task(key="a", payload={}, deps=("ghost",)))
        with pytest.raises(TaskGraphError, match="unknown task 'ghost'"):
            graph.validate()

    def test_cycle_rejected(self):
        graph = TaskGraph()
        graph.add(Task(key="a", payload={}, deps=("b",)))
        graph.add(Task(key="b", payload={}, deps=("a",)))
        with pytest.raises(TaskGraphError, match="cycle"):
            graph.validate()

    def test_topo_order_respects_dependencies(self):
        graph = TaskGraph()
        graph.add(Task(key="c", payload={}, deps=("a", "b")))
        graph.add(Task(key="a", payload={}))
        graph.add(Task(key="b", payload={}, deps=("a",)))
        order = [task.key for task in graph.topo_order()]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_ready_excludes_blocked_and_running(self):
        graph = TaskGraph()
        graph.add(Task(key="a", payload={}))
        graph.add(Task(key="b", payload={}, deps=("a",)))
        assert [t.key for t in graph.ready(set(), set())] == ["a"]
        assert [t.key for t in graph.ready(set(), {"a"})] == []
        assert [t.key for t in graph.ready({"a"}, set())] == ["b"]


def test_resolve_jobs():
    assert resolve_jobs(None) == os.cpu_count()
    assert resolve_jobs(0) == os.cpu_count()
    assert resolve_jobs(3) == 3
    assert resolve_jobs(-2) == 1


# -- scheduling --------------------------------------------------------------


def _graph(n=4, **extra):
    graph = TaskGraph()
    for i in range(n):
        graph.add(Task(key=f"u{i}", payload={"n": i, **extra}))
    return graph


class TestScheduling:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_all_units_complete_keyed_by_unit(self, jobs):
        results = ProcessPoolScheduler(square_worker, jobs=jobs).run(_graph(5))
        assert set(results) == {f"u{i}" for i in range(5)}
        for i in range(5):
            assert results[f"u{i}"].ok
            assert results[f"u{i}"].value["value"] == i * i

    def test_dependencies_run_before_dependents(self, tmp_path):
        log = tmp_path / "order.log"
        graph = TaskGraph()
        for name in ("late", "early"):  # insertion order is adversarial
            deps = ("early",) if name == "late" else ()
            graph.add(
                Task(
                    key=name,
                    payload={"name": name, "log": str(log)},
                    deps=deps,
                )
            )
        results = ProcessPoolScheduler(order_recording_worker, jobs=2).run(graph)
        assert all(result.ok for result in results.values())
        assert log.read_text().splitlines() == ["early", "late"]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_raise_retry_then_failure_speaks_the_taxonomy(self, jobs):
        telemetry = TelemetryLog()
        scheduler = ProcessPoolScheduler(
            raising_worker,
            jobs=jobs,
            retry=RetryPolicy(max_retries=2, backoff=0.01),
            telemetry=telemetry,
        )
        results = scheduler.run(_graph(2))
        for key, result in results.items():
            assert result.status == "failed"
            assert result.attempts == 3
            assert result.error.kind is ErrorKind.WORKER_ERROR
            assert result.error.path == key
            assert "unlucky" in result.error.detail
        retries = telemetry.unit_events("unit_retry")
        assert len(retries) == 4  # 2 units x 2 retries

    def test_hard_crash_is_retried_then_succeeds(self, tmp_path):
        graph = TaskGraph()
        graph.add(
            Task(
                key="flaky",
                payload={"counter": str(tmp_path / "count"), "crashes": 2},
            )
        )
        graph.add(Task(key="steady", payload={"counter": str(tmp_path / "n"), "crashes": 0}))
        telemetry = TelemetryLog()
        scheduler = ProcessPoolScheduler(
            crash_until_worker,
            jobs=2,
            retry=RetryPolicy(max_retries=2, backoff=0.01),
            telemetry=telemetry,
        )
        results = scheduler.run(graph)
        assert results["flaky"].ok
        assert results["flaky"].attempts == 3
        assert results["flaky"].value == {"survived_after": 2}
        assert results["steady"].ok and results["steady"].attempts == 1
        crash_retries = [
            event
            for event in telemetry.unit_events("unit_retry")
            if event["unit"] == "flaky"
        ]
        assert len(crash_retries) == 2
        assert all("exit code 13" in event["error"] for event in crash_retries)

    def test_hard_crash_exhausts_retries_into_failure(self, tmp_path):
        graph = TaskGraph()
        graph.add(
            Task(
                key="doomed",
                payload={"counter": str(tmp_path / "count"), "crashes": 99},
            )
        )
        graph.add(Task(key="fine", payload={"counter": str(tmp_path / "n"), "crashes": 0}))
        scheduler = ProcessPoolScheduler(
            crash_until_worker, jobs=2, retry=RetryPolicy(max_retries=1, backoff=0.01)
        )
        results = scheduler.run(graph)
        assert results["doomed"].status == "failed"
        assert results["doomed"].error.kind is ErrorKind.WORKER_ERROR
        assert "exit code 13" in results["doomed"].error.detail
        assert results["fine"].ok  # the pool survived its neighbor

    def test_timeout_terminates_and_fails_the_unit(self):
        graph = TaskGraph()
        graph.add(Task(key="hung", payload={"seconds": 30.0}))
        graph.add(Task(key="quick", payload={"seconds": 0.0}))
        scheduler = ProcessPoolScheduler(
            sleeping_worker,
            jobs=2,
            retry=RetryPolicy(max_retries=0, backoff=0.01, timeout=0.5),
        )
        results = scheduler.run(graph)
        assert results["hung"].status == "failed"
        assert "timed out" in results["hung"].error.detail
        assert results["quick"].ok

    def test_dependents_of_a_failed_unit_are_skipped(self):
        graph = TaskGraph()
        graph.add(Task(key="root", payload={"n": 0}))
        graph.add(Task(key="child", payload={"n": 1}, deps=("root",)))
        graph.add(Task(key="grandchild", payload={"n": 2}, deps=("child",)))
        scheduler = ProcessPoolScheduler(
            raising_worker, jobs=2, retry=RetryPolicy(max_retries=0, backoff=0.01)
        )
        results = scheduler.run(graph)
        assert results["root"].status == "failed"
        assert results["child"].status == "skipped"
        assert results["grandchild"].status == "skipped"
        assert "dependency root failed" in results["child"].error.detail
