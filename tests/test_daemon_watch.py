"""Watch mode: pcaps dropped into a tenant directory mid-run get
ingested live, and the persistent assignment table keeps trace indices
stable no matter how new arrivals sort.

The second property is the load-bearing one — window filenames and
checkpoint keys embed the trace index, so a new file shifting sorted
order would collide artifacts across incarnations.  ``assign.json``
makes indices append-only instead.
"""

from __future__ import annotations

import json
import shutil
import threading
import time

import pytest

from repro.daemon import run_feed, tenant_dir
from repro.gen.capture import generate_dataset
from repro.gen.topology import Enterprise


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    out = tmp_path_factory.mktemp("daemon-watch-traces")
    return generate_dataset(
        "D0", Enterprise(seed=7), out, seed=7, scale=0.004, max_windows=2
    )


def payload_for(store_root, traces, **overrides):
    body = {
        "tenant": "acme",
        "traces": [str(path) for path in traces],
        "store_root": str(store_root),
        "window": 60.0,
        "flow_budget": 4096,
        "checkpoint_every": 200,
        "error_policy": "strict",
        "packet_rate": 0.0,
    }
    body.update(overrides)
    return body


def _assignments(store_root) -> dict:
    path = tenant_dir(store_root, "acme") / "assign.json"
    return json.loads(path.read_text())["sources"]


def _wait_for(condition, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(0.05)
    return False


class Collector:
    def __init__(self):
        self.messages = []

    def __call__(self, kind, body):
        self.messages.append((kind, body))

    def kinds(self):
        return [kind for kind, _ in self.messages]


def test_watch_ingests_a_pcap_dropped_mid_run(dataset, tmp_path):
    source = tmp_path / "drop"
    source.mkdir()
    shutil.copy(dataset.traces[0].path, source / "first.pcap")
    store_root = tmp_path / "store"
    payload = payload_for(
        store_root,
        sorted(source.glob("*.pcap")),
        source=str(source),
        watch=True,
        watch_interval=0.05,
    )
    drain = threading.Event()
    sent = Collector()
    outcome: list[str] = []

    worker = threading.Thread(
        target=lambda: outcome.append(run_feed(payload, drain, sent)),
        daemon=True,
    )
    worker.start()
    base = tenant_dir(store_root, "acme")
    assert _wait_for(lambda: (base / "traces" / "t000.json").exists())
    # The feed is now idling on rescans: drop a second pcap in, live.
    shutil.copy(dataset.traces[1].path, source / "second.pcap")
    assert _wait_for(lambda: (base / "traces" / "t001.json").exists())
    drain.set()
    worker.join(timeout=60)
    assert not worker.is_alive()
    assert outcome == ["drained"]
    assert "rescan" in sent.kinds()
    assert _assignments(store_root) == {"first.pcap": 0, "second.pcap": 1}
    marker = json.loads((base / "traces" / "t001.json").read_text())
    assert marker["source"] == "second.pcap"
    # The rollup saw both traces.
    result = json.loads((base / "result.json").read_text())
    assert result["traces"] == 2


def test_indices_stay_stable_when_a_new_file_sorts_first(dataset, tmp_path):
    source = tmp_path / "drop"
    source.mkdir()
    shutil.copy(dataset.traces[0].path, source / "b.pcap")
    store_root = tmp_path / "store"
    drain = threading.Event()

    payload = payload_for(
        store_root, sorted(source.glob("*.pcap")), source=str(source)
    )
    assert run_feed(payload, drain, Collector()) == "done"
    base = tenant_dir(store_root, "acme")
    b_marker = (base / "traces" / "t000.json").read_bytes()
    assert _assignments(store_root) == {"b.pcap": 0}

    # A restart finds a new file that sorts *before* the finished one.
    shutil.copy(dataset.traces[1].path, source / "a.pcap")
    payload = payload_for(
        store_root, sorted(source.glob("*.pcap")), source=str(source)
    )
    assert run_feed(payload, drain, Collector()) == "done"
    # b keeps index 0 (its marker is untouched); a extends the table.
    assert _assignments(store_root) == {"b.pcap": 0, "a.pcap": 1}
    assert (base / "traces" / "t000.json").read_bytes() == b_marker
    a_marker = json.loads((base / "traces" / "t001.json").read_text())
    assert a_marker["source"] == "a.pcap"
    # Window artifacts never collided: each trace owns its own prefix.
    windows = sorted(p.name for p in (base / "windows").glob("*.json"))
    assert any(name.startswith("t000-") for name in windows)
    assert any(name.startswith("t001-") for name in windows)


def test_watch_on_a_single_file_source_still_completes(dataset, tmp_path):
    trace = dataset.traces[0].path
    payload = payload_for(
        tmp_path, [trace], source=str(trace), watch=True, watch_interval=0.05
    )
    # A file source has no directory to rescan: watch degrades to a
    # normal bounded run instead of spinning forever.
    assert run_feed(payload, threading.Event(), Collector()) == "done"


def test_drain_during_watch_idle_returns_promptly(dataset, tmp_path):
    source = tmp_path / "drop"
    source.mkdir()
    shutil.copy(dataset.traces[0].path, source / "only.pcap")
    payload = payload_for(
        tmp_path / "store",
        sorted(source.glob("*.pcap")),
        source=str(source),
        watch=True,
        watch_interval=30.0,  # long: drain must interrupt the sleep
    )
    drain = threading.Event()
    outcome: list[str] = []
    worker = threading.Thread(
        target=lambda: outcome.append(run_feed(payload, drain, Collector())),
        daemon=True,
    )
    worker.start()
    base = tenant_dir(tmp_path / "store", "acme")
    assert _wait_for(lambda: (base / "result.json").exists())
    started = time.monotonic()
    drain.set()
    worker.join(timeout=60)
    assert not worker.is_alive()
    assert time.monotonic() - started < 10.0
    assert outcome == ["drained"]
