"""The load harness against a live service: short bursts, real sockets."""

from __future__ import annotations

import pytest

from repro.service import ReproService
from repro.service.loadgen import DEFAULT_MIX, Endpoint, run_load
from repro.service.loadgen import render_report


@pytest.fixture(scope="module")
def service(store_study):
    _, root = store_study
    svc = ReproService(str(root), port=0)
    svc.start_background()
    yield svc
    svc.shutdown()


def test_load_report_shape_and_zero_5xx(service):
    report = run_load(
        "127.0.0.1", service.port, users=4, duration=1.0, warmup=0.3, seed=1
    )
    assert report["users"] == 4
    assert report["requests"] > 0
    latency = report["latency_ms"]
    assert latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]
    assert report["status_counts"].get("5xx", 0) == 0
    assert report["status_counts"].get("conn-error", 0) == 0
    assert report["error_rate"] == 0.0
    assert report["throughput_rps"] > 0
    # Every measured endpoint reports its own percentiles.
    for stats in report["endpoints"].values():
        assert stats["n"] > 0 and "p99" in stats
    # The human rendering mentions the headline numbers.
    text = render_report(report)
    assert "p99" in text and "errors" in text


def test_mix_is_seeded_and_respected(service):
    mix = (Endpoint("only-health", "/health", weight=1.0),)
    report = run_load(
        "127.0.0.1", service.port, users=2, duration=0.5, warmup=0.1,
        seed=7, mix=mix,
    )
    assert set(report["endpoints"]) == {"only-health"}


def test_default_mix_covers_the_query_surface():
    paths = {endpoint.path.split("?")[0] for endpoint in DEFAULT_MIX}
    assert {"/health", "/studies", "/query", "/cdf"} <= paths
    assert any(path.startswith("/tables/") for path in paths)
    # /events holds a connection open; it must not be in the mix.
    assert "/events" not in paths
