"""Tests for repro.proto.netbios (NBNS + NBSS)."""

import pytest

from repro.proto.dns import RCODE_NOERROR, RCODE_NXDOMAIN
from repro.proto.netbios import (
    NAME_TYPE_DOMAIN,
    NAME_TYPE_SERVER,
    NAME_TYPE_WORKSTATION,
    NB_OPCODE_QUERY,
    NB_OPCODE_REFRESH,
    NB_OPCODE_REGISTRATION,
    NbnsPacket,
    NbssFrame,
    SSN_NEGATIVE_RESPONSE,
    SSN_POSITIVE_RESPONSE,
    SSN_SESSION_MESSAGE,
    SSN_SESSION_REQUEST,
    decode_netbios_name,
    encode_netbios_name,
    parse_nbss_stream,
)


class TestNameEncoding:
    def test_round_trip(self):
        encoded = encode_netbios_name("FILESRV", NAME_TYPE_SERVER)
        name, suffix, offset = decode_netbios_name(encoded, 0)
        assert name == "FILESRV"
        assert suffix == NAME_TYPE_SERVER
        assert offset == len(encoded)

    def test_case_folded(self):
        encoded = encode_netbios_name("lower", NAME_TYPE_WORKSTATION)
        name, _, _ = decode_netbios_name(encoded, 0)
        assert name == "LOWER"

    def test_long_name_truncated_to_15(self):
        encoded = encode_netbios_name("A" * 20, 0x00)
        name, _, _ = decode_netbios_name(encoded, 0)
        assert name == "A" * 15

    def test_encoded_length(self):
        assert len(encode_netbios_name("X", 0)) == 34

    def test_rejects_wrong_label_length(self):
        with pytest.raises(ValueError):
            decode_netbios_name(b"\x10" + b"A" * 16, 0)


class TestNbnsPacket:
    def test_query_round_trip(self):
        packet = NbnsPacket(ident=9, opcode=NB_OPCODE_QUERY, name="WS0001",
                            suffix=NAME_TYPE_WORKSTATION)
        back = NbnsPacket.decode(packet.encode())
        assert back.name == "WS0001"
        assert back.opcode == NB_OPCODE_QUERY
        assert not back.is_response
        assert not back.failed

    def test_positive_response_carries_address(self):
        packet = NbnsPacket(
            ident=9, opcode=NB_OPCODE_QUERY, name="SRV001", suffix=NAME_TYPE_SERVER,
            is_response=True, rcode=RCODE_NOERROR, addr=0x83F30105,
        )
        back = NbnsPacket.decode(packet.encode())
        assert back.is_response
        assert back.addr == 0x83F30105

    def test_nxdomain_response(self):
        packet = NbnsPacket(
            ident=9, opcode=NB_OPCODE_QUERY, name="GONE", suffix=0x00,
            is_response=True, rcode=RCODE_NXDOMAIN,
        )
        back = NbnsPacket.decode(packet.encode())
        assert back.failed

    def test_refresh_and_register(self):
        for opcode in (NB_OPCODE_REFRESH, NB_OPCODE_REGISTRATION):
            packet = NbnsPacket(ident=1, opcode=opcode, name="WS", suffix=0)
            assert NbnsPacket.decode(packet.encode()).opcode == opcode

    def test_name_categories(self):
        host = NbnsPacket(1, 0, "A", NAME_TYPE_WORKSTATION)
        srv = NbnsPacket(1, 0, "A", NAME_TYPE_SERVER)
        dom = NbnsPacket(1, 0, "A", NAME_TYPE_DOMAIN)
        other = NbnsPacket(1, 0, "A", 0x42)
        assert host.name_category == "host"
        assert srv.name_category == "host"
        assert dom.name_category == "domain"
        assert other.name_category == "other"

    def test_truncated(self):
        with pytest.raises(ValueError):
            NbnsPacket.decode(b"\x00" * 8)


class TestNbss:
    def test_session_request_round_trip(self):
        frame = NbssFrame.session_request("SERVER", "CLIENT")
        (back,) = parse_nbss_stream(frame.encode())
        assert back.frame_type == SSN_SESSION_REQUEST
        name, suffix, _ = decode_netbios_name(back.payload, 0)
        assert name == "SERVER"

    def test_stream_of_frames(self):
        stream = (
            NbssFrame.session_request("S", "C").encode()
            + NbssFrame(SSN_POSITIVE_RESPONSE).encode()
            + NbssFrame(SSN_SESSION_MESSAGE, b"\xffSMB" + b"\x00" * 29).encode()
        )
        frames = parse_nbss_stream(stream)
        assert [f.frame_type for f in frames] == [
            SSN_SESSION_REQUEST, SSN_POSITIVE_RESPONSE, SSN_SESSION_MESSAGE,
        ]

    def test_negative_response(self):
        frame = NbssFrame(SSN_NEGATIVE_RESPONSE, b"\x82")
        (back,) = parse_nbss_stream(frame.encode())
        assert back.payload == b"\x82"

    def test_truncated_final_frame_kept_partial(self):
        full = NbssFrame(SSN_SESSION_MESSAGE, b"x" * 100).encode()
        frames = parse_nbss_stream(full[:-40])
        assert len(frames) == 1
        assert len(frames[0].payload) == 60

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            NbssFrame(SSN_SESSION_MESSAGE, b"x" * 0x20000).encode()
