"""Tests for repro.proto.tls."""

from repro.proto.tls import (
    CONTENT_APPLICATION_DATA,
    CONTENT_HANDSHAKE,
    HANDSHAKE_CLIENT_HELLO,
    HANDSHAKE_SERVER_HELLO,
    TlsRecord,
    build_application_data,
    build_client_hello,
    build_server_hello,
    parse_records,
    stream_summary,
)


class TestRecords:
    def test_record_round_trip(self):
        record = TlsRecord(CONTENT_APPLICATION_DATA, b"secret")
        (back,) = parse_records(record.encode())
        assert back.content_type == CONTENT_APPLICATION_DATA
        assert back.fragment == b"secret"

    def test_client_hello_type(self):
        (record,) = parse_records(build_client_hello())
        assert record.content_type == CONTENT_HANDSHAKE
        assert record.handshake_type == HANDSHAKE_CLIENT_HELLO

    def test_server_hello_includes_ccs(self):
        records = parse_records(build_server_hello())
        assert records[0].handshake_type == HANDSHAKE_SERVER_HELLO
        assert len(records) == 2

    def test_application_data_fragmentation(self):
        data = build_application_data(b"z" * 40_000)
        records = parse_records(data)
        assert len(records) == 3  # 16384 + 16384 + 7232
        assert sum(len(r.fragment) for r in records) == 40_000

    def test_parse_stops_at_garbage(self):
        good = build_client_hello()
        records = parse_records(good + b"\x99\x99\x99\x99\x99")
        assert len(records) == 1

    def test_parse_truncated_final_record(self):
        data = build_application_data(b"q" * 100)[:-20]
        records = parse_records(data)
        assert len(records) == 1
        assert len(records[0].fragment) == 80

    def test_handshake_type_none_for_appdata(self):
        record = TlsRecord(CONTENT_APPLICATION_DATA, b"x")
        assert record.handshake_type is None


class TestStreamSummary:
    def test_full_session(self):
        stream = (
            build_client_hello()
            + build_application_data(b"a" * 1000)
            + build_application_data(b"b" * 2000)
        )
        summary = stream_summary(stream)
        assert summary["handshake_records"] == 1
        assert summary["app_records"] == 2
        assert summary["app_bytes"] == 3000

    def test_empty(self):
        assert stream_summary(b"") == {
            "handshake_records": 0,
            "app_records": 0,
            "app_bytes": 0,
        }
