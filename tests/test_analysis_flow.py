"""Tests for the flow table (repro.analysis.flow)."""

import random

import pytest

from repro.analysis.conn import ConnState
from repro.analysis.flow import FlowTable
from repro.gen.packetize import realize_session
from repro.gen.session import AppEvent, Dir, Outcome, TcpSession, UdpExchange
from repro.net.icmp import ICMP_ECHO_REPLY, ICMP_ECHO_REQUEST
from repro.net.packet import decode_packet, make_icmp_packet, make_udp_packet


def _run_tcp_session(**kwargs):
    base = dict(
        client_ip=0x83F30101, server_ip=0x83F30201, client_mac=1, server_mac=2,
        sport=44000, dport=80, start=10.0, rtt=0.001, loss_rate=0.0,
    )
    base.update(kwargs)
    session = TcpSession(**base)
    table = FlowTable(collect_payload=True)
    for pkt in realize_session(session, random.Random(4)):
        table.process(decode_packet(pkt))
    return table.flush()


class TestTcpFlows:
    def test_single_connection_single_record(self):
        results = _run_tcp_session(events=[AppEvent(0.0, Dir.C2S, b"GET /\r\n\r\n")])
        assert len(results) == 1
        record = results[0].record
        assert record.proto == "tcp"
        assert record.orig_ip == 0x83F30101
        assert record.resp_port == 80
        assert record.state == ConnState.SF

    def test_byte_accounting(self):
        results = _run_tcp_session(events=[
            AppEvent(0.0, Dir.C2S, b"q" * 700),
            AppEvent(0.01, Dir.S2C, b"r" * 9000),
        ])
        record = results[0].record
        assert record.orig_bytes == 700
        assert record.resp_bytes == 9000

    def test_stream_collection_for_web_port(self):
        results = _run_tcp_session(events=[
            AppEvent(0.0, Dir.C2S, b"GET / HTTP/1.1\r\n\r\n"),
            AppEvent(0.01, Dir.S2C, b"HTTP/1.1 200 OK\r\n\r\n"),
        ])
        result = results[0]
        assert result.orig_stream == b"GET / HTTP/1.1\r\n\r\n"
        assert result.resp_stream == b"HTTP/1.1 200 OK\r\n\r\n"

    def test_stream_not_collected_for_unknown_port(self):
        results = _run_tcp_session(
            dport=34567, events=[AppEvent(0.0, Dir.C2S, b"opaque")]
        )
        assert results[0].orig_stream == b""

    def test_rejected_connection_state(self):
        results = _run_tcp_session(outcome=Outcome.REJECTED)
        assert results[0].record.state == ConnState.REJ
        assert results[0].record.attempt_failed

    def test_unanswered_connection_state(self):
        results = _run_tcp_session(outcome=Outcome.UNANSWERED)
        assert results[0].record.state == ConnState.S0

    def test_keepalive_retransmits_tracked(self):
        results = _run_tcp_session(
            events=[AppEvent(0.0, Dir.C2S, b"x" * 100)],
            keepalive_interval=5.0, keepalive_count=4, close="none",
        )
        record = results[0].record
        assert record.keepalive_retransmits == 4
        assert record.retransmits == 0

    def test_orientation_from_syn(self):
        """Even though the server's port is unknown (34567), the SYN
        sender is the originator."""
        results = _run_tcp_session(dport=34567)
        assert results[0].record.orig_port == 44000


class TestUdpFlows:
    def test_exchange_is_one_flow(self):
        table = FlowTable()
        for i in range(6):
            table.process(decode_packet(make_udp_packet(
                10.0 + i, 1, 2, 0x83F30101, 0x83F30201, 40000, 53, b"q",
            )))
        results = table.flush()
        assert len(results) == 1
        assert results[0].record.orig_pkts == 6

    def test_reply_counts_as_responder(self):
        table = FlowTable()
        table.process(decode_packet(make_udp_packet(1.0, 1, 2, 10, 20, 40000, 53, b"q" * 30)))
        table.process(decode_packet(make_udp_packet(1.1, 2, 1, 20, 10, 53, 40000, b"r" * 90)))
        (result,) = table.flush()
        assert result.record.orig_bytes == 30
        assert result.record.resp_bytes == 90

    def test_timeout_splits_flows(self):
        table = FlowTable()
        table.process(decode_packet(make_udp_packet(1.0, 1, 2, 10, 20, 40000, 53, b"a")))
        table.process(decode_packet(make_udp_packet(500.0, 1, 2, 10, 20, 40000, 53, b"b")))
        results = table.flush()
        assert len(results) == 2

    def test_service_port_orients_flow(self):
        """Seeing only the reply, the DNS port marks its sender as responder."""
        table = FlowTable()
        table.process(decode_packet(make_udp_packet(1.0, 2, 1, 20, 10, 53, 40000, b"r")))
        (result,) = table.flush()
        assert result.record.resp_port == 53
        assert result.record.orig_ip == 10

    def test_observer_called_per_datagram(self):
        seen = []
        table = FlowTable(udp_observer=lambda rec, fo, pkt: seen.append((fo, pkt.payload)))
        table.process(decode_packet(make_udp_packet(1.0, 1, 2, 10, 20, 40000, 53, b"q")))
        table.process(decode_packet(make_udp_packet(1.1, 2, 1, 20, 10, 53, 40000, b"r")))
        assert seen == [(True, b"q"), (False, b"r")]


class TestIcmpFlows:
    def test_echo_pair_one_flow(self):
        table = FlowTable()
        table.process(decode_packet(make_icmp_packet(1.0, 1, 2, 10, 20, ICMP_ECHO_REQUEST, ident=7)))
        table.process(decode_packet(make_icmp_packet(1.1, 2, 1, 20, 10, ICMP_ECHO_REPLY, ident=7)))
        results = table.flush()
        assert len(results) == 1
        record = results[0].record
        assert record.proto == "icmp"
        assert record.orig_ip == 10
        assert record.orig_pkts == 1
        assert record.resp_pkts == 1

    def test_sweep_creates_flow_per_target(self):
        table = FlowTable()
        for target in range(30):
            table.process(decode_packet(make_icmp_packet(
                1.0 + target, 1, 2, 999, 1000 + target, ICMP_ECHO_REQUEST,
            )))
        assert len(table.flush()) == 30


class TestNonIp:
    def test_arp_ignored_by_flow_table(self):
        from repro.net.packet import make_arp_packet

        table = FlowTable()
        table.process(decode_packet(make_arp_packet(1.0, 1, 0xFFFFFFFFFFFF, 1, 1, 10, 0, 20)))
        assert table.flush() == []
