"""The telemetry stream: event schema, JSONL persistence, rendering.

The schema assertions here are the contract ``docs/runtime.md``
documents — external consumers parse the JSONL file, so field names are
load-bearing.
"""

from __future__ import annotations

import io
import json

from repro.runtime import (
    ProcessPoolScheduler,
    RetryPolicy,
    Task,
    TaskGraph,
    TelemetryLog,
)
from tests.test_runtime_scheduler import raising_worker, square_worker

#: Required fields per event type (beyond the universal event/ts pair).
EVENT_SCHEMA = {
    "study_start": {"jobs", "units", "datasets", "seed"},
    "unit_start": {"unit", "kind", "attempt"},
    "unit_retry": {"unit", "attempt", "backoff_s", "error"},
    "unit_finish": {"unit", "kind", "status", "attempts", "wall_s",
                    "packets", "bytes", "cache"},
    "unit_skipped": {"unit", "error"},
    "study_finish": {"wall_s", "units_ok", "units_failed"},
}


def _run(worker, telemetry, jobs=2, retry=None, n=3):
    graph = TaskGraph()
    for i in range(n):
        graph.add(Task(key=f"u{i}", payload={"n": i}, kind="demo"))
    ProcessPoolScheduler(worker, jobs=jobs, retry=retry, telemetry=telemetry).run(graph)


class TestEventSchema:
    def test_every_event_carries_its_required_fields(self, tmp_path):
        telemetry = TelemetryLog(path=tmp_path / "events.jsonl")
        _run(
            raising_worker,
            telemetry,
            retry=RetryPolicy(max_retries=1, backoff=0.01),
        )
        _run(square_worker, telemetry, jobs=1)
        seen = set()
        for record in telemetry.events:
            assert {"event", "ts"} <= set(record)
            required = EVENT_SCHEMA[record["event"]]
            assert required <= set(record), record
            seen.add(record["event"])
        assert {"unit_start", "unit_retry", "unit_finish", "study_finish"} <= seen

    def test_unit_finish_copies_worker_counters(self):
        telemetry = TelemetryLog()
        _run(square_worker, telemetry, n=2)
        finishes = telemetry.unit_events("unit_finish")
        assert len(finishes) == 2
        by_unit = {record["unit"]: record for record in finishes}
        assert by_unit["u1"]["packets"] == 1
        assert by_unit["u1"]["bytes"] == 0
        assert by_unit["u1"]["status"] == "ok"
        assert by_unit["u1"]["attempts"] == 1
        assert by_unit["u1"]["wall_s"] >= 0

    def test_jsonl_file_is_line_parseable_and_appended(self, tmp_path):
        path = tmp_path / "events.jsonl"
        telemetry = TelemetryLog(path=path)
        _run(square_worker, telemetry, n=2)
        telemetry.close()
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["event"] for r in records] == [
            r["event"] for r in telemetry.events
        ]
        # Append-only: a second log on the same path extends the file.
        more = TelemetryLog(path=path)
        more.emit("study_start", jobs=1, units=0, datasets=[], seed=0)
        more.close()
        assert len(path.read_text().strip().splitlines()) == len(lines) + 1


class TestRendering:
    def test_progress_lines_are_narrated_to_the_stream(self):
        stream = io.StringIO()
        telemetry = TelemetryLog(progress=True, stream=stream)
        _run(square_worker, telemetry, n=2)
        out = stream.getvalue()
        assert "[runtime] u0 started" in out
        assert "[runtime] u0 ok in " in out
        assert "2 ok, 0 failed" in out

    def test_non_progress_log_stays_silent(self):
        stream = io.StringIO()
        telemetry = TelemetryLog(progress=False, stream=stream)
        _run(square_worker, telemetry, n=2)
        assert stream.getvalue() == ""

    def test_timing_table_has_one_row_per_unit(self):
        telemetry = TelemetryLog()
        _run(square_worker, telemetry, n=3)
        table = telemetry.timing_table()
        assert table.columns == [
            "unit", "status", "attempts", "wall_s", "packets", "bytes", "cache"
        ]
        assert sorted(row[0] for row in table.rows) == ["u0", "u1", "u2"]
        rendered = table.render()
        assert "Runtime" in rendered and "u2" in rendered


class TestFollowEvents:
    """The live tail (``read_events(follow=True)``) behind ``daemon tail``."""

    def _tail(self, path, **kwargs):
        from repro.runtime.telemetry import follow_events

        return follow_events(path, poll_interval=0.01, **kwargs)

    def test_tail_picks_up_appended_events(self, tmp_path):
        import threading
        import time

        path = tmp_path / "events.jsonl"

        def writer():
            with open(path, "a", encoding="utf-8") as handle:
                for i in range(3):
                    handle.write(json.dumps({"event": "tick", "n": i}) + "\n")
                    handle.flush()
                    time.sleep(0.03)

        thread = threading.Thread(target=writer)
        thread.start()
        got = []
        for record in self._tail(path, timeout=5.0):
            got.append(record)
            if len(got) == 3:
                break
        thread.join()
        assert [r["n"] for r in got] == [0, 1, 2]

    def test_truncated_trailing_line_waits_for_its_newline(self, tmp_path):
        path = tmp_path / "events.jsonl"
        done = []
        tail = self._tail(path, stop=lambda: bool(done))
        with open(path, "a", encoding="utf-8") as handle:
            # A mid-write snapshot: one whole line plus a partial one.
            handle.write('{"event": "whole", "n": 1}\n{"event": "par')
            handle.flush()
            assert next(tail)["event"] == "whole"
            # The partial line completes on a later poll — one event,
            # parsed whole, never mangled.
            handle.write('tial", "n": 2}\n')
            handle.flush()
            assert next(tail) == {"event": "partial", "n": 2}
        done.append(True)
        assert list(tail) == []

    def test_stop_still_drains_events_already_on_disk(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "a"}\n{"event": "b"}\nnot json\n')
        # stop() is true from the start; the final drain still delivers
        # what the (now dead) writer left, skipping the malformed line.
        got = list(self._tail(path, stop=lambda: True))
        assert [r["event"] for r in got] == ["a", "b"]

    def test_timeout_ends_a_tail_with_no_writer(self, tmp_path):
        import time

        start = time.monotonic()
        got = list(self._tail(tmp_path / "never.jsonl", timeout=0.05))
        assert got == []
        assert time.monotonic() - start < 2.0

    def test_read_events_follow_flag_delegates_to_the_tail(self, tmp_path):
        from repro.runtime.telemetry import read_events

        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "a"}\n')
        tail = read_events(path, follow=True, stop=lambda: True)
        assert [r["event"] for r in tail] == ["a"]

    def test_stop_ends_tail_even_against_a_busy_writer(self, tmp_path):
        """A writer that never goes quiet must not pin a stopped tail.

        The HTTP service tails its own request log: every poll the tail
        makes can itself generate more events, so "wait for the file to
        be quiet, then check stop" would never terminate.  stop() is
        checked after each drained read, not only on quiescence.
        """
        import threading
        import time

        path = tmp_path / "events.jsonl"
        stop = threading.Event()
        writer_done = threading.Event()

        def chatty_writer() -> None:
            with open(path, "a", encoding="utf-8") as handle:
                n = 0
                while not writer_done.is_set():
                    handle.write(f'{{"event": "spam", "n": {n}}}\n')
                    handle.flush()
                    n += 1
                    time.sleep(0.001)

        thread = threading.Thread(target=chatty_writer, daemon=True)
        thread.start()
        try:
            got = []
            started = time.monotonic()
            for record in self._tail(path, timeout=30.0, stop=stop.is_set):
                got.append(record)
                if len(got) >= 5:
                    stop.set()
            elapsed = time.monotonic() - started
            assert len(got) >= 5
            assert elapsed < 10.0, "stopped tail kept following a busy writer"
        finally:
            writer_done.set()
            thread.join(timeout=5.0)
