"""The telemetry stream: event schema, JSONL persistence, rendering.

The schema assertions here are the contract ``docs/runtime.md``
documents — external consumers parse the JSONL file, so field names are
load-bearing.
"""

from __future__ import annotations

import io
import json

from repro.runtime import (
    ProcessPoolScheduler,
    RetryPolicy,
    Task,
    TaskGraph,
    TelemetryLog,
)
from tests.test_runtime_scheduler import raising_worker, square_worker

#: Required fields per event type (beyond the universal event/ts pair).
EVENT_SCHEMA = {
    "study_start": {"jobs", "units", "datasets", "seed"},
    "unit_start": {"unit", "kind", "attempt"},
    "unit_retry": {"unit", "attempt", "backoff_s", "error"},
    "unit_finish": {"unit", "kind", "status", "attempts", "wall_s",
                    "packets", "bytes", "cache"},
    "unit_skipped": {"unit", "error"},
    "study_finish": {"wall_s", "units_ok", "units_failed"},
}


def _run(worker, telemetry, jobs=2, retry=None, n=3):
    graph = TaskGraph()
    for i in range(n):
        graph.add(Task(key=f"u{i}", payload={"n": i}, kind="demo"))
    ProcessPoolScheduler(worker, jobs=jobs, retry=retry, telemetry=telemetry).run(graph)


class TestEventSchema:
    def test_every_event_carries_its_required_fields(self, tmp_path):
        telemetry = TelemetryLog(path=tmp_path / "events.jsonl")
        _run(
            raising_worker,
            telemetry,
            retry=RetryPolicy(max_retries=1, backoff=0.01),
        )
        _run(square_worker, telemetry, jobs=1)
        seen = set()
        for record in telemetry.events:
            assert {"event", "ts"} <= set(record)
            required = EVENT_SCHEMA[record["event"]]
            assert required <= set(record), record
            seen.add(record["event"])
        assert {"unit_start", "unit_retry", "unit_finish", "study_finish"} <= seen

    def test_unit_finish_copies_worker_counters(self):
        telemetry = TelemetryLog()
        _run(square_worker, telemetry, n=2)
        finishes = telemetry.unit_events("unit_finish")
        assert len(finishes) == 2
        by_unit = {record["unit"]: record for record in finishes}
        assert by_unit["u1"]["packets"] == 1
        assert by_unit["u1"]["bytes"] == 0
        assert by_unit["u1"]["status"] == "ok"
        assert by_unit["u1"]["attempts"] == 1
        assert by_unit["u1"]["wall_s"] >= 0

    def test_jsonl_file_is_line_parseable_and_appended(self, tmp_path):
        path = tmp_path / "events.jsonl"
        telemetry = TelemetryLog(path=path)
        _run(square_worker, telemetry, n=2)
        telemetry.close()
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["event"] for r in records] == [
            r["event"] for r in telemetry.events
        ]
        # Append-only: a second log on the same path extends the file.
        more = TelemetryLog(path=path)
        more.emit("study_start", jobs=1, units=0, datasets=[], seed=0)
        more.close()
        assert len(path.read_text().strip().splitlines()) == len(lines) + 1


class TestRendering:
    def test_progress_lines_are_narrated_to_the_stream(self):
        stream = io.StringIO()
        telemetry = TelemetryLog(progress=True, stream=stream)
        _run(square_worker, telemetry, n=2)
        out = stream.getvalue()
        assert "[runtime] u0 started" in out
        assert "[runtime] u0 ok in " in out
        assert "2 ok, 0 failed" in out

    def test_non_progress_log_stays_silent(self):
        stream = io.StringIO()
        telemetry = TelemetryLog(progress=False, stream=stream)
        _run(square_worker, telemetry, n=2)
        assert stream.getvalue() == ""

    def test_timing_table_has_one_row_per_unit(self):
        telemetry = TelemetryLog()
        _run(square_worker, telemetry, n=3)
        table = telemetry.timing_table()
        assert table.columns == [
            "unit", "status", "attempts", "wall_s", "packets", "bytes", "cache"
        ]
        assert sorted(row[0] for row in table.rows) == ["u0", "u1", "u2"]
        rendered = table.render()
        assert "Runtime" in rendered and "u2" in rendered
