"""The tiered store's unit layer: placement, routing, hot tier, rebalance.

The invariant everything else leans on: a tiered store is observably a
ConnStore.  Same digests, same round trips, same typed errors — the
only new behaviors are *where* bytes land (placement), *how fast* they
come back (hot tier), and that no interleaving of rebalance steps can
lose or mask a healthy copy.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.errors import ErrorKind
from repro.store import ConnStore, ShardError
from repro.store.tier import (
    BUCKETS,
    TIER_MANIFEST,
    HotTier,
    PlacementManifest,
    TieredStore,
    init_tier,
    open_store,
)


def seeded(root, count=48) -> tuple[ConnStore, dict[str, bytes]]:
    """A flat store holding ``count`` distinct objects."""
    store = ConnStore(root)
    bodies = {}
    for index in range(count):
        data = f"shard-body-{index:04d}".encode() * 7
        bodies[store.put_object(data)] = data
    return store, bodies


def two_root_tier(tmp_path, count=48):
    """A tiered store rebalanced across the primary and one extra root."""
    _, bodies = seeded(tmp_path / "store", count)
    second = tmp_path / "root-b"
    store = init_tier(tmp_path / "store", roots=(str(second),))
    store.rebalance()
    return store, bodies, second


# -- placement manifest ------------------------------------------------------


def test_buckets_cover_every_digest_prefix():
    assert "".join(BUCKETS) == "0123456789abcdef"
    assert PlacementManifest.bucket_of("f00d" + "0" * 60) == "f"


def test_manifest_round_trips_through_disk(tmp_path):
    manifest = PlacementManifest(
        roots=[".", str(tmp_path / "b")], hot_bytes=1234, pinned=("aa" * 32,)
    )
    manifest.save(tmp_path)
    loaded = PlacementManifest.load(tmp_path)
    assert loaded.roots == manifest.roots
    assert loaded.assign == manifest.assign
    assert loaded.hot_bytes == 1234
    assert loaded.pinned == ("aa" * 32,)


def test_primary_root_must_come_first():
    with pytest.raises(ValueError):
        PlacementManifest(roots=["/somewhere", "."])


def test_balanced_assign_levels_and_minimizes_moves():
    manifest = PlacementManifest(roots=[".", "b"])
    target = manifest.balanced_assign()
    counts = [sum(1 for b in BUCKETS if target[b] == i) for i in range(2)]
    assert counts == [8, 8]
    # Re-leveling an already-balanced table is a fixed point.
    manifest.assign = dict(target)
    assert manifest.balanced_assign() == target
    # A third root steals only the overflow: buckets already under quota
    # stay put (minimal movement).
    manifest.roots.append("c")
    retarget = manifest.balanced_assign()
    stayed = sum(1 for b in BUCKETS if retarget[b] == target[b])
    assert stayed >= 10
    counts3 = [sum(1 for b in BUCKETS if retarget[b] == i) for i in range(3)]
    assert sorted(counts3) == [5, 5, 6]


# -- init / open dispatch ----------------------------------------------------


def test_init_tier_is_single_shot(tmp_path):
    init_tier(tmp_path / "store")
    assert (tmp_path / "store" / TIER_MANIFEST).exists()
    with pytest.raises(FileExistsError):
        init_tier(tmp_path / "store")


def test_open_store_dispatches_on_the_manifest(tmp_path):
    flat = open_store(tmp_path / "flat")
    assert type(flat) is ConnStore
    init_tier(tmp_path / "tiered")
    assert isinstance(open_store(tmp_path / "tiered"), TieredStore)


def test_fresh_tier_answers_exactly_like_the_flat_store(tmp_path):
    _, bodies = seeded(tmp_path / "store")
    store = init_tier(tmp_path / "store")
    for digest, data in bodies.items():
        assert store.get_object(digest) == data
    # Nothing moved: every bucket still lives at the primary.
    assert store.tier_status()["roots"][0]["objects"] == len(bodies)


# -- routing and rebalance ---------------------------------------------------


def test_rebalance_splits_objects_and_keeps_every_read(tmp_path):
    store, bodies, second = two_root_tier(tmp_path)
    status = store.tier_status()
    assert [r["buckets"] for r in status["roots"]] == [8, 8]
    assert all(r["objects"] > 0 for r in status["roots"])
    assert sum(r["objects"] for r in status["roots"]) == len(bodies)
    assert status["misplaced"] == [] and status["moving"] == {}
    for digest, data in bodies.items():
        assert store.get_object(digest) == data
    # A second pass has nothing left to do.
    again = store.rebalance()
    assert again.copied == 0 and again.pending == ()


def test_put_object_lands_at_the_assigned_root(tmp_path):
    store, _, second = two_root_tier(tmp_path, count=4)
    data = b"post-rebalance object " * 9
    digest = store.put_object(data)
    home = store._object_path(digest)
    assert home.exists()
    assert store.owning_root(home) == store._root_paths[
        store.placement.assign[digest[0]]
    ]


def test_add_root_rejects_duplicates(tmp_path):
    store, _, second = two_root_tier(tmp_path, count=4)
    with pytest.raises(ValueError):
        store.add_root(str(second))


def test_bounded_rebalance_leaves_an_honest_pending_list(tmp_path):
    _, bodies = seeded(tmp_path / "store", count=32)
    store = init_tier(tmp_path / "store", roots=(str(tmp_path / "b"),))
    first = store.rebalance(max_buckets=3)
    assert len(first.moved) == 3 and first.pending
    for digest, data in bodies.items():  # mid-rebalance reads stay whole
        assert store.get_object(digest) == data
    rest = store.rebalance()
    assert rest.pending == ()


def test_reader_finds_a_copy_left_at_the_wrong_root(tmp_path):
    store, bodies, second = two_root_tier(tmp_path)
    digest, data = next(iter(bodies.items()))
    # Simulate a crash-torn move: the only copy sits at a non-home root.
    home = store._object_path(digest)
    stray = [p for p in store._candidate_paths(digest) if p != home][0]
    stray.parent.mkdir(parents=True, exist_ok=True)
    home.rename(stray)
    assert store.get_object(digest) == data


def test_corrupt_home_copy_never_masks_a_healthy_duplicate(tmp_path):
    store, bodies, second = two_root_tier(tmp_path)
    digest, data = next(iter(bodies.items()))
    home = store._object_path(digest)
    stray = [p for p in store._candidate_paths(digest) if p != home][0]
    stray.parent.mkdir(parents=True, exist_ok=True)
    stray.write_bytes(home.read_bytes())
    home.write_bytes(b"rotted " + home.read_bytes())
    assert store.get_object(digest) == data


def test_corrupt_only_copy_is_a_decode_error(tmp_path):
    store, bodies, _ = two_root_tier(tmp_path, count=4)
    digest = next(iter(bodies))
    path = next(p for p in store._candidate_paths(digest) if p.exists())
    path.write_bytes(b"not the named bytes")
    with pytest.raises(ShardError) as info:
        store.get_object(digest)
    assert info.value.kind is ErrorKind.DECODE_ERROR


def test_missing_everywhere_is_truncated_body(tmp_path):
    store, _, _ = two_root_tier(tmp_path, count=4)
    with pytest.raises(ShardError) as info:
        store.get_object("0" * 64)
    assert info.value.kind is ErrorKind.TRUNCATED_BODY


def test_gc_and_stats_span_all_roots(tmp_path):
    store, bodies, _ = two_root_tier(tmp_path)
    assert store.stats()["objects"] == len(bodies)
    report = store.gc()  # nothing referenced: every object is garbage
    assert len(report.removed) == len(bodies)
    assert all(not p.exists() for d in bodies for p in store._candidate_paths(d))


# -- hot tier ----------------------------------------------------------------


def test_hot_tier_serves_reads_without_touching_disk(tmp_path):
    store, bodies, _ = two_root_tier(tmp_path, count=4)
    digest, data = next(iter(bodies.items()))
    assert store.get_object(digest) == data  # cold read fills the tier
    for path in store._candidate_paths(digest):
        path.unlink(missing_ok=True)
    assert store.get_object(digest) == data  # hot read: no file needed
    assert store.hot.stats()["hits"] >= 1


def test_lru_evicts_oldest_unpinned_first():
    hot = HotTier(max_bytes=100)
    hot.put("a" * 64, b"x" * 40)
    hot.put("b" * 64, b"y" * 40)
    hot.get("a" * 64)  # refresh a: b is now LRU
    hot.put("c" * 64, b"z" * 40)
    assert hot.get("b" * 64) is None
    assert hot.get("a" * 64) is not None and hot.get("c" * 64) is not None
    assert hot.stats()["evictions"] == 1


def test_oversize_payloads_are_never_admitted():
    hot = HotTier(max_bytes=10)
    hot.put("a" * 64, b"x" * 11)
    assert hot.get("a" * 64) is None and hot.stats()["entries"] == 0


def test_pinned_entries_survive_eviction_pressure():
    pinned = "p" * 64
    hot = HotTier(max_bytes=50, pinned=(pinned,))
    hot.put(pinned, b"keep" * 10)
    for index in range(8):
        hot.put(f"{index:x}" * 64, b"fill" * 10)
    assert hot.get(pinned) == b"keep" * 10


def test_invalidate_and_clear():
    hot = HotTier(max_bytes=100)
    hot.put("a" * 64, b"bytes")
    hot.invalidate("a" * 64)
    assert hot.get("a" * 64) is None
    hot.put("b" * 64, b"bytes")
    hot.clear()
    assert hot.stats()["entries"] == 0 and hot.stats()["bytes"] == 0


# -- surface integration -----------------------------------------------------


def test_tier_status_reaches_store_stats_and_health_shape(tmp_path):
    store, _, _ = two_root_tier(tmp_path, count=4)
    payload = store.stats()["tier"]
    assert {r["spec"] for r in payload["roots"]} == set(store.placement.roots)
    assert set(payload) >= {"roots", "assign", "moving", "misplaced", "hot"}
    json.dumps(payload)  # must be JSON-serializable for /health
