"""Tests for the HTTP and email analyzers, driven through the flow table."""

import random

from repro.analysis.analyzers.email import EmailAnalyzer
from repro.analysis.analyzers.http import HttpAnalyzer, _client_class
from repro.analysis.flow import FlowTable
from repro.gen.packetize import realize_session
from repro.gen.session import AppEvent, Dir, Outcome, TcpSession
from repro.net.packet import decode_packet
from repro.proto import http, smtp, tls
from repro.util.addr import ip_to_int

_CLIENT = ip_to_int("131.243.1.10")
_SERVER = ip_to_int("131.243.9.10")
_WAN = ip_to_int("8.8.8.8")


def _run(analyzer, sessions, full_payload=True):
    table = FlowTable(collect_payload=full_payload)
    rng = random.Random(11)
    for session in sessions:
        for pkt in realize_session(session, rng):
            table.process(decode_packet(pkt))
    for result in table.flush():
        analyzer.on_connection(result, full_payload)
    return analyzer.result()


def _web_session(server_ip=_SERVER, requests=None, dport=80, outcome=Outcome.SUCCESS,
                 client_ip=_CLIENT):
    session = TcpSession(
        client_ip=client_ip, server_ip=server_ip, client_mac=1, server_mac=2,
        sport=44000 + random.Random(str(requests)).randrange(1000), dport=dport,
        start=5.0, rtt=0.001, outcome=outcome, loss_rate=0.0,
    )
    for request_bytes, response_bytes in requests or []:
        session.events.append(AppEvent(0.01, Dir.C2S, request_bytes))
        session.events.append(AppEvent(0.01, Dir.S2C, response_bytes))
    return session


class TestClientClassification:
    def test_signatures(self):
        google_ips = []
        assert _client_class("Mozilla/4.0", 1, google_ips) == "user"
        assert _client_class("SiteScanner/2.0", 1, google_ips) == "scan1"
        assert _client_class("iFolderClient/2.0", 1, google_ips) == "ifolder"

    def test_google_bots_split_by_ip(self):
        google_ips = []
        first = _client_class("googlebot-appliance", 100, google_ips)
        second = _client_class("googlebot-appliance", 200, google_ips)
        assert {first, second} == {"google1", "google2"}
        # Stable per IP.
        assert _client_class("googlebot-appliance", 100, google_ips) == first


class TestHttpAnalyzer:
    def test_request_response_accounting(self):
        request = http.build_request("GET", "/a", "h")
        response = http.build_response(200, "OK", "image/gif", b"g" * 500)
        report = _run(HttpAnalyzer(), [_web_session(requests=[(request, response)])])
        assert report.internal.requests == 1
        assert report.internal.data_bytes == 500
        assert report.internal.content_requests["image"] == 1

    def test_conditional_get_tracking(self):
        conditional = http.build_request(
            "GET", "/c", "h", headers={"If-Modified-Since": "x"}
        )
        not_modified = http.build_response(304, "Not Modified")
        plain = http.build_request("GET", "/p", "h")
        ok = http.build_response(200, "OK", "text/html", b"t" * 100)
        report = _run(
            HttpAnalyzer(),
            [_web_session(requests=[(conditional, not_modified), (plain, ok)])],
        )
        assert report.conditional_fraction("ent") == 0.5
        assert report.internal.successful_requests == 2

    def test_automated_clients_split_from_users(self):
        scanner_req = http.build_request("GET", "/x", "h", user_agent="SiteScanner/2.0")
        resp404 = http.build_response(404, "Not Found", "text/html", b"nf")
        user_req = http.build_request("GET", "/y", "h")
        ok = http.build_response(200, "OK", "text/html", b"y" * 300)
        report = _run(HttpAnalyzer(), [
            _web_session(requests=[(scanner_req, resp404)]),
            _web_session(requests=[(user_req, ok)], client_ip=_CLIENT + 1),
        ])
        assert report.auto_requests["scan1"] == 1
        assert report.internal_requests_total == 2
        assert report.internal.requests == 1  # user-only stats

    def test_wan_fanout_separated(self):
        request = http.build_request("GET", "/", "h")
        ok = http.build_response(200, "OK", "text/plain", b"z")
        sessions = [
            _web_session(server_ip=_WAN + i, requests=[(request, ok)])
            for i in range(5)
        ] + [_web_session(server_ip=_SERVER, requests=[(request, ok)])]
        report = _run(HttpAnalyzer(), sessions)
        assert report.fanout_cdf("wan").max == 5
        assert report.fanout_cdf("ent").max == 1

    def test_success_rates_by_host_pair(self):
        ok_pair = _web_session(requests=[(http.build_request("GET", "/", "h"),
                                          http.build_response(200, "OK"))])
        rejected = _web_session(server_ip=_SERVER + 1, outcome=Outcome.REJECTED)
        report = _run(HttpAnalyzer(), [ok_pair, rejected])
        assert report.success_internal.total == 2
        assert report.success_internal.successful == 1
        assert report.success_internal.rejected == 1

    def test_https_handshake_confirmed(self):
        session = _web_session(dport=443, requests=None)
        session.events = [
            AppEvent(0.0, Dir.C2S, tls.build_client_hello()),
            AppEvent(0.01, Dir.S2C, tls.build_server_hello()),
            AppEvent(0.01, Dir.C2S, tls.build_application_data(b"q" * 100)),
        ]
        report = _run(HttpAnalyzer(), [session])
        assert report.https_conns == 1
        assert report.https_handshakes_ok == 1

    def test_header_only_capture_still_counts_conns(self):
        session = _web_session(requests=[(http.build_request("GET", "/", "h"),
                                          http.build_response(200, "OK"))])
        report = _run(HttpAnalyzer(), [session], full_payload=False)
        assert report.internal.requests == 0  # no payload to parse
        assert report.success_internal.total == 1  # conns still tracked


class TestEmailAnalyzer:
    def _smtp_session(self, internal=True, size=2000):
        message = b"Subject: t\r\n\r\n" + b"m" * size
        client_stream = smtp.build_client_stream("h", "a@x", ["b@y"], message)
        server_stream = smtp.build_server_stream("mail", 1)
        split = server_stream.find(b"\r\n") + 2
        session = TcpSession(
            client_ip=_CLIENT, server_ip=_SERVER if internal else _WAN,
            client_mac=1, server_mac=2, sport=45000, dport=25,
            start=1.0, rtt=0.0005 if internal else 0.05, loss_rate=0.0,
        )
        session.events = [
            AppEvent(0.0, Dir.S2C, server_stream[:split]),
            AppEvent(0.02, Dir.C2S, client_stream),
            AppEvent(0.02, Dir.S2C, server_stream[split:]),
        ]
        return session

    def test_smtp_dialogue_parsed(self):
        report = _run(EmailAnalyzer(), [self._smtp_session()])
        assert report.smtp_dialogues == 1
        assert report.smtp_accepted == 1
        assert report.protocols["SMTP"].conns == 1
        assert report.protocols["SMTP"].bytes > 2000

    def test_flow_sizes_use_client_direction_for_smtp(self):
        report = _run(EmailAnalyzer(), [self._smtp_session(size=5000)])
        (size,) = report.protocols["SMTP"].flow_sizes_ent
        assert size > 5000

    def test_locality_split(self):
        report = _run(EmailAnalyzer(), [
            self._smtp_session(internal=True), self._smtp_session(internal=False),
        ])
        assert len(report.protocols["SMTP"].durations_ent) == 1
        assert len(report.protocols["SMTP"].durations_wan) == 1

    def test_wan_duration_exceeds_internal(self):
        report = _run(EmailAnalyzer(), [
            self._smtp_session(internal=True), self._smtp_session(internal=False),
        ])
        assert (
            report.protocols["SMTP"].durations_wan[0]
            > report.protocols["SMTP"].durations_ent[0]
        )

    def test_imaps_transport_level(self):
        session = TcpSession(
            client_ip=_CLIENT, server_ip=_SERVER, client_mac=1, server_mac=2,
            sport=46000, dport=993, start=1.0, rtt=0.0005, loss_rate=0.0,
            events=[
                AppEvent(0.0, Dir.C2S, tls.build_client_hello()),
                AppEvent(0.01, Dir.S2C, tls.build_server_hello()),
                AppEvent(0.01, Dir.S2C, tls.build_application_data(b"m" * 4000)),
            ],
        )
        report = _run(EmailAnalyzer(), [session])
        assert report.protocols["SIMAP"].conns == 1
        (size,) = report.protocols["SIMAP"].flow_sizes_ent
        assert size > 4000

    def test_dominant_fraction(self):
        report = _run(EmailAnalyzer(), [self._smtp_session()])
        assert report.dominant_fraction() == 1.0

    def test_success_rates_keyed_by_locality(self):
        report = _run(EmailAnalyzer(), [self._smtp_session()])
        assert report.success["SMTP/ent"].successful == 1
        assert report.success["SMTP/wan"].total == 0
