"""Unit tests for study-job validation and the bounded JobManager."""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.jobs import JobManager, validate_study_request


# -- request validation ------------------------------------------------------


def test_defaults_fill_in():
    request = validate_study_request({})
    assert request["datasets"] == ("D0",)
    assert request["engine"] == "batch"
    assert 0 < request["scale"] <= 0.1


def test_unknown_keys_rejected():
    with pytest.raises(ValueError, match="unknown study parameters"):
        validate_study_request({"dataset": "D0"})  # the classic typo


@pytest.mark.parametrize(
    "payload",
    [
        {"scale": 0.0},
        {"scale": 0.5},           # above the service ceiling
        {"datasets": ["D9"]},
        {"datasets": []},
        {"max_windows": 0},
        {"engine": "quantum"},
        {"error_policy": "yolo"},
        "not-an-object",
    ],
)
def test_bad_values_rejected(payload):
    with pytest.raises(ValueError):
        validate_study_request(payload)


# -- the manager -------------------------------------------------------------


def test_jobs_run_and_reach_done(tmp_path):
    manager = JobManager(
        str(tmp_path), workers=2, queue_limit=4,
        runner=lambda request, store_dir: {"seed": request["seed"]},
    )
    manager.start()
    try:
        jobs = [
            manager.submit(validate_study_request({"seed": n}))
            for n in range(3)
        ]
        assert all(job is not None for job in jobs)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if all(job.terminal for job in jobs):
                break
            time.sleep(0.01)
        for n, job in enumerate(jobs):
            assert job.state == "done"
            assert job.result == {"seed": n}
            assert job.payload()["wall_s"] >= 0
    finally:
        manager.close()


def test_runner_exception_marks_failed_not_crashed(tmp_path):
    def boom(request, store_dir):
        raise RuntimeError("study exploded")

    manager = JobManager(str(tmp_path), workers=1, runner=boom)
    manager.start()
    try:
        job = manager.submit(validate_study_request({}))
        deadline = time.monotonic() + 10
        while not job.terminal and time.monotonic() < deadline:
            time.sleep(0.01)
        assert job.state == "failed"
        assert "study exploded" in job.error
        # The worker survived: the next job still runs.
        follow_up = manager.submit(validate_study_request({}))
        while not follow_up.terminal and time.monotonic() < deadline:
            time.sleep(0.01)
        assert follow_up.terminal
    finally:
        manager.close()


def test_full_queue_returns_none_immediately(tmp_path):
    release = threading.Event()
    manager = JobManager(
        str(tmp_path), workers=1, queue_limit=1,
        runner=lambda request, store_dir: (release.wait(10), {})[1],
    )
    manager.start()
    try:
        submitted = []
        refused = None
        started = time.monotonic()
        for _ in range(5):
            job = manager.submit(validate_study_request({}))
            if job is None:
                refused = True
                break
            submitted.append(job)
        assert refused, "queue never filled"
        assert time.monotonic() - started < 5, "submit must never block"
        assert manager.retry_after() >= 1
        # A refused job leaves no ghost in the table.
        assert len(manager.jobs()) == len(submitted)
    finally:
        release.set()
        manager.close()


def test_close_fails_queued_jobs(tmp_path):
    release = threading.Event()
    manager = JobManager(
        str(tmp_path), workers=1, queue_limit=3,
        runner=lambda request, store_dir: (release.wait(10), {})[1],
    )
    manager.start()
    first = manager.submit(validate_study_request({}))
    deadline = time.monotonic() + 5
    while first.state == "queued" and time.monotonic() < deadline:
        time.sleep(0.01)
    queued = [manager.submit(validate_study_request({})) for _ in range(2)]
    assert all(job is not None for job in queued)
    release.set()
    manager.close(wait=True)
    for job in queued:
        # Either it drained before close popped it, or close failed it —
        # never an eternal "queued" a poller would spin on.
        assert job.terminal
    assert manager.submit(validate_study_request({})) is None  # closed
