"""Tests for application classification (repro.analysis.classify)."""

from repro.analysis.classify import (
    CATEGORIES,
    classify_conn,
    classify_port,
    is_known_service_port,
)
from repro.analysis.conn import ConnRecord


def _conn(proto="tcp", resp_port=80, orig_port=40000, resp_ip=2, orig_ip=1):
    return ConnRecord(
        proto=proto, orig_ip=orig_ip, resp_ip=resp_ip,
        orig_port=orig_port, resp_port=resp_port, first_ts=0.0, last_ts=1.0,
    )


class TestPortMap:
    def test_table4_categories_complete(self):
        expected = {
            "backup", "bulk", "email", "interactive", "name", "net-file",
            "net-mgnt", "streaming", "web", "windows", "misc",
        }
        assert set(CATEGORIES) == expected

    def test_web(self):
        assert classify_port("tcp", 80) == ("HTTP", "web")
        assert classify_port("tcp", 443) == ("HTTPS", "web")

    def test_email(self):
        for port, name in ((25, "SMTP"), (143, "IMAP4"), (993, "IMAP/S"),
                           (110, "POP3"), (995, "POP/S"), (389, "LDAP")):
            assert classify_port("tcp", port) == (name, "email")

    def test_name_services(self):
        assert classify_port("udp", 53) == ("DNS", "name")
        assert classify_port("udp", 137) == ("Netbios-NS", "name")
        assert classify_port("udp", 427) == ("SrvLoc", "name")

    def test_windows(self):
        assert classify_port("tcp", 139) == ("Netbios-SSN", "windows")
        assert classify_port("tcp", 445) == ("CIFS/SMB", "windows")
        assert classify_port("tcp", 135) == ("DCE/RPC", "windows")

    def test_net_file(self):
        assert classify_port("tcp", 2049) == ("NFS", "net-file")
        assert classify_port("udp", 2049) == ("NFS", "net-file")
        assert classify_port("tcp", 524) == ("NCP", "net-file")

    def test_backup(self):
        assert classify_port("tcp", 497) == ("Dantz", "backup")
        assert classify_port("tcp", 13720) == ("Veritas", "backup")
        assert classify_port("tcp", 16384) == ("connected-backup", "backup")

    def test_x11_range(self):
        assert classify_port("tcp", 6000) == ("X11", "interactive")
        assert classify_port("tcp", 6063) == ("X11", "interactive")
        assert classify_port("tcp", 6064) is None

    def test_unknown(self):
        assert classify_port("tcp", 31337) is None
        assert classify_port("udp", 31337) is None

    def test_is_known(self):
        assert is_known_service_port("tcp", 22)
        assert not is_known_service_port("tcp", 31337)


class TestClassifyConn:
    def test_by_responder_port(self):
        proto, category = classify_conn(_conn(resp_port=25))
        assert (proto, category) == ("SMTP", "email")

    def test_symmetric_port_falls_back_to_orig(self):
        conn = _conn(proto="udp", resp_port=40000, orig_port=137)
        assert classify_conn(conn) == ("Netbios-NS", "name")

    def test_icmp(self):
        assert classify_conn(_conn(proto="icmp", resp_port=0)) == ("ICMP", "icmp")

    def test_other_fallback(self):
        assert classify_conn(_conn(resp_port=31337, orig_port=31000)) == ("other", "other-tcp")
        assert classify_conn(_conn(proto="udp", resp_port=31337, orig_port=31000)) == (
            "other", "other-udp",
        )

    def test_dynamic_windows_endpoints(self):
        conn = _conn(resp_port=1027, orig_port=40001, resp_ip=99)
        assert classify_conn(conn)[1] == "other-tcp"
        assert classify_conn(conn, {(99, 1027)}) == ("DCE/RPC", "windows")

    def test_dynamic_endpoint_requires_ip_match(self):
        conn = _conn(resp_port=1027, orig_port=40001, resp_ip=98)
        assert classify_conn(conn, {(99, 1027)})[1] == "other-tcp"
