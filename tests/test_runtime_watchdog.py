"""The worker watchdog: heartbeats, hang-kills, poison-unit quarantine.

The load-bearing guarantees: a worker that is *alive but silent* (no
heartbeat inside ``heartbeat_timeout``) is SIGKILLed and its unit
requeued — a fault class the deadline ``timeout`` cannot see, and one a
slow-but-beating worker must never be blamed for; and a unit whose work
deterministically kills its workers is quarantined after
``max_crashes`` hard deaths instead of grinding through every retry.
"""

from __future__ import annotations

import os
import signal
import time

from repro.analysis.errors import ErrorKind
from repro.runtime import (
    ProcessPoolScheduler,
    RetryPolicy,
    Task,
    TaskGraph,
    TelemetryLog,
)

# -- workers (module-level: they cross the fork boundary) --------------------


def stop_self_once_worker(spec):
    """Freezes its own process on the first attempt — SIGSTOP suspends
    every thread, heartbeats included, which is exactly what a worker
    wedged in an uninterruptible syscall looks like from outside.
    Succeeds on the second attempt."""
    marker = spec["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("frozen once")
        os.kill(os.getpid(), signal.SIGSTOP)
        time.sleep(60)  # unreachable unless resumed; the watchdog kills us
    return "recovered"


def slow_but_alive_worker(spec):
    """Takes longer than the heartbeat window but keeps beating (the
    daemon thread runs while the main thread sleeps)."""
    time.sleep(spec["seconds"])
    return "finished"


def crash_flag_worker(spec):
    """Dies hard when told to; otherwise succeeds."""
    if spec.get("crash"):
        os._exit(21)
    return "fine"


def hang_or_sleep_worker(spec):
    """Routes to the freezer or the slow-but-beating sleeper by payload."""
    if "marker" in spec:
        return stop_self_once_worker(spec)
    return slow_but_alive_worker(spec)


def crash_until_worker(spec):
    """Dies hard until the attempt counter file reaches ``crashes``."""
    counter = spec["counter"]
    seen = int(open(counter).read()) if os.path.exists(counter) else 0
    if seen < spec["crashes"]:
        with open(counter, "w") as handle:
            handle.write(str(seen + 1))
        os._exit(13)
    return {"survived_after": seen}


def fine_worker(spec):
    return "fine"


# -- hang detection ----------------------------------------------------------


def test_hung_worker_is_killed_and_requeued(tmp_path):
    graph = TaskGraph()
    graph.add(Task(key="wedged", payload={"marker": str(tmp_path / "marker")}))
    telemetry = TelemetryLog()
    scheduler = ProcessPoolScheduler(
        stop_self_once_worker,
        jobs=2,
        retry=RetryPolicy(max_retries=2, backoff=0.01, heartbeat_timeout=0.5),
        telemetry=telemetry,
    )
    results = scheduler.run(graph)
    assert results["wedged"].ok
    assert results["wedged"].value == "recovered"
    assert results["wedged"].attempts == 2
    hangs = telemetry.unit_events("unit_hang")
    assert len(hangs) == 1 and hangs[0]["unit"] == "wedged"
    retries = telemetry.unit_events("unit_retry")
    assert any("no heartbeat" in event["error"] for event in retries)


def test_hang_detection_is_distinct_from_deadline_timeout(tmp_path):
    """A hang-kill blames the silence, not the clock — and a worker that
    is slow but still beating is never shot."""
    graph = TaskGraph()
    graph.add(Task(key="wedged", payload={"marker": str(tmp_path / "marker")}))
    graph.add(Task(key="slow", payload={"seconds": 1.2}))
    scheduler = ProcessPoolScheduler(
        hang_or_sleep_worker,
        jobs=2,
        retry=RetryPolicy(
            max_retries=0, backoff=0.01, heartbeat_timeout=0.4, timeout=30.0
        ),
    )
    results = scheduler.run(graph)
    # No retries left: the single hang becomes the unit's failure, and
    # its detail names the heartbeat, not the deadline.
    assert results["wedged"].status == "failed"
    assert "no heartbeat" in results["wedged"].error.detail
    assert "timed out" not in results["wedged"].error.detail
    # Three heartbeat windows elapsed while "slow" slept; it lived.
    assert results["slow"].ok and results["slow"].value == "finished"


def test_heartbeats_do_not_disturb_results():
    graph = TaskGraph()
    for i in range(4):
        graph.add(Task(key=f"u{i}", payload={}))
    results = ProcessPoolScheduler(
        fine_worker,
        jobs=2,
        retry=RetryPolicy(max_retries=0, backoff=0.01, heartbeat_timeout=0.05),
    ).run(graph)
    assert all(result.ok and result.value == "fine" for result in results.values())


# -- poison-unit quarantine --------------------------------------------------


def test_poison_unit_is_quarantined_before_retries_run_out():
    graph = TaskGraph()
    graph.add(Task(key="poison", payload={"crash": True}))
    graph.add(Task(key="healthy", payload={}))
    telemetry = TelemetryLog()
    scheduler = ProcessPoolScheduler(
        crash_flag_worker,
        jobs=2,
        retry=RetryPolicy(max_retries=10, backoff=0.01, max_crashes=3),
        telemetry=telemetry,
    )
    results = scheduler.run(graph)
    poisoned = results["poison"]
    assert poisoned.status == "failed"
    assert poisoned.attempts == 3  # max_crashes, not max_retries + 1
    assert poisoned.error.kind is ErrorKind.WORKER_ERROR
    assert "poison unit" in poisoned.error.detail
    assert "exit code 21" in poisoned.error.detail
    assert results["healthy"].ok  # the pool never stalled
    events = telemetry.unit_events("unit_poisoned")
    assert len(events) == 1
    assert events[0]["unit"] == "poison" and events[0]["crashes"] == 3


def test_crash_budget_spans_attempts_but_spares_recoverers(tmp_path):
    """Two crashes then success stays under the default budget of 3 —
    the quarantine must not catch units that do recover."""
    graph = TaskGraph()
    graph.add(
        Task(key="flaky", payload={"counter": str(tmp_path / "count"), "crashes": 2})
    )
    results = ProcessPoolScheduler(
        crash_until_worker,
        jobs=2,
        retry=RetryPolicy(max_retries=3, backoff=0.01, max_crashes=3),
    ).run(graph)
    assert results["flaky"].ok and results["flaky"].attempts == 3


# -- heartbeat wind-down -----------------------------------------------------


def test_heartbeat_thread_stops_promptly_on_normal_exit():
    """A finished worker must not leave its beat thread running — in a
    long-lived daemon feed that thread would outlive the work and die
    noisily at interpreter teardown.  ``_child_main`` joins it out."""
    import multiprocessing
    import threading

    from repro.runtime.scheduler import _child_main

    parent, child = multiprocessing.Pipe(duplex=False)
    before = {t for t in threading.enumerate() if t.name == "hb"}
    _child_main(child, fine_worker, {}, heartbeat_interval=0.02)
    after = [
        t for t in threading.enumerate()
        if t.name == "hb" and t not in before and t.is_alive()
    ]
    assert after == []
    # The worker's result made it out past the interleaved beats.
    messages = []
    while parent.poll(0.01):
        try:
            messages.append(parent.recv())
        except EOFError:
            break  # the child closed its end on exit, as it should
    assert ("ok", "fine") in messages


def test_start_stop_heartbeat_round_trip():
    import multiprocessing
    import threading

    from repro.runtime.scheduler import start_heartbeat, stop_heartbeat

    parent, child = multiprocessing.Pipe(duplex=False)
    thread, stop = start_heartbeat(child, threading.Lock(), 0.01)
    deadline = time.monotonic() + 2.0
    while not parent.poll(0.01) and time.monotonic() < deadline:
        pass
    kind, ts = parent.recv()
    assert kind == "hb" and isinstance(ts, float)
    stop_heartbeat(thread, stop)
    assert not thread.is_alive()
    # None/None is a no-op for callers without a heartbeat.
    stop_heartbeat(None, None)
