"""Structural tests for the figure builders over the shared small study."""

from repro.report.figures import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
)


class TestFigure1:
    def test_rows_cover_category_order(self, small_study):
        table = figure1(small_study.breakdowns, by="bytes")
        labels = [row[0] for row in table.rows]
        assert labels[0] == "web"
        assert "other-udp" in labels
        assert len(labels) == 13

    def test_cells_carry_total_and_ent(self, small_study):
        table = figure1(small_study.breakdowns, by="conns")
        cell = table.cell("name", "D0")
        assert "(" in cell and cell.endswith(")")

    def test_bytes_and_conns_differ(self, small_study):
        by_bytes = figure1(small_study.breakdowns, by="bytes")
        by_conns = figure1(small_study.breakdowns, by="conns")
        assert by_bytes.cell("name", "D0") != by_conns.cell("name", "D0")


class TestCurveSelection:
    def test_figure2_uses_requested_datasets(self, small_study):
        fan_in, fan_out = figure2(small_study.analyses, datasets=("D0",))
        assert set(fan_in.series) == {"D0 - enterprise", "D0 - WAN"}
        assert set(fan_out.series) == {"D0 - enterprise", "D0 - WAN"}

    def test_figure2_skips_missing_datasets(self, small_study):
        fan_in, _ = figure2(small_study.analyses, datasets=("D9",))
        assert fan_in.series == {}

    def test_figure3_and_4_full_payload_only(self, small_study):
        for builder in (figure3, figure4):
            figure = builder(small_study.analyses)
            assert any(name.endswith("D0") for name in figure.series)
            assert not any(name.endswith("D1") for name in figure.series)

    def test_figure5_paper_curve_selection(self, small_study):
        smtp_fig, imaps_fig = figure5(small_study.analyses)
        # SMTP curves exist for every dataset...
        assert "ent:D0" in smtp_fig.series and "ent:D1" in smtp_fig.series
        # ... but the paper leaves D0 off the IMAP/S plot.
        assert "ent:D0" not in imaps_fig.series
        assert "ent:D1" in imaps_fig.series
        # WAN IMAP/S only plotted where busy servers exist (D1/D2).
        assert "wan:D1" in imaps_fig.series

    def test_figure6_matches_figure5_selection(self, small_study):
        smtp_fig, imaps_fig = figure6(small_study.analyses)
        assert "ent:D0" in smtp_fig.series
        assert "ent:D0" not in imaps_fig.series

    def test_figure7_and_8_full_payload_only(self, small_study):
        nfs_fig, ncp_fig = figure7(small_study.analyses)
        assert set(nfs_fig.series) == {"ent:D0"}
        figures = figure8(small_study.analyses)
        assert set(figures) == {"nfs_request", "nfs_reply", "ncp_request", "ncp_reply"}
        assert set(figures["nfs_request"].series) == {"ent:D0"}


class TestLoadFigures:
    def test_figure9_series(self, small_study):
        peaks, util = figure9(small_study.analyses["D0"])
        assert set(peaks.series) == {"1 second", "10 seconds", "60 seconds"}
        assert set(util.series) == {
            "minimum", "p25", "median", "p75", "mean", "maximum",
        }
        assert len(peaks.series["1 second"]) == len(small_study.analyses["D0"].traces)

    def test_figure10_series(self, small_study):
        figure = figure10(small_study.analyses)
        assert set(figure.series) == {"ENT", "WAN"}
        assert all(0 <= rate < 0.5 for rates in figure.series.values() for rate in rates)
