"""The store wired through the study pipeline and the CLI.

The load-bearing guarantees: a warm-cache run renders byte-identical
tables and figures while never opening a pcap; same-seed runs shard to
byte-identical stores; mutated trace bytes can never be served a stale
cached analysis; and a damaged store degrades by policy — strict raises,
tolerant falls back to a cold run.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

import repro.analysis.engine as engine_module
from repro.core.cli import main
from repro.core.study import analyze_dataset, run_study
from repro.gen.faults import corrupt_dataset
from repro.store import ConnStore, ShardError

_PARAMS = dict(seed=7, scale=0.004, datasets=("D0",), max_windows=4)

_TABLES = (1, 2, 3, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)


def _forbid_pcap_parsing(monkeypatch):
    """Make any pcap ingestion attempt fail loudly."""

    def explode(self, path):
        raise AssertionError(f"warm run opened a pcap: {path}")

    monkeypatch.setattr(
        engine_module.DatasetAnalyzer, "process_pcap", explode
    )


def test_warm_run_matches_cold_without_touching_pcaps(
    store_study, monkeypatch
):
    cold, root = store_study
    _forbid_pcap_parsing(monkeypatch)
    warm = run_study(store_dir=str(root), **_PARAMS)
    for number in _TABLES:
        assert warm.render_table(number) == cold.render_table(number), number
    for number in range(1, 11):
        assert warm.render_figure(number) == cold.render_figure(number), number
    assert warm.render_data_quality() == cold.render_data_quality()
    assert warm.config.store_dir == str(root)


def test_no_reuse_store_forces_a_cold_run(store_study, tmp_path):
    cold, root = store_study
    private = tmp_path / "store"
    shutil.copytree(root, private)
    rerun = run_study(store_dir=str(private), reuse_store=False, **_PARAMS)
    for number in _TABLES:
        assert rerun.render_table(number) == cold.render_table(number), number


def test_same_seed_runs_shard_byte_identically(tmp_path):
    digests = []
    for name in ("a", "b"):
        root = tmp_path / name
        run_study(seed=11, scale=0.004, datasets=("D0",), max_windows=2,
                  store_dir=str(root))
        digests.append(sorted(p.name for p in root.glob("objects/*/*.rcs")))
    assert digests[0] == digests[1]
    assert digests[0]  # non-empty: 2 trace shards + 1 dataset shard


def test_changed_parameters_miss_the_generation_cache(store_study, monkeypatch):
    _, root = store_study
    _forbid_pcap_parsing(monkeypatch)
    with pytest.raises(AssertionError, match="opened a pcap"):
        run_study(seed=8, scale=0.004, datasets=("D0",), max_windows=4,
                  store_dir=str(root))


def test_corrupted_traces_miss_the_content_cache(tmp_path):
    """``corrupt_dataset`` mutations must force a cold re-parse."""
    root = tmp_path / "store"
    params = dict(seed=5, scale=0.004, datasets=("D0",), max_windows=2,
                  store_dir=str(root))
    run_study(**params)
    store = ConnStore(root)
    keys = {manifest["key"] for manifest in store.manifests()}
    assert len(keys) == 1
    # Wire-legal faults only, so even a strict analysis succeeds — the
    # point is the key, not the defect handling.
    mutated = run_study(
        mutate_traces=lambda name, traces: corrupt_dataset(
            traces, seed=5, faults=["duplicate_records"]
        ),
        error_policy="tolerant",
        **params,
    )
    keys_after = {manifest["key"] for manifest in store.manifests()}
    assert len(keys_after) == 2 and keys < keys_after
    assert mutated.analyses["D0"].conns


def test_damaged_store_strict_raises_tolerant_falls_back(store_study, tmp_path):
    cold, root = store_study
    private = tmp_path / "store"
    shutil.copytree(root, private)
    victim = sorted(private.glob("objects/*/*.rcs"))[0]
    victim.write_bytes(victim.read_bytes()[:-16])
    with pytest.raises(ShardError):
        run_study(store_dir=str(private), **_PARAMS)
    recovered = run_study(
        store_dir=str(private), error_policy="tolerant", **_PARAMS
    )
    for number in _TABLES:
        assert recovered.render_table(number) == cold.render_table(number)


def test_analyze_dataset_reuses_the_content_cache(store_study, monkeypatch, tmp_path):
    """A direct ``analyze_dataset`` call hits the same cache by content."""
    cold, root = store_study
    out = tmp_path / "traces"
    regenerated = run_study(out_dir=str(out), **_PARAMS)
    _forbid_pcap_parsing(monkeypatch)
    analysis = analyze_dataset(
        "D0",
        regenerated.traces["D0"],
        known_scanners=tuple(sorted(cold.analyses["D0"].scanner_sources)),
        store=ConnStore(root),
    )
    assert analysis.conns == cold.analyses["D0"].conns


def test_out_dir_is_created_with_parents(tmp_path):
    target = tmp_path / "fresh" / "nested" / "dir"
    results = run_study(out_dir=str(target), **_PARAMS)
    pcaps = list((target / "D0").glob("*.pcap"))
    assert len(pcaps) == len(results.traces["D0"].traces)


def test_warm_run_rewrites_trace_paths_under_out_dir(store_study, tmp_path):
    _, root = store_study
    out = tmp_path / "kept"
    warm = run_study(store_dir=str(root), out_dir=str(out), **_PARAMS)
    for trace in warm.traces["D0"].traces:
        assert Path(trace.path).is_absolute()
        assert str(trace.path).startswith(str(out))


# -- CLI --------------------------------------------------------------------


def test_cli_store_ls_and_gc(store_study, tmp_path, capsys):
    _, root = store_study
    private = tmp_path / "store"
    shutil.copytree(root, private)
    assert main(["store", "ls", "--store-dir", str(private)]) == 0
    out = capsys.readouterr().out
    assert "1 cached analyses" in out
    assert "D0" in out
    assert main(["store", "gc", "--store-dir", str(private)]) == 0
    assert "removed 0 unreferenced objects" in capsys.readouterr().out


def test_cli_store_query(store_study, capsys):
    _, root = store_study
    assert main([
        "store", "query", "--store-dir", str(root),
        "--by", "proto", "--locality", "ent-ent",
    ]) == 0
    out = capsys.readouterr().out
    assert "store query by proto" in out
    assert "total" in out


def test_cli_study_accepts_store_flags(store_study, capsys):
    _, root = store_study
    assert main([
        "--seed", "7", "--scale", "0.004", "--datasets", "D0",
        "--max-windows", "4", "--store-dir", str(root),
        "--tables", "2", "--figures",
    ]) == 0
    assert "Table 2" in capsys.readouterr().out
