"""Tests for locality/origin analysis and host-pair success accounting."""

from repro.analysis.conn import ConnRecord, ConnState, Locality, locality_of
from repro.analysis.failures import host_pair_success, raw_connection_success
from repro.analysis.locality import fan_stats, origin_breakdown
from repro.util.addr import ip_to_int

_ENT_A = ip_to_int("131.243.1.10")
_ENT_B = ip_to_int("131.243.2.20")
_ENT_C = ip_to_int("131.243.3.30")
_WAN_X = ip_to_int("8.8.8.8")
_MCAST = ip_to_int("224.2.127.254")


def _conn(orig, resp, state=ConnState.SF, orig_port=40000, resp_port=80):
    return ConnRecord(
        proto="tcp", orig_ip=orig, resp_ip=resp, orig_port=orig_port,
        resp_port=resp_port, first_ts=0.0, last_ts=1.0, state=state,
    )


class TestLocality:
    def test_ent_ent(self):
        assert locality_of(_ENT_A, _ENT_B) == Locality.ENT_ENT

    def test_ent_wan(self):
        assert locality_of(_ENT_A, _WAN_X) == Locality.ENT_WAN

    def test_wan_ent(self):
        assert locality_of(_WAN_X, _ENT_A) == Locality.WAN_ENT

    def test_multicast_internal_source(self):
        assert locality_of(_ENT_A, _MCAST) == Locality.MCAST_INT

    def test_multicast_external_source(self):
        assert locality_of(_WAN_X, _MCAST) == Locality.MCAST_EXT

    def test_broadcast_treated_as_multicast_class(self):
        assert locality_of(_ENT_A, 0xFFFFFFFF) == Locality.MCAST_INT

    def test_conn_helpers(self):
        conn = _conn(_ENT_A, _WAN_X)
        assert conn.involves_wan()
        assert not _conn(_ENT_A, _ENT_B).involves_wan()


class TestOriginBreakdown:
    def test_fractions(self):
        conns = (
            [_conn(_ENT_A, _ENT_B)] * 7
            + [_conn(_ENT_A, _WAN_X)] * 2
            + [_conn(_WAN_X, _ENT_A)] * 1
        )
        breakdown = origin_breakdown(conns)
        assert breakdown.fraction(Locality.ENT_ENT) == 0.7
        assert breakdown.fraction(Locality.ENT_WAN) == 0.2
        assert breakdown.fraction(Locality.WAN_ENT) == 0.1

    def test_empty(self):
        assert origin_breakdown([]).fraction(Locality.ENT_ENT) == 0.0


class TestFanStats:
    def test_fan_out_counts_distinct_responders(self):
        conns = [
            _conn(_ENT_A, _ENT_B),
            _conn(_ENT_A, _ENT_B),  # duplicate peer
            _conn(_ENT_A, _ENT_C),
            _conn(_ENT_A, _WAN_X),
        ]
        stats = fan_stats(conns)
        assert stats.fan_out_ent.max == 2
        assert stats.fan_out_wan.max == 1

    def test_fan_in_counts_distinct_originators(self):
        conns = [_conn(_ENT_A, _ENT_C), _conn(_ENT_B, _ENT_C)]
        stats = fan_stats(conns)
        assert stats.fan_in_ent.max == 2

    def test_only_internal_fractions(self):
        conns = [
            _conn(_ENT_A, _ENT_B),  # A: internal-only fan-out
            _conn(_ENT_C, _ENT_B),
            _conn(_ENT_C, _WAN_X),  # C: mixed fan-out
        ]
        stats = fan_stats(conns)
        assert stats.only_internal_fan_out == 0.5

    def test_wan_originators_not_counted_as_monitored_fanout(self):
        conns = [_conn(_WAN_X, _ENT_A)]
        stats = fan_stats(conns)
        assert len(stats.fan_out_ent) == 0
        assert stats.fan_in_wan.max == 1


class TestHostPairSuccess:
    def test_pair_scored_once(self):
        conns = [_conn(_ENT_A, _ENT_B, ConnState.SF)] * 10
        outcome = host_pair_success(conns)
        assert outcome.total == 1
        assert outcome.successful == 1

    def test_retry_storm_counts_one_failed_pair(self):
        """The NCP scenario: endless rejected retries = ONE failed pair."""
        conns = [_conn(_ENT_A, _ENT_B, ConnState.REJ)] * 50 + [
            _conn(_ENT_A, _ENT_C, ConnState.SF)
        ]
        outcome = host_pair_success(conns)
        assert outcome.total == 2
        assert outcome.successful == 1
        assert outcome.rejected == 1
        assert outcome.success_rate == 0.5

    def test_raw_metric_skewed_by_retries(self):
        """The ablation: the naive metric collapses under retry storms."""
        conns = [_conn(_ENT_A, _ENT_B, ConnState.REJ)] * 50 + [
            _conn(_ENT_A, _ENT_C, ConnState.SF)
        ]
        raw = raw_connection_success(conns)
        pair = host_pair_success(conns)
        assert raw.success_rate < 0.05
        assert pair.success_rate == 0.5

    def test_majority_outcome_wins(self):
        conns = [_conn(_ENT_A, _ENT_B, ConnState.SF)] * 3 + [
            _conn(_ENT_A, _ENT_B, ConnState.REJ)
        ]
        outcome = host_pair_success(conns)
        assert outcome.successful == 1

    def test_unanswered_pairs(self):
        conns = [_conn(_ENT_A, _ENT_B, ConnState.S0)] * 3
        outcome = host_pair_success(conns)
        assert outcome.unanswered == 1
        assert outcome.unanswered_rate == 1.0

    def test_select_filter(self):
        conns = [
            _conn(_ENT_A, _ENT_B, ConnState.SF, resp_port=445),
            _conn(_ENT_A, _ENT_B, ConnState.REJ, resp_port=139),
        ]
        outcome = host_pair_success(conns, select=lambda c: c.resp_port == 445)
        assert outcome.total == 1
        assert outcome.successful == 1

    def test_empty(self):
        outcome = host_pair_success([])
        assert outcome.success_rate == 0.0
