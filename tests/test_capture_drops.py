"""Failure-injection tests: capture drops and corrupted traces.

§2 of the paper suspects its capture silently lost packets ("a TCP
receiver acknowledged data not present in the trace").  The analyzers
must degrade gracefully — connection accounting survives, stream gaps
get padded, nothing crashes.
"""

import pytest

from repro.analysis.engine import DatasetAnalyzer
from repro.analysis.analyzers import DEFAULT_ANALYZERS
from repro.gen.capture import generate_dataset
from repro.net.packet import CapturedPacket


@pytest.fixture(scope="module")
def dropped_dataset(enterprise, tmp_path_factory):
    out = tmp_path_factory.mktemp("drops")
    return generate_dataset(
        "D0", enterprise, out, seed=5, scale=0.004, max_windows=6,
        capture_drop_rate=0.02,
    )


class TestCaptureDrops:
    def test_drop_rate_applied(self, enterprise, tmp_path):
        clean = generate_dataset("D0", enterprise, tmp_path / "clean", seed=5,
                                 scale=0.004, max_windows=4)
        lossy = generate_dataset("D0", enterprise, tmp_path / "lossy", seed=5,
                                 scale=0.004, max_windows=4,
                                 capture_drop_rate=0.05)
        assert lossy.total_packets < clean.total_packets
        # Roughly the configured fraction, not a catastrophic loss.
        ratio = lossy.total_packets / clean.total_packets
        assert 0.90 < ratio < 0.99

    def test_analysis_survives_drops(self, dropped_dataset):
        engine = DatasetAnalyzer(
            "D0", full_payload=True, analyzers=[cls() for cls in DEFAULT_ANALYZERS]
        )
        for trace in dropped_dataset.traces:
            engine.process_pcap(trace.path)
        analysis = engine.finish()
        assert len(analysis.conns) > 50
        # Every analyzer still produces a result object.
        assert set(analysis.analyzer_results) == {a().name for a in DEFAULT_ANALYZERS}

    def test_drops_do_not_inflate_keepalive_counts(self, dropped_dataset):
        """A dropped original + seen retransmission must not be counted
        as a keep-alive (only true 1-byte probes are)."""
        engine = DatasetAnalyzer("D0", full_payload=True)
        for trace in dropped_dataset.traces:
            engine.process_pcap(trace.path)
        analysis = engine.finish()
        keepalives = sum(c.keepalive_retransmits for c in analysis.conns)
        data_pkts = sum(c.total_pkts for c in analysis.conns if c.proto == "tcp")
        assert keepalives < 0.2 * data_pkts


class TestCorruptTraces:
    def test_mid_file_garbage_raises_not_hangs(self, enterprise, tmp_path):
        traces = generate_dataset("D0", enterprise, tmp_path, seed=5,
                                  scale=0.002, max_windows=2)
        path = traces.traces[0].path
        data = bytearray(path.read_bytes())
        # Truncate mid-record: the reader must raise, not loop or return
        # silently short data.
        del data[len(data) // 2 :]
        path.write_bytes(bytes(data))
        engine = DatasetAnalyzer("D0")
        with pytest.raises(ValueError):
            engine.process_pcap(path)

    def test_runt_frames_flagged_by_decoder(self):
        """The decoder's contract is "never raises on truncation": a frame
        too short for an Ethernet header comes back flagged, not thrown."""
        from repro.net.packet import decode_packet

        decoded = decode_packet(CapturedPacket(ts=0.0, data=b"\x01\x02", wire_len=2))
        assert decoded.runt
        assert decoded.ethertype == -1
        assert not decoded.is_ip
