"""Conditional GETs: ETag issuance, If-None-Match, and 304 semantics.

The ETag is the response cache's content key, which hashes the request
plus the store-state token — so a 304 is exactly as trustworthy as a
cache hit, and anything that leaves the manifest listing alone
(compaction, rebalance) leaves every client's cached entity valid.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.runtime.telemetry import TelemetryLog
from repro.service import ReproService
from repro.service.app import _etag_match


def _get(port: int, path: str, headers: dict | None = None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        raw = response.read()
        lowered = {k.lower(): v for k, v in response.getheaders()}
        return response.status, lowered, json.loads(raw) if raw else None
    finally:
        conn.close()


@pytest.fixture(scope="module")
def service(store_study, tmp_path_factory):
    _, root = store_study
    svc = ReproService(
        str(root),
        port=0,
        job_workers=1,
        job_queue=2,
        job_runner=lambda request, store_dir: {"ok": True},
        telemetry=TelemetryLog(
            path=tmp_path_factory.mktemp("etag-telemetry") / "svc.jsonl"
        ),
    )
    svc.start_background()
    yield svc
    svc.shutdown()


def test_cacheable_responses_carry_a_stable_etag(service):
    status, headers, body = _get(service.port, "/query?by=proto")
    assert status == 200 and body is not None
    etag = headers["etag"]
    assert etag.startswith('"') and etag.endswith('"')
    again_status, again_headers, _ = _get(service.port, "/query?by=proto")
    assert again_status == 200
    assert again_headers["etag"] == etag
    # A different request is a different entity.
    _, other_headers, _ = _get(service.port, "/query?by=category")
    assert other_headers["etag"] != etag


def test_if_none_match_returns_an_empty_304(service):
    _, headers, _ = _get(service.port, "/studies")
    etag = headers["etag"]
    conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=30)
    try:
        conn.request("GET", "/studies", headers={"If-None-Match": etag})
        response = conn.getresponse()
        raw = response.read()
    finally:
        conn.close()
    assert response.status == 304
    assert raw == b""
    lowered = {k.lower(): v for k, v in response.getheaders()}
    assert lowered["etag"] == etag
    assert lowered["x-cache"] == "hit"


def test_stale_etag_gets_the_full_entity(service):
    status, headers, body = _get(
        service.port, "/query?by=proto", headers={"If-None-Match": '"stale"'}
    )
    assert status == 200 and body is not None
    assert headers["etag"] != '"stale"'


def test_star_matches_any_entity(service):
    status, _, body = _get(
        service.port, "/studies", headers={"If-None-Match": "*"}
    )
    assert status == 304 and body is None


def test_etag_list_and_weak_prefixes_match(service):
    _, headers, _ = _get(service.port, "/studies")
    etag = headers["etag"]
    status, _, _ = _get(
        service.port, "/studies",
        headers={"If-None-Match": f'"nope", W/{etag}'},
    )
    assert status == 304


def test_cache_bypass_ignores_the_conditional(service):
    _, headers, _ = _get(service.port, "/studies")
    etag = headers["etag"]
    status, bypass_headers, body = _get(
        service.port, "/studies?cache_bypass=1",
        headers={"If-None-Match": etag},
    )
    assert status == 200 and body is not None
    assert bypass_headers["x-cache"] == "bypass"
    # Bypass still advertises the ETag so clients can revalidate later.
    assert bypass_headers["etag"] == etag


def test_etag_match_helper_covers_the_grammar():
    etag = '"abc123"'
    assert _etag_match(etag, etag)
    assert _etag_match(f"W/{etag}", etag)
    assert _etag_match(f'"zzz", {etag}', etag)
    assert _etag_match("*", etag)
    assert not _etag_match('"zzz"', etag)
    assert not _etag_match(None, etag)
