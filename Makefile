# Convenience targets for the reproduction.

.PHONY: install test bench examples outputs clean

install:
	pip install -e .

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for ex in examples/*.py; do echo "== $$ex"; python $$ex; done

outputs:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf benchmarks/output .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
