# Convenience targets for the reproduction.

.PHONY: install test lint verify bench store-bench runtime-bench stream-bench service-bench tier-bench replica-bench chaos-soak daemon-soak examples outputs clean

install:
	pip install -e .

test:
	pytest tests/ -q

# Ruff when available; otherwise fall back to a syntax pass so the
# target still catches broken files on minimal containers.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; falling back to python -m compileall"; \
		python -m compileall -q src tests benchmarks; \
	fi

# The tier-1 gate: the full suite, failing fast.
verify:
	PYTHONPATH=src python -m pytest -x -q

bench:
	pytest benchmarks/ --benchmark-only

# Cold generate-and-parse vs warm shard-backed study (asserts >=3x).
store-bench:
	PYTHONPATH=src python -m pytest benchmarks/test_store_roundtrip.py -q -s

# Sequential vs --jobs N study wall clock; writes BENCH_runtime.json.
runtime-bench:
	PYTHONPATH=src python -m pytest benchmarks/test_throughput.py::TestRuntimeScaling -q -s

# Batch vs streaming engine throughput + peak memory; writes BENCH_stream.json.
stream-bench:
	PYTHONPATH=src python -m pytest benchmarks/test_stream_bench.py -q -s

# HTTP service under concurrent load: p50/p95/p99 latency for >=8
# simulated users, cache hit >=5x faster than cold (byte-identical),
# saturated job queue answering 429; writes BENCH_service.json.
service-bench:
	PYTHONPATH=src python -m pytest benchmarks/test_service_bench.py -q -s

# Hot-tier reads vs the cold multi-root path (floor 3x) and checkpoint
# batch-chain compaction; writes BENCH_tier.json.
tier-bench:
	PYTHONPATH=src python -m pytest benchmarks/test_tier_bench.py -q -s

# Read latency with one of three roots dead (replicas=2, ceiling 5x over
# healthy) and bulk replica-repair throughput; writes BENCH_replica.json.
replica-bench:
	PYTHONPATH=src python -m pytest benchmarks/test_replica_bench.py -q -s

# Crash-point soak: fixed-seed fault schedules kill CLI runs
# mid-publication and mid-checkpoint, resumed runs must be byte-identical
# to clean ones, and a post-soak scrub must come back clean.
chaos-soak:
	PYTHONPATH=src python -m pytest benchmarks/test_chaos_soak.py -q -s

# Daemon chaos soak: SIGKILL a paced 2-tenant daemon mid-window under a
# fixed-seed fault plane, restart it, per-tenant window digests must be
# byte-identical to an uninterrupted run; a poison tenant must be
# quarantined without touching its neighbor; post-soak store scrubs clean.
daemon-soak:
	PYTHONPATH=src python -m pytest benchmarks/test_daemon_soak.py -q -s

examples:
	for ex in examples/*.py; do echo "== $$ex"; python $$ex; done

outputs:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf benchmarks/output .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
