"""Daemon chaos soak: SIGKILL the live daemon, restart, compare digests.

Not a paper artifact — this drives the always-on ``repro-study daemon``
through the failure drill its design promises to survive:

* a 2-tenant daemon, paced so the kill lands **mid-window**, running
  under a fixed-seed fault plane (an injected checkpoint-write EIO on
  one tenant), is SIGKILLed and restarted — the per-tenant rolling-
  window digests must be **byte-identical** to an uninterrupted run's;
* a poison tenant (a chaos crash rule that re-arms in every restarted
  feed) is quarantined after three consecutive crashes while its
  neighbor's digest is untouched, and a chaos-free restart finishes the
  quarantined tenant from its published markers;
* after all of it, ``store gc`` + ``repro store scrub`` come back clean.

Run via ``make daemon-soak``.  CI runs it as the daemon chaos smoke.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.chaos import CHAOS_ENV, FaultKind, FaultPlane, FaultRule
from repro.core.cli import main as cli_main
from repro.daemon import tenant_digest
from repro.gen.capture import generate_dataset
from repro.gen.topology import Enterprise
from repro.runtime.telemetry import read_events

_REPO = Path(__file__).resolve().parent.parent

#: One fixed seed for the whole soak: the acceptance bar is determinism.
_SEED = 7


@pytest.fixture(scope="module")
def traces(tmp_path_factory):
    out = tmp_path_factory.mktemp("daemon-soak-traces")
    dataset = generate_dataset(
        "D0", Enterprise(seed=_SEED), out, seed=_SEED,
        scale=0.004, max_windows=3,
    )
    return [trace.path for trace in dataset.traces]


def _daemon_args(store: Path, traces, **extra: str) -> list[str]:
    args = [
        "daemon",
        "--store-dir", str(store),
        "--tenant", f"alpha={traces[0]}",
        "--tenant", f"beta={traces[1]}",
        "--checkpoint-every", "200",
        "--backoff", "0.05",
    ]
    for flag, value in extra.items():
        args += [f"--{flag.replace('_', '-')}", value]
    return args


def _run(args: list[str], plane: FaultPlane | None = None):
    env = dict(os.environ, PYTHONPATH="src")
    env.pop(CHAOS_ENV, None)
    if plane is not None:
        env[CHAOS_ENV] = plane.to_env()
    return subprocess.run(
        [sys.executable, "-m", "repro.core.cli", *args],
        env=env, cwd=_REPO, capture_output=True, text=True, timeout=600,
    )


def _assert_store_scrubs_clean(store: Path) -> None:
    """Post-soak: only verifiable state, zero stranded temp files."""
    at = ["--store-dir", str(store), "--tmp-grace", "0"]
    assert cli_main(["store", "gc"] + at) == 0
    assert cli_main(["store", "scrub"] + at) == 0


@pytest.fixture(scope="module")
def reference(traces, tmp_path_factory):
    """Per-tenant digests of an uninterrupted, fault-free run."""
    store = tmp_path_factory.mktemp("daemon-soak-ref")
    proc = _run(_daemon_args(store, traces))
    assert proc.returncode == 0, proc.stderr
    return {name: tenant_digest(store, name) for name in ("alpha", "beta")}


def test_sigkill_mid_window_then_restart_matches_reference(
    traces, tmp_path, reference, emit
):
    store = tmp_path / "store"
    # The fault plane rides along: tenant alpha's first checkpoint write
    # fails with EIO in every incarnation — the tolerant policy degrades
    # checkpointing, never the published windows.
    plane = FaultPlane(seed=_SEED, rules=[FaultRule(
        FaultKind.EIO, op="publish", path="*ckpt-daemon-alpha*", at=(1,),
    )])
    env = dict(os.environ, PYTHONPATH="src", **{CHAOS_ENV: plane.to_env()})
    # Paced feeds so the SIGKILL lands mid-window, mid-trace.  The
    # daemon gets its own session so the kill takes the forked feed
    # processes down with it — a hard machine-style stop, no drain.
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.core.cli",
         *_daemon_args(store, traces, packet_rate="250")],
        env=env, cwd=_REPO, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        time.sleep(1.5)
        os.killpg(daemon.pid, signal.SIGKILL)
        daemon.wait(timeout=30)
    finally:
        if daemon.poll() is None:
            os.killpg(daemon.pid, signal.SIGKILL)
    assert daemon.returncode == -signal.SIGKILL
    killed = {name: tenant_digest(store, name) for name in reference}
    assert killed != reference  # the kill really landed mid-run

    # Restart at full speed, chaos-free: resumes checkpoints/markers.
    resumed = _run(_daemon_args(store, traces))
    assert resumed.returncode == 0, resumed.stderr
    for name, digest in reference.items():
        assert tenant_digest(store, name) == digest
    _assert_store_scrubs_clean(store)
    emit(
        "daemon soak: 2-tenant daemon SIGKILLed mid-window under a "
        "checkpoint-EIO fault plane; restart resumed to byte-identical "
        "per-tenant window digests, post-soak store clean"
    )


def test_poison_tenant_quarantined_then_recovers_chaos_free(
    traces, tmp_path, reference, emit
):
    store = tmp_path / "store"
    telemetry = tmp_path / "events.jsonl"
    # Beta's first window publish kills the feed; the per-process fault
    # counter re-arms in every restarted child, so the crash repeats
    # until the supervisor calls it poison.
    plane = FaultPlane(seed=_SEED, rules=[FaultRule(
        FaultKind.CRASH, op="publish", path="*daemon/beta/windows/*", at=(1,),
    )])
    poisoned = _run(
        _daemon_args(store, traces, telemetry=str(telemetry)), plane=plane
    )
    assert poisoned.returncode == 1  # a quarantined tenant is not success
    assert "beta: quarantined" in poisoned.stdout
    assert "alpha: done" in poisoned.stdout
    events, _ = read_events(telemetry)
    quarantined = [e for e in events if e["event"] == "feed_quarantined"]
    assert len(quarantined) == 1
    assert quarantined[0]["tenant"] == "beta"
    assert quarantined[0]["crashes"] == 3
    assert quarantined[0]["kind"] == "worker_error"
    record = json.loads(
        (store / "daemon" / "beta" / "quarantined.json").read_text()
    )
    assert record["kind"] == "worker_error"
    # The healthy tenant never noticed.
    assert tenant_digest(store, "alpha") == reference["alpha"]

    # Chaos-free restart: alpha skips by marker, beta finally finishes,
    # and both digests match the uninterrupted reference.
    recovered = _run(_daemon_args(store, traces))
    assert recovered.returncode == 0, recovered.stderr
    for name, digest in reference.items():
        assert tenant_digest(store, name) == digest
    _assert_store_scrubs_clean(store)
    emit(
        "daemon soak: poison tenant quarantined after 3 consecutive "
        "injected crashes (worker_error), neighbor digest untouched; "
        "chaos-free restart recovered both tenants, store clean"
    )
