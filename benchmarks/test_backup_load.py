"""Benches for backup (Table 15) and network load (Figures 9-10, §6)."""

from repro.analysis.load import load_report
from repro.report import tables
from repro.report.figures import figure9, figure10


class TestTable15:
    def test_table15(self, study, benchmark, emit):
        table = benchmark(lambda: tables.table15(study.analyses))
        emit(table.render())
        totals = {}
        for name in ("VERITAS-BACKUP-CTRL", "VERITAS-BACKUP-DATA", "DANTZ",
                     "CONNECTED-BACKUP"):
            totals[name] = sum(
                analysis.analyzer_results["backup"].bytes(name)
                for analysis in study.analyses.values()
            )
        # Dantz and Veritas dwarf the Connected external service.
        assert totals["DANTZ"] > totals["CONNECTED-BACKUP"]
        assert totals["VERITAS-BACKUP-DATA"] > totals["CONNECTED-BACKUP"]
        # Control connections are many but tiny.
        assert totals["VERITAS-BACKUP-CTRL"] < 0.01 * totals["VERITAS-BACKUP-DATA"]

    def test_backup_directionality(self, study, benchmark, emit):
        benchmark(lambda: [
            a.analyzer_results["backup"].reverse_fraction("DANTZ")
            for a in study.analyses.values()
        ])
        """Veritas data flows strictly client->server; Dantz runs big
        volumes in both directions (§5.2.3)."""
        lines = []
        veritas_reverse = []
        dantz_reverse = []
        for name, analysis in study.analyses.items():
            report = analysis.analyzer_results["backup"]
            veritas_reverse.append(report.reverse_fraction("VERITAS-BACKUP-DATA"))
            dantz_reverse.append(report.reverse_fraction("DANTZ"))
            lines.append(
                f"{name}: Veritas reverse {veritas_reverse[-1]:.1%}, "
                f"Dantz reverse {dantz_reverse[-1]:.1%}, "
                f"Dantz bidirectional conns {report.bidirectional_fraction('DANTZ'):.0%}"
            )
        assert max(veritas_reverse) < 0.05
        assert max(dantz_reverse) > 0.1
        emit("\n".join(lines))

    def test_backup_volume_swing(self, study, benchmark, emit):
        benchmark(lambda: study.breakdowns["D0"].byte_fraction("backup"))
        """Backup volume varies ~5x between D0 and D4 (Figure 1a note)."""
        def backup_share(name):
            breakdown = study.breakdowns[name]
            return breakdown.byte_fraction("backup")

        d0, d4 = backup_share("D0"), backup_share("D4")
        emit(f"backup byte share: D0={d0:.1%} D4={d4:.1%}")
        assert d0 > d4


class TestFigure9:
    def test_figure9(self, study, benchmark, emit):
        peaks, util = benchmark(lambda: study.figure(9))
        emit(peaks.render() + "\n\n" + util.render())
        report = load_report(study.analyses["D4"].traces)
        # Peaks fall as the averaging window grows (short-lived saturation).
        p1 = report.peak_cdfs[1.0].median
        p10 = report.peak_cdfs[10.0].median
        p60 = report.peak_cdfs[60.0].median
        assert p1 >= p10 >= p60
        # Typical usage is 1-2 orders of magnitude below the peak.
        median_util = report.utilization_cdfs["median"].median
        max_util = report.utilization_cdfs["maximum"].median
        assert max_util > 5 * max(median_util, 1e-6)
        # Far below the 100 Mbps capacity.
        assert report.peak_cdfs[60.0].max < 100.0


class TestFigure10:
    def test_figure10(self, study, benchmark, emit):
        figure = benchmark(lambda: figure10(study.analyses))
        emit(figure.render())
        ent = figure.series["ENT"]
        wan = figure.series["WAN"]
        assert ent, "no enterprise traces with >=1000 TCP packets"
        # The vast majority of traces stay below 1% retransmissions.
        below_1pct = sum(1 for rate in ent if rate < 0.01) / len(ent)
        assert below_1pct > 0.7
        # Internal rates sometimes eclipse 2% (the lossy Veritas outlier).
        assert max(ent) > 0.02
        # WAN rates generally exceed internal ones.
        if len(wan) >= 5:
            wan_mean = sum(wan) / len(wan)
            ent_typical = sorted(ent)[len(ent) // 2]
            assert wan_mean > ent_typical

    def test_keepalive_exclusion_matters(self, study, benchmark, emit):
        benchmark(lambda: sum(
            c.keepalive_retransmits for c in study.analyses["D1"].conns
        ))
        """Ablation: counting 1-byte keep-alives as losses inflates rates."""
        analysis = study.analyses["D1"]
        with_keepalives = 0
        without = 0
        packets = 0
        for conn in analysis.conns:
            if conn.proto != "tcp" or conn.involves_wan(analysis.internal_net):
                continue
            with_keepalives += conn.retransmits + conn.keepalive_retransmits
            without += conn.retransmits
            packets += conn.total_pkts
        emit(
            f"D1 internal retransmit rate: {without / packets:.4%} excluding "
            f"keep-alives vs {with_keepalives / packets:.4%} including them"
        )
        assert with_keepalives > 1.5 * without
