"""Ablation benches for the design choices called out in DESIGN.md §5.

1. Scan filtering before analysis (vs analyzing raw connections).
2. Host-pair success metric (vs raw per-connection counting).
3. Snaplen 68 captures degrade payload analysis gracefully.
"""

from collections import Counter

from repro.analysis.classify import classify_conn
from repro.analysis.failures import host_pair_success, raw_connection_success


class TestScanFilterAblation:
    def test_filter_changes_transport_mix(self, study, benchmark, emit):
        """Scanners inflate TCP-connection (and ICMP) counts; the filter
        measurably shifts Table 3's connection mix."""
        analysis = study.analyses["D3"]

        def mixes():
            raw = Counter(conn.proto for conn in analysis.conns)
            kept = Counter(conn.proto for conn in analysis.filtered_conns())
            return raw, kept

        raw, kept = benchmark(mixes)
        raw_total, kept_total = sum(raw.values()), sum(kept.values())
        lines = [
            f"raw:      { {k: f'{v / raw_total:.1%}' for k, v in raw.items()} }",
            f"filtered: { {k: f'{v / kept_total:.1%}' for k, v in kept.items()} }",
        ]
        emit("\n".join(lines))
        removed = raw_total - kept_total
        assert removed > 0
        # Scanner traffic is TCP probes and ICMP sweeps, so those shares
        # drop when it is removed.
        raw_icmp = raw["icmp"] / raw_total
        kept_icmp = kept["icmp"] / kept_total
        raw_tcp = raw["tcp"] / raw_total
        kept_tcp = kept["tcp"] / kept_total
        assert kept_icmp < raw_icmp or kept_tcp < raw_tcp

    def test_filter_removes_idle_service_engagements(self, study, benchmark, emit):
        benchmark(lambda: len(study.analyses["D3"].filtered_conns()))
        """§3: scanners 'can engage services that otherwise remain idle',
        inflating the set of observed applications."""
        analysis = study.analyses["D3"]
        raw_apps = {
            classify_conn(conn, analysis.windows_endpoints)[0]
            for conn in analysis.conns
        }
        kept_apps = {
            classify_conn(conn, analysis.windows_endpoints)[0]
            for conn in analysis.filtered_conns()
        }
        emit(f"protocols seen: raw={len(raw_apps)} filtered={len(kept_apps)}")
        assert kept_apps <= raw_apps


class TestHostPairMetricAblation:
    def test_pair_metric_resists_retry_storms(self, study, benchmark, emit):
        """The paper's motivation for host-pair counting: automated retry
        (NCP especially) drags the raw metric far below the pair one."""
        ncp_conns = [
            conn
            for analysis in study.analyses.values()
            for conn in analysis.filtered_conns()
            if conn.proto == "tcp" and conn.resp_port == 524
        ]

        def both():
            return host_pair_success(ncp_conns), raw_connection_success(ncp_conns)

        pair, raw = benchmark(both)
        emit(
            f"NCP (all datasets): pair-based success {pair.success_rate:.0%} over "
            f"{pair.total} pairs vs raw {raw.success_rate:.0%} over {raw.total} "
            f"connections"
        )
        if pair.total >= 10:
            assert pair.total < raw.total  # pairs collapse retries
            assert pair.success_rate >= raw.success_rate - 0.05


class TestSnaplenAblation:
    def test_header_only_capture_disables_payload_analysis(self, study, benchmark, emit):
        """D1/D2 (snaplen 68) must still produce transport-level results
        while payload analyzers stay empty — exactly the paper's handling."""
        d1 = study.analyses["D1"]

        def summarize():
            http = d1.analyzer_results["http"]
            nfs = d1.analyzer_results["nfs"]
            return http.internal.requests, sum(nfs.requests_by_type.values())

        http_requests, nfs_requests = benchmark(summarize)
        emit(
            f"D1 (snaplen 68): parsed HTTP requests={http_requests}, "
            f"parsed NFS requests={nfs_requests}; "
            f"conns={len(d1.conns)}, bytes accounted="
            f"{sum(c.total_bytes for c in d1.conns)}"
        )
        assert http_requests == 0
        assert len(d1.conns) > 1000
        # Byte accounting survives truncation via IP total-length fields.
        assert sum(c.total_bytes for c in d1.conns) > 1_000_000
