"""Core-path throughput benchmarks.

Not paper artifacts — these time the hot paths a downstream user cares
about when running larger-scale studies: packet crafting, flat decoding,
flow-table ingestion, and pcap I/O.
"""

import io
import random

from repro.analysis.flow import FlowTable
from repro.gen.packetize import realize_session
from repro.gen.session import AppEvent, Dir, TcpSession
from repro.net.packet import decode_packet, make_tcp_packet
from repro.net.tcp import ACK, PSH
from repro.pcap.reader import PcapReader
from repro.pcap.writer import PcapWriter


def _bulk_packets(n_bytes=2_000_000):
    session = TcpSession(
        client_ip=0x83F30101, server_ip=0x83F30201, client_mac=1, server_mac=2,
        sport=40000, dport=13724, start=0.0, rtt=0.0005, loss_rate=0.0,
        events=[AppEvent(0.0, Dir.C2S, b"\x00" * n_bytes)],
    )
    return realize_session(session, random.Random(1))


class TestCraftAndDecode:
    def test_craft_full_mss_packet(self, benchmark):
        payload = b"x" * 1460
        pkt = benchmark(
            lambda: make_tcp_packet(
                1.0, 1, 2, 3, 4, 40000, 80, 100, 0, ACK | PSH, payload=payload
            )
        )
        assert pkt.wire_len == 1514

    def test_decode_full_mss_packet(self, benchmark):
        pkt = make_tcp_packet(1.0, 1, 2, 3, 4, 40000, 80, 100, 0, ACK | PSH,
                              payload=b"x" * 1460)
        decoded = benchmark(lambda: decode_packet(pkt))
        assert decoded.payload_len == 1460


class TestFlowIngest:
    def test_flow_table_throughput(self, benchmark):
        decoded = [decode_packet(p) for p in _bulk_packets()]

        def ingest():
            table = FlowTable(collect_payload=False)
            for pkt in decoded:
                table.process(pkt)
            return table.flush()

        results = benchmark(ingest)
        assert len(results) == 1


class TestPcapIo:
    def test_write_throughput(self, benchmark):
        packets = _bulk_packets()

        def write():
            buffer = io.BytesIO()
            PcapWriter(buffer).write_all(packets)
            return buffer

        buffer = benchmark(write)
        assert buffer.tell() > 1_000_000

    def test_read_throughput(self, benchmark):
        buffer = io.BytesIO()
        PcapWriter(buffer).write_all(_bulk_packets())
        data = buffer.getvalue()

        def read():
            return sum(1 for _ in PcapReader(io.BytesIO(data)))

        count = benchmark(read)
        assert count > 1000
