"""Core-path throughput benchmarks.

Not paper artifacts — these time the hot paths a downstream user cares
about when running larger-scale studies: packet crafting, flat decoding,
flow-table ingestion, and pcap I/O — plus the runtime scaling run
(sequential vs ``--jobs N``) that writes ``BENCH_runtime.json``
(``make runtime-bench``).
"""

import io
import json
import os
import random
import time

from repro.analysis.flow import FlowTable
from repro.gen.packetize import realize_session
from repro.gen.session import AppEvent, Dir, TcpSession
from repro.net.packet import decode_packet, make_tcp_packet
from repro.net.tcp import ACK, PSH
from repro.pcap.reader import PcapReader
from repro.pcap.writer import PcapWriter


def _bulk_packets(n_bytes=2_000_000):
    session = TcpSession(
        client_ip=0x83F30101, server_ip=0x83F30201, client_mac=1, server_mac=2,
        sport=40000, dport=13724, start=0.0, rtt=0.0005, loss_rate=0.0,
        events=[AppEvent(0.0, Dir.C2S, b"\x00" * n_bytes)],
    )
    return realize_session(session, random.Random(1))


class TestCraftAndDecode:
    def test_craft_full_mss_packet(self, benchmark):
        payload = b"x" * 1460
        pkt = benchmark(
            lambda: make_tcp_packet(
                1.0, 1, 2, 3, 4, 40000, 80, 100, 0, ACK | PSH, payload=payload
            )
        )
        assert pkt.wire_len == 1514

    def test_decode_full_mss_packet(self, benchmark):
        pkt = make_tcp_packet(1.0, 1, 2, 3, 4, 40000, 80, 100, 0, ACK | PSH,
                              payload=b"x" * 1460)
        decoded = benchmark(lambda: decode_packet(pkt))
        assert decoded.payload_len == 1460


class TestFlowIngest:
    def test_flow_table_throughput(self, benchmark):
        decoded = [decode_packet(p) for p in _bulk_packets()]

        def ingest():
            table = FlowTable(collect_payload=False)
            for pkt in decoded:
                table.process(pkt)
            return table.flush()

        results = benchmark(ingest)
        assert len(results) == 1


class TestPcapIo:
    def test_write_throughput(self, benchmark):
        packets = _bulk_packets()

        def write():
            buffer = io.BytesIO()
            PcapWriter(buffer).write_all(packets)
            return buffer

        buffer = benchmark(write)
        assert buffer.tell() > 1_000_000

    def test_read_throughput(self, benchmark):
        buffer = io.BytesIO()
        PcapWriter(buffer).write_all(_bulk_packets())
        data = buffer.getvalue()

        def read():
            return sum(1 for _ in PcapReader(io.BytesIO(data)))

        count = benchmark(read)
        assert count > 1000


class TestRuntimeScaling:
    """Sequential vs parallel study wall clock (``make runtime-bench``).

    Cold-runs the five-dataset study twice — ``jobs=1`` and
    ``jobs=min(4, cores)`` — and writes ``BENCH_runtime.json`` plus the
    parallel run's JSONL telemetry under ``benchmarks/output/``.  The
    ≥2x speedup bar only applies where the hardware can deliver it
    (4+ cores); fewer cores still produce the artifact, with the
    observed ratio recorded.
    """

    def test_parallel_speedup(self, output_dir):
        from repro.core.study import run_study

        params = dict(
            seed=int(os.environ.get("REPRO_BENCH_SEED", "7")),
            scale=float(os.environ.get("REPRO_RUNTIME_BENCH_SCALE", "0.004")),
            max_windows=4,
        )
        cores = os.cpu_count() or 1
        # Always at least two workers so the pool path itself is what
        # gets measured, even on single-core hardware.
        jobs = max(2, min(4, cores))
        telemetry_path = output_dir / "BENCH_runtime_telemetry.jsonl"
        telemetry_path.unlink(missing_ok=True)

        start = time.perf_counter()
        sequential = run_study(jobs=1, **params)
        sequential_s = time.perf_counter() - start

        start = time.perf_counter()
        parallel = run_study(
            jobs=jobs, telemetry_path=str(telemetry_path), **params
        )
        parallel_s = time.perf_counter() - start

        # Same bytes regardless of worker count (spot-check two tables).
        assert parallel.render_table(2) == sequential.render_table(2)
        assert parallel.render_table(10) == sequential.render_table(10)
        speedup = sequential_s / parallel_s if parallel_s else float("inf")
        report = {
            "workload": params,
            "cpu_count": cores,
            "jobs": jobs,
            "sequential_s": round(sequential_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": round(speedup, 3),
            "unit_walls_s": {
                event["unit"]: event["wall_s"]
                for event in parallel.telemetry.unit_events("unit_finish")
            },
        }
        (output_dir / "BENCH_runtime.json").write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"\nruntime scaling: {json.dumps(report, indent=2, sort_keys=True)}")
        assert telemetry_path.stat().st_size > 0
        if cores >= 4:
            assert speedup >= 2.0, report
        elif cores >= 2:
            assert speedup >= 1.2, report
