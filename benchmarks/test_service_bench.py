"""Service benchmark: concurrent-user latency, cache speedup, backpressure.

Run via ``make service-bench``.  Writes ``BENCH_service.json`` with the
acceptance numbers the ISSUE pins:

* p50/p95/p99 latency under ≥8 concurrent simulated users, zero 5xx;
* cached store-query hit latency ≥5x faster than the cold compute path,
  with byte-identical bodies (same content address ⇒ same bytes);
* a saturated job queue answering 429 + Retry-After, never hanging.

The store is seeded once per run at a deliberately small scale — the
bench measures the *service* (HTTP stack, cache, queue), not the
generator.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

import pytest

from repro.core.study import run_study
from repro.service import ReproService
from repro.service.loadgen import run_load

_USERS = int(os.environ.get("REPRO_SERVICE_BENCH_USERS", "8"))
_DURATION = float(os.environ.get("REPRO_SERVICE_BENCH_DURATION", "5.0"))
_WARMUP = float(os.environ.get("REPRO_SERVICE_BENCH_WARMUP", "1.0"))

#: Acceptance floor: a cache hit (replayed bytes, no shard reads) must
#: beat the cold compute-and-render path by at least this factor.
_MIN_CACHE_SPEEDUP = 5.0

#: Cold/hit latency sample size (medians are compared, not means —
#: one GC pause must not decide the verdict).
_LATENCY_SAMPLES = 30

_QUERY = "/query?by=category&proto=tcp"


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("service-bench-store")
    run_study(
        seed=int(os.environ.get("REPRO_BENCH_SEED", "7")),
        scale=float(os.environ.get("REPRO_SERVICE_BENCH_SCALE", "0.004")),
        datasets=("D0",),
        max_windows=4,
        store_dir=str(root),
    )
    svc = ReproService(str(root), port=0, job_workers=1, job_queue=2)
    svc.start_background()
    yield svc
    svc.shutdown()


def _timed_get(conn: http.client.HTTPConnection, path: str):
    started = time.perf_counter()
    conn.request("GET", path)
    response = conn.getresponse()
    body = response.read()
    latency_ms = (time.perf_counter() - started) * 1000.0
    assert response.status == 200, (path, response.status, body[:200])
    return latency_ms, response.getheader("X-Cache"), body


def _median(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def test_service_bench(service, output_dir, emit):
    conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=60)
    try:
        # --- cache: cold (bypass recomputes) vs hit (replayed bytes) ---
        service.cache.clear()
        _, state, primed = _timed_get(conn, _QUERY)
        assert state == "miss"
        cold_ms, hit_ms = [], []
        for _ in range(_LATENCY_SAMPLES):
            latency, state, body = _timed_get(conn, _QUERY + "&cache_bypass=1")
            assert state == "bypass" and body == primed
            cold_ms.append(latency)
            latency, state, body = _timed_get(conn, _QUERY)
            assert state == "hit" and body == primed
            hit_ms.append(latency)
        cache_speedup = _median(cold_ms) / _median(hit_ms)

        # --- backpressure: saturate the 2-deep queue, expect 429 ---
        release = threading.Event()
        service.jobs.runner = lambda request, store_dir: (
            release.wait(30), {"ok": True},
        )[1]
        statuses: list[int] = []
        retry_after = None
        saturation_started = time.monotonic()
        for _ in range(8):
            conn.request(
                "POST", "/studies", body=json.dumps({"jobs": 0}),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            response.read()
            statuses.append(response.status)
            if response.status == 429:
                retry_after = response.getheader("Retry-After")
                break
        saturation_s = time.monotonic() - saturation_started
        release.set()
        assert 429 in statuses, f"queue never saturated: {statuses}"
        assert saturation_s < 10.0, "a full queue hung instead of 429ing"
        assert retry_after is not None and int(retry_after) >= 1
    finally:
        conn.close()

    # --- concurrent-user latency under the mixed workload ---
    report = run_load(
        "127.0.0.1", service.port,
        users=_USERS, duration=_DURATION, warmup=_WARMUP, seed=1,
    )
    latency = report["latency_ms"]
    server_5xx = service.status_counts().get("5xx", 0)

    payload = {
        "users": _USERS,
        "duration_s": report["duration_s"],
        "requests": report["requests"],
        "throughput_rps": report["throughput_rps"],
        "latency_ms": latency,
        "endpoints": report["endpoints"],
        "error_rate": report["error_rate"],
        "status_counts": report["status_counts"],
        "server_5xx": server_5xx,
        "cache": {
            "cold_median_ms": round(_median(cold_ms), 3),
            "hit_median_ms": round(_median(hit_ms), 3),
            "speedup": round(cache_speedup, 2),
            "floor": _MIN_CACHE_SPEEDUP,
            "byte_identical": True,  # asserted above, per request
            **service.cache.stats(),
        },
        "backpressure": {
            "statuses": statuses,
            "retry_after_s": int(retry_after),
            "saturation_wall_s": round(saturation_s, 3),
        },
    }
    (output_dir / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    emit(
        "analysis service under concurrent load\n"
        f"  users             {_USERS} (warmup {_WARMUP}s, "
        f"measured {report['duration_s']}s)\n"
        f"  requests          {report['requests']} "
        f"({report['throughput_rps']} req/s)\n"
        f"  latency ms        p50 {latency['p50']}  p95 {latency['p95']}  "
        f"p99 {latency['p99']}  max {latency['max']}\n"
        f"  errors            rate {report['error_rate']}  "
        f"statuses {json.dumps(report['status_counts'], sort_keys=True)}\n"
        f"  cache             cold {payload['cache']['cold_median_ms']} ms  "
        f"hit {payload['cache']['hit_median_ms']} ms  "
        f"speedup {payload['cache']['speedup']}x "
        f"(floor {_MIN_CACHE_SPEEDUP:.0f}x)\n"
        f"  backpressure      {statuses.count(202)} accepted then 429, "
        f"Retry-After {retry_after}s, wall {payload['backpressure']['saturation_wall_s']}s"
    )

    # The ISSUE's acceptance gates.
    assert _USERS >= 8
    for quantile in ("p50", "p95", "p99"):
        assert latency[quantile] > 0
    assert report["status_counts"].get("5xx", 0) == 0
    assert report["status_counts"].get("conn-error", 0) == 0
    assert server_5xx == 0
    assert cache_speedup >= _MIN_CACHE_SPEEDUP, (
        f"cache hit only {cache_speedup:.1f}x faster than cold"
    )
