"""Replicated tiered store: read latency with a dead root, repair rate.

Run via ``make replica-bench``.  Writes ``BENCH_replica.json`` with the
numbers replication exists for: how much slower cold reads get when a
whole root vanishes mid-service (every read whose primary lived there
must fail over to its surviving replica), and how fast ``store repair
--replicas`` rebuilds the lost copies onto a replacement root.
"""

from __future__ import annotations

import json
import shutil
import time

from repro.store.scrub import StoreScrubber
from repro.store.shard import encode_shard
from repro.store.tier import init_tier, open_store

#: Degraded reads may cost more (breaker warm-up, fallback probes) but
#: not catastrophically more than healthy cold reads.
_MAX_DEGRADED_FACTOR = 5.0
_OBJECTS = 192
_ROUNDS = 5


def _seed_replicated(tmp_path):
    store = init_tier(
        tmp_path / "store",
        roots=(str(tmp_path / "root-b"), str(tmp_path / "root-c")),
        replicas=2,
    )
    digests = [
        store.put_object(
            encode_shard(1, {"body": f"shard-{index:05d}".encode() * 37})
        )
        for index in range(_OBJECTS)
    ]
    store.rebalance()
    return store, digests


def _cold_read_seconds(store, digests) -> float:
    t0 = time.perf_counter()
    for _ in range(_ROUNDS):
        store.hot.clear()
        for digest in digests:
            store.get_object(digest)
    return (time.perf_counter() - t0) / _ROUNDS


def test_replica_bench(tmp_path, output_dir, emit):
    store, digests = _seed_replicated(tmp_path)
    status = store.tier_status()
    assert status["replicas"] == 2
    healthy_s = _cold_read_seconds(store, digests)

    # Kill a whole root out from under the store.  Reads whose primary
    # lived there fail over to the surviving replica — and read-repair
    # rewrites the lost copy on the way out, so this pass measures the
    # full self-healing failover cost, not just the extra probe.
    victim = store.roots()[1]
    victim_objects = status["roots"][1]["objects"]
    shutil.rmtree(victim)
    degraded_s = _cold_read_seconds(store, digests)
    assert all(store.get_object(d) is not None for d in digests)
    factor = degraded_s / healthy_s

    # Kill the same root again, and this time rebuild it with the bulk
    # path (``store repair --replicas``) instead of read-by-read.
    shutil.rmtree(victim)
    fresh = open_store(tmp_path / "store")  # fresh breakers: disk is back
    t0 = time.perf_counter()
    report = fresh.repair_replicas()
    repair_s = time.perf_counter() - t0
    assert report.ok and report.copies_written >= victim_objects
    repaired_per_s = report.copies_written / repair_s if repair_s else 0.0

    scrub = StoreScrubber(fresh).scrub()
    assert scrub.ok, scrub.render()
    repaired_s = _cold_read_seconds(fresh, digests)

    payload = {
        "objects": _OBJECTS,
        "roots": len(status["roots"]),
        "replicas": status["replicas"],
        "rounds": _ROUNDS,
        "healthy_ms_per_round": round(healthy_s * 1e3, 3),
        "degraded_ms_per_round": round(degraded_s * 1e3, 3),
        "repaired_ms_per_round": round(repaired_s * 1e3, 3),
        "degraded_factor": round(factor, 2),
        "degraded_factor_ceiling": _MAX_DEGRADED_FACTOR,
        "repair": {
            "objects_restored": report.objects_restored,
            "copies_written": report.copies_written,
            "manifests_mirrored": report.manifests_mirrored,
            "seconds": round(repair_s, 4),
            "copies_per_second": round(repaired_per_s, 1),
        },
    }
    (output_dir / "BENCH_replica.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    emit(
        "replicated store (reads across a dead root, repair rate)\n"
        f"  objects           {_OBJECTS} x{status['replicas']} across "
        f"{len(status['roots'])} roots\n"
        f"  healthy reads     {healthy_s * 1e3:8.2f} ms/round\n"
        f"  one root dead     {degraded_s * 1e3:8.2f} ms/round "
        f"({factor:.2f}x, ceiling {_MAX_DEGRADED_FACTOR:.0f}x)\n"
        f"  after repair      {repaired_s * 1e3:8.2f} ms/round\n"
        f"  repair            {report.copies_written} cop(ies) in "
        f"{repair_s * 1e3:.1f} ms ({repaired_per_s:,.0f}/s)"
    )
    assert factor <= _MAX_DEGRADED_FACTOR, (
        f"losing one root made cold reads {factor:.1f}x slower"
    )
