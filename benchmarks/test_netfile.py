"""Benches for NFS/NCP: Tables 12-14, Figures 7-8 (§5.2.2)."""

from repro.report import tables
from repro.report.figures import figure7, figure8

_FULL = ("D0", "D3", "D4")


class TestTable12:
    def test_table12(self, study, benchmark, emit):
        table = benchmark(lambda: tables.table12(study.analyses))
        emit(table.render())
        nfs_bytes = {
            name: study.analyses[name].analyzer_results["nfs"].total_bytes
            for name in study.analyses
        }
        ncp_bytes = {
            name: study.analyses[name].analyzer_results["ncp"].total_bytes
            for name in study.analyses
        }
        # NFS transfers more data than NCP in every dataset (Table 12).
        for name in study.analyses:
            if nfs_bytes[name] + ncp_bytes[name] > 1_000_000:
                assert nfs_bytes[name] > ncp_bytes[name], name
        # NCP connections outnumber NFS connections in D0.
        d0_nfs = study.analyses["D0"].analyzer_results["nfs"].conns
        d0_ncp = study.analyses["D0"].analyzer_results["ncp"].conns
        assert d0_ncp > d0_nfs

    def test_heavy_hitters(self, study, benchmark, emit):
        benchmark(lambda: [
            study.analyses[n].analyzer_results["nfs"].top_pairs_byte_share(3)
            for n in _FULL
        ])
        """Three most active NFS pairs carry 89-94% of bytes; NCP's top
        three 35-62%."""
        lines = []
        for name in _FULL:
            nfs_report = study.analyses[name].analyzer_results["nfs"]
            ncp_report = study.analyses[name].analyzer_results["ncp"]
            nfs_share = nfs_report.top_pairs_byte_share(3)
            ncp_share = ncp_report.top_pairs_byte_share(3)
            lines.append(f"{name}: NFS top-3 pair share {nfs_share:.0%}, NCP {ncp_share:.0%}")
            if nfs_report.bytes_per_pair:
                assert nfs_share > 0.5, name
        emit("\n".join(lines))

    def test_nfs_transport_mix(self, study, benchmark, emit):
        """90% of NFS host-pairs use UDP, ~21% TCP (§5.2.2)."""
        report = study.analyses["D0"].analyzer_results["nfs"]
        udp_frac = benchmark(report.udp_pair_fraction)
        tcp_frac = report.tcp_pair_fraction()
        emit(f"D0 NFS pairs: {udp_frac:.0%} UDP, {tcp_frac:.0%} TCP")
        assert udp_frac > 0.6
        assert tcp_frac < 0.5


class TestTable13:
    def test_table13(self, study, benchmark, emit):
        table = benchmark(lambda: tables.table13(study.analyses))
        emit(table.render())
        for name in _FULL:
            report = study.analyses[name].analyzer_results["nfs"]
            if sum(report.requests_by_type.values()) < 100:
                continue
            # Read/write carry the vast majority of bytes (88-99%).
            rw_bytes = report.bytes_type_fraction("Read") + report.bytes_type_fraction("Write")
            assert rw_bytes > 0.75, name
        # The per-dataset workload shift: D0 read-heavy, D4 write-heavy.
        d0 = study.analyses["D0"].analyzer_results["nfs"]
        d4 = study.analyses["D4"].analyzer_results["nfs"]
        assert d0.request_type_fraction("Read") > d0.request_type_fraction("Write")
        assert d4.request_type_fraction("Write") > d4.request_type_fraction("Read")

    def test_nfs_request_success(self, study, benchmark, emit):
        """Requests succeed 84-95%; failures are mostly missing-file lookups."""
        report = study.analyses["D0"].analyzer_results["nfs"]
        rate = benchmark(report.request_success_rate)
        emit(f"D0 NFS request success: {rate:.1%}; "
             f"failures by type: {dict(report.failed_by_type)}")
        assert 0.8 < rate < 1.0
        if report.failed_by_type:
            assert report.failed_by_type.most_common(1)[0][0] == "LookUp"


class TestTable14:
    def test_table14(self, study, benchmark, emit):
        table = benchmark(lambda: tables.table14(study.analyses))
        emit(table.render())
        for name in _FULL:
            report = study.analyses[name].analyzer_results["ncp"]
            if sum(report.requests_by_type.values()) < 100:
                continue
            # Read dominates NCP bytes (70-82% in Table 14).
            assert report.bytes_type_fraction("Read") > 0.4, name
            # File search: visible request share, negligible byte share.
            assert report.request_type_fraction("File Search") > report.bytes_type_fraction(
                "File Search"
            ), name

    def test_ncp_keepalive_finding(self, study, benchmark, emit):
        """40-80% of NCP connections are keep-alive-only (§5.2.2)."""
        benchmark(lambda: [
            study.analyses[n].analyzer_results["ncp"].keepalive_only_fraction()
            for n in _FULL
        ])
        lines = []
        for name in _FULL:
            report = study.analyses[name].analyzer_results["ncp"]
            if report.established_conns < 10:
                continue
            frac = report.keepalive_only_fraction()
            lines.append(f"{name}: keep-alive-only NCP connections {frac:.0%}")
            assert 0.25 < frac < 0.9, name
        emit("\n".join(lines))


class TestFigure7:
    def test_figure7(self, study, benchmark, emit):
        nfs_fig, ncp_fig = benchmark(lambda: figure7(study.analyses))
        emit(nfs_fig.render() + "\n\n" + ncp_fig.render())
        report = study.analyses["D0"].analyzer_results["nfs"]
        cdf = report.requests_per_pair_cdf()
        if len(cdf) >= 5:
            # Requests per pair span orders of magnitude (a handful to
            # hundreds of thousands in the paper).
            assert cdf.max / max(cdf.min, 1) > 50


class TestFigure8:
    def test_figure8(self, study, benchmark, emit):
        figures = benchmark(lambda: figure8(study.analyses))
        emit(
            "\n\n".join(f.render() for f in figures.values())
            + "\n\n"
            + "\n\n".join(f.render_plot(height=12) for f in figures.values())
        )
        nfs_report = study.analyses["D0"].analyzer_results["nfs"]
        # NFS dual-mode: mass near ~100 B and near ~8 KB.
        from repro.util.stats import Cdf

        requests = Cdf(nfs_report.request_sizes)
        replies = Cdf(nfs_report.reply_sizes)
        if len(requests) > 100:
            small = requests(300)
            assert small > 0.2  # control mode present
            assert requests(300) < 1.0  # data mode present too
            assert replies.max > 8000
        # NCP request mode at 14 bytes.
        ncp_report = study.analyses["D0"].analyzer_results["ncp"]
        if ncp_report.request_sizes:
            assert min(ncp_report.request_sizes) == 14
            fourteen = sum(1 for s in ncp_report.request_sizes if s == 14)
            assert fourteen / len(ncp_report.request_sizes) > 0.2
        # NCP reply modes at 2/10/260 bytes.
        if ncp_report.reply_sizes:
            present = set(ncp_report.reply_sizes)
            assert 2 in present and 10 in present
