"""Benches for the broad-breakdown tables: Tables 1, 2, 3 and Figure 1.

Each bench regenerates the paper artifact from the analyzed study, prints
it, and asserts the shape criteria (who wins, rough factors) that the
reproduction targets.
"""

from repro.report import tables
from repro.report.figures import figure1


class TestTable1:
    def test_table1(self, study, benchmark, emit):
        table = benchmark(lambda: study.table(1))
        emit(table.render())
        packets = {name: table.cell("# Packets", name) for name in study.analyses}
        # D1 (two hour-long rounds of 22 subnets) is the largest dataset.
        assert packets["D1"] == max(packets.values())
        # Hour-long tapping accumulates more remote hosts than D0's
        # 10-minute windows.
        remote = {name: table.cell("Remote Hosts", name) for name in study.analyses}
        assert remote["D1"] > remote["D0"]
        # Thousands of internal hosts appear (8,000 in the paper).
        assert all(table.cell("LBNL Hosts", n) > 500 for n in study.analyses)


class TestTable2:
    def test_table2(self, study, benchmark, emit):
        table = benchmark(lambda: tables.table2(study.analyses))
        emit(table.render())
        for name, analysis in study.analyses.items():
            totals = analysis.l2_totals()
            total = sum(totals.values())
            non_ip = total - totals["ip"]
            # IP dominates (>95% in the paper; >92% allowed at small scale).
            assert totals["ip"] / total > 0.92, name
            # IPX is the largest non-IP protocol at the router-0 vantage.
            if name in ("D0", "D1", "D2") and non_ip:
                assert totals["ipx"] >= totals["arp"], name


class TestTable3:
    def test_table3(self, study, benchmark, emit):
        table = benchmark(lambda: tables.table3(study.analyses))
        emit(table.render())
        for name, analysis in study.analyses.items():
            conns = analysis.filtered_conns()
            bytes_by = {"tcp": 0, "udp": 0, "icmp": 0}
            conns_by = {"tcp": 0, "udp": 0, "icmp": 0}
            for conn in conns:
                bytes_by[conn.proto] += conn.total_bytes
                conns_by[conn.proto] += 1
            # The paper's headline: bulk of bytes via TCP, bulk of
            # connections via UDP, in every dataset.
            assert bytes_by["tcp"] > bytes_by["udp"], name
            assert conns_by["udp"] > conns_by["tcp"], name
            # ICMP: a visible but small connection share (5-8% paper).
            icmp_share = conns_by["icmp"] / sum(conns_by.values())
            assert 0.005 < icmp_share < 0.20, name


class TestTable5:
    def test_table5(self, study, benchmark, emit):
        """The findings index, regenerated with measured values."""
        table = benchmark(lambda: study.table(5))
        emit(table.render())
        assert len(table.rows) == 6
        findings = "\n".join(str(row[1]) for row in table.rows)
        assert "n/a" not in findings  # every finding computable at full scale


class TestFigure1:
    def test_figure1_bytes(self, study, benchmark, emit):
        table = benchmark(lambda: figure1(study.breakdowns, by="bytes"))
        emit(table.render())
        for name, breakdown in study.breakdowns.items():
            # name-service bytes are negligible despite huge conn counts.
            assert breakdown.byte_fraction("name") < 0.02, name
            # bulk transfer categories carry the majority of bytes.
            heavy = sum(
                breakdown.byte_fraction(cat)
                for cat in ("net-file", "backup", "bulk")
            )
            assert heavy > 0.30, name

    def test_figure1_conns(self, study, benchmark, emit):
        table = benchmark(lambda: figure1(study.breakdowns, by="conns"))
        emit(table.render())
        for name, breakdown in study.breakdowns.items():
            name_share = breakdown.conn_fraction("name")
            # name tops connection counts (45-65% in the paper).
            assert name_share > 0.30, name
            assert name_share == max(
                breakdown.conn_fraction(cat)
                for cat in breakdown.stats
            ), name

    def test_figure1_locality_split(self, study, benchmark, emit):
        """Most traffic is local to the enterprise (the hollow bars)."""
        lines = []
        shares = benchmark(lambda: {
            name: sum(s.ent_bytes for s in b.stats.values()) / max(b.total_bytes, 1)
            for name, b in study.breakdowns.items()
        })
        for name, breakdown in study.breakdowns.items():
            ent = sum(stats.ent_bytes for stats in breakdown.stats.values())
            total = breakdown.total_bytes
            lines.append(f"{name}: enterprise share of unicast bytes = {ent/total:.0%}")
            assert ent / total > 0.5, name
        emit("\n".join(lines))

    def test_multicast_findings(self, study, benchmark, emit):
        """§3: multicast streaming carries ~5-10% of all payload bytes."""
        lines = []
        benchmark(lambda: [
            b.multicast_byte_fraction("streaming") for b in study.breakdowns.values()
        ])
        for name, breakdown in study.breakdowns.items():
            frac = breakdown.multicast_byte_fraction("streaming")
            lines.append(f"{name}: multicast streaming bytes = {frac:.1%}")
            assert 0.005 < frac < 0.25, name
        emit("\n".join(lines))
