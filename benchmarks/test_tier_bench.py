"""Tiered store: hot-tier read speedup and compaction chain reduction.

Run via ``make tier-bench``.  Writes ``BENCH_tier.json`` with the two
numbers the tier exists for: how much faster a hot-tier read is than
the cold multi-root path (open + read + content re-verify at whichever
root placement routed the shard to), and how far compaction folds a
streaming checkpoint's batch chain.
"""

from __future__ import annotations

import json
import time

from repro.analysis.analyzers import DEFAULT_ANALYZERS
from repro.analysis.errors import ErrorPolicy
from repro.gen.capture import generate_dataset
from repro.gen.topology import ENTERPRISE_NET, Enterprise
from repro.store import compact_checkpoints
from repro.store.tier import init_tier
from repro.stream.checkpoint import StreamCheckpointer
from repro.stream.engine import StreamDatasetAnalyzer
from repro.stream.flowtable import StreamFlowTable

#: The acceptance floor: hot reads must beat cold reads by this factor.
_MIN_SPEEDUP = 3.0
_OBJECTS = 192
_ROUNDS = 5
_BATCHES = 16


def _seed_tiered(tmp_path):
    store = init_tier(
        tmp_path / "store",
        roots=(str(tmp_path / "root-b"), str(tmp_path / "root-c")),
    )
    digests = [
        store.put_object(f"shard-{index:05d}".encode() * 257)
        for index in range(_OBJECTS)
    ]
    store.rebalance()
    return store, digests


def _finished_results(tmp_path):
    """Real finished-flow results to fill checkpoint batch shards with."""
    dataset = generate_dataset(
        "D0", Enterprise(seed=7), tmp_path / "traces", seed=7,
        scale=0.004, max_windows=2,
    )
    captured: list = []
    real_finish = StreamFlowTable.finish

    def spying(self):
        results = real_finish(self)
        captured.extend(results)
        return results

    StreamFlowTable.finish = spying
    try:
        analyzer = StreamDatasetAnalyzer(
            "D0",
            full_payload=dataset.config.full_payload,
            internal_net=ENTERPRISE_NET,
            analyzers=[c() for c in DEFAULT_ANALYZERS],
            error_policy=ErrorPolicy.STRICT,
        )
        analyzer.process_pcap(dataset.traces[0].path)
        analyzer.finish()
    finally:
        StreamFlowTable.finish = real_finish
    return captured


def test_tier_bench(tmp_path, output_dir, emit):
    store, digests = _seed_tiered(tmp_path)
    status = store.tier_status()
    assert sum(root["objects"] for root in status["roots"]) == _OBJECTS
    assert all(root["objects"] > 0 for root in status["roots"])

    # Cold path: every read opens, reads, and re-verifies at its root.
    t0 = time.perf_counter()
    for _ in range(_ROUNDS):
        store.hot.clear()
        for digest in digests:
            store.get_object(digest)
    cold_s = (time.perf_counter() - t0) / _ROUNDS

    # Hot path: same reads served from the verified byte cache.
    for digest in digests:
        store.get_object(digest)
    t0 = time.perf_counter()
    for _ in range(_ROUNDS):
        for digest in digests:
            store.get_object(digest)
    hot_s = (time.perf_counter() - t0) / _ROUNDS
    speedup = cold_s / hot_s

    # Compaction: a 16-batch checkpoint chain folds to one super-shard.
    results = _finished_results(tmp_path)
    checkpointer = StreamCheckpointer(store, "bench-ck")
    chunk = max(1, -(-len(results) // _BATCHES))
    for start in range(0, len(results), chunk):
        checkpointer.flush_batch(results[start : start + chunk])
    checkpointer.save({"trace": {"packets": len(results)}})
    batches_before = len(checkpointer.batch_digests)

    def _chain_load_seconds() -> float:
        start = time.perf_counter()
        loaded, _ = StreamCheckpointer.load(store, "bench-ck")
        loaded.load_batches()
        return time.perf_counter() - start

    store.hot.clear()
    load_before_s = _chain_load_seconds()
    report = compact_checkpoints(store, grace_s=0)
    store.hot.clear()
    load_after_s = _chain_load_seconds()

    payload = {
        "objects": _OBJECTS,
        "roots": len(status["roots"]),
        "rounds": _ROUNDS,
        "cold_ms_per_round": round(cold_s * 1e3, 3),
        "hot_ms_per_round": round(hot_s * 1e3, 3),
        "hot_speedup": round(speedup, 2),
        "hot_speedup_floor": _MIN_SPEEDUP,
        "compaction": {
            "batches_before": batches_before,
            "batches_after": report.batches_after,
            "bytes_written": report.bytes_written,
            "chain_load_before_ms": round(load_before_s * 1e3, 3),
            "chain_load_after_ms": round(load_after_s * 1e3, 3),
        },
        "hot_tier": store.hot.stats(),
    }
    (output_dir / "BENCH_tier.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    emit(
        "tiered store (hot tier vs cold multi-root reads)\n"
        f"  objects           {_OBJECTS} across {len(status['roots'])} roots\n"
        f"  cold reads        {cold_s * 1e3:8.2f} ms/round\n"
        f"  hot reads         {hot_s * 1e3:8.2f} ms/round\n"
        f"  speedup           {speedup:8.1f} x  (floor {_MIN_SPEEDUP:.0f}x)\n"
        f"  compaction        {batches_before} batch shard(s) -> "
        f"{report.batches_after}\n"
        f"  chain load        {load_before_s * 1e3:.2f} ms -> "
        f"{load_after_s * 1e3:.2f} ms"
    )
    assert speedup >= _MIN_SPEEDUP, (
        f"hot tier only {speedup:.1f}x faster than the cold path"
    )
    assert report.batches_after == 1 < batches_before
