"""Store round-trip: cold pcap parsing vs warm shard loading.

Not a paper artifact — this times the connection-record store's whole
point: a same-parameter ``run_study`` backed by a populated store must
rebuild its tables from shards several times faster than the cold
generate-and-parse path, while producing identical output.

Run via ``make store-bench``.
"""

from __future__ import annotations

import time

from repro.core.study import run_study
from repro.store import ConnStore

_PARAMS = dict(seed=7, scale=0.004, datasets=("D0", "D1"), max_windows=6)

#: The acceptance floor: warm must beat cold by at least this factor.
_MIN_SPEEDUP = 3.0


def test_warm_cache_speedup(tmp_path, emit):
    root = tmp_path / "store"

    t0 = time.perf_counter()
    cold = run_study(store_dir=str(root), **_PARAMS)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = run_study(store_dir=str(root), **_PARAMS)
    warm_s = time.perf_counter() - t0

    for number in (1, 2, 3, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15):
        assert warm.render_table(number) == cold.render_table(number), number
    for number in range(1, 11):
        assert warm.render_figure(number) == cold.render_figure(number), number

    speedup = cold_s / warm_s
    stats = ConnStore(root).stats()
    emit(
        "store round-trip (generate+parse vs shard load)\n"
        f"  datasets          {', '.join(_PARAMS['datasets'])}"
        f"  (scale {_PARAMS['scale']}, {_PARAMS['max_windows']} windows)\n"
        f"  cold study        {cold_s:8.3f} s\n"
        f"  warm study        {warm_s:8.3f} s\n"
        f"  speedup           {speedup:8.1f} x  (floor {_MIN_SPEEDUP:.0f}x)\n"
        f"  store             {stats['objects']} shards, {stats['bytes']} bytes"
    )
    assert speedup >= _MIN_SPEEDUP, (
        f"warm cache only {speedup:.1f}x faster than cold parse"
    )


def test_shard_load_microbench(tmp_path, benchmark):
    """Time one warm dataset load (shard decode, no pcap I/O)."""
    root = tmp_path / "store"
    run_study(seed=7, scale=0.004, datasets=("D0",), max_windows=4,
              store_dir=str(root))
    store = ConnStore(root)
    manifest = next(iter(store.manifests()))
    cached = benchmark(lambda: store.load_analysis(manifest))
    assert cached.analysis.conns
