"""Benches for email (Table 8, Figures 5-6) and name services (§5.1.3)."""

from repro.proto.dns import RCODE_NOERROR, RCODE_NXDOMAIN
from repro.report import tables
from repro.report.figures import figure5, figure6


class TestTable8:
    def test_table8(self, study, benchmark, emit):
        table = benchmark(lambda: tables.table8(study.analyses))
        emit(table.render())
        for name, analysis in study.analyses.items():
            report = analysis.analyzer_results["email"]
            if report.total_bytes() > 100_000:
                # SMTP + IMAP(/S) carry >=94% of email bytes (paper).
                assert report.dominant_fraction() > 0.85, name
        # The IMAP -> IMAP/S policy change: cleartext IMAP4 collapses
        # after D0 (216MB -> ~2MB in the paper).
        d0 = study.analyses["D0"].analyzer_results["email"]
        d1 = study.analyses["D1"].analyzer_results["email"]
        if d0.protocol_bytes("IMAP4"):
            assert d1.protocol_bytes("IMAP4") < 0.3 * d0.protocol_bytes("IMAP4")
        # Mail-subnet vantage (D0-D2) carries more email than D3-D4.
        d3 = study.analyses["D3"].analyzer_results["email"]
        assert d1.total_bytes() > d3.total_bytes()


class TestFigure5:
    def test_figure5(self, study, benchmark, emit):
        smtp_fig, imaps_fig = benchmark(lambda: figure5(study.analyses))
        emit(
            smtp_fig.render() + "\n\n" + imaps_fig.render()
            + "\n\n" + smtp_fig.render_plot() + "\n\n" + imaps_fig.render_plot()
        )
        for name in ("D0", "D1", "D2"):
            report = study.analyses[name].analyzer_results["email"]
            ent = report.duration_cdf("SMTP", "ent")
            wan = report.duration_cdf("SMTP", "wan")
            if len(ent) > 15 and len(wan) > 15:
                # WAN SMTP lasts ~an order of magnitude longer (>=3x here).
                assert wan.median > 3 * ent.median, name
        # Internal IMAP/S sessions live 1-2 orders longer than WAN ones.
        for name in ("D1", "D2"):
            report = study.analyses[name].analyzer_results["email"]
            ent = report.duration_cdf("SIMAP", "ent")
            wan = report.duration_cdf("SIMAP", "wan")
            if len(ent) > 15 and len(wan) > 15:
                assert ent.median > 10 * wan.median, name


class TestFigure6:
    def test_figure6(self, study, benchmark, emit):
        smtp_fig, imaps_fig = benchmark(lambda: figure6(study.analyses))
        emit(smtp_fig.render() + "\n\n" + imaps_fig.render())
        for name in ("D0", "D1", "D2"):
            report = study.analyses[name].analyzer_results["email"]
            for where in ("ent", "wan"):
                cdf = report.flow_size_cdf("SMTP", where)
                if len(cdf) > 20:
                    # Over ~95% of flows below 1 MB, with an upper tail.
                    assert cdf(1_000_000) > 0.9, (name, where)
                    assert cdf.max > 5 * cdf.median, (name, where)

    def test_smtp_success_rates(self, study, benchmark, emit):
        benchmark(lambda: [
            study.analyses[n].analyzer_results["email"].success.get("SMTP/ent")
            for n in ("D0", "D1", "D2")
        ])
        lines = []
        for name in ("D0", "D1", "D2"):
            report = study.analyses[name].analyzer_results["email"]
            ent = report.success.get("SMTP/ent")
            if ent and ent.total > 20:
                lines.append(f"{name}: internal SMTP pair success {ent.success_rate:.0%}")
                # Paper: internal SMTP succeeds 95-98%.
                assert ent.success_rate > 0.85, name
        emit("\n".join(lines))


class TestNameServices:
    def test_dns_findings(self, study, benchmark, emit):
        report = benchmark(
            lambda: study.analyses["D3"].analyzer_results["dns"]
        )
        lines = []
        side = report.internal
        total = sum(side.qtypes.values())
        lines.append(f"D3 internal DNS requests: {total}")
        lines.append(f"  qtypes: {dict(side.qtypes)}")
        lines.append(f"  NOERROR {side.rcode_fraction(RCODE_NOERROR):.0%} "
                     f"NXDOMAIN {side.rcode_fraction(RCODE_NXDOMAIN):.0%}")
        # A majority (50-66%), AAAA surprisingly high (17-25%), then PTR, MX.
        assert side.qtype_fraction("A") > side.qtype_fraction("AAAA")
        assert side.qtype_fraction("AAAA") > side.qtype_fraction("MX")
        assert 0.10 < side.qtype_fraction("AAAA") < 0.35
        # Return codes: NOERROR 77-86%, NXDOMAIN 11-21%.
        assert 0.6 < side.rcode_fraction(RCODE_NOERROR) < 0.95
        assert 0.05 < side.rcode_fraction(RCODE_NXDOMAIN) < 0.30
        # Latency: ~0.4 ms internal vs ~20 ms off-site.
        ent_lat = side.latency_cdf()
        wan_lat = report.wan.latency_cdf()
        if len(ent_lat) > 20 and len(wan_lat) > 20:
            lines.append(f"  latency median ent={ent_lat.median*1000:.2f}ms "
                         f"wan={wan_lat.median*1000:.1f}ms")
            assert wan_lat.median > 10 * ent_lat.median
        emit("\n".join(lines))

    def test_netbios_findings(self, study, benchmark, emit):
        report = benchmark(
            lambda: study.analyses["D3"].analyzer_results["netbios"]
        )
        lines = [
            f"D3 Netbios/NS requests: {report.requests}",
            f"  types: {dict(report.request_types)}",
            f"  name types: {dict(report.name_types)}",
            f"  distinct-query failure rate: {report.distinct_query_failure_rate():.0%}",
            f"  top-10 client share: {report.top_clients_share(10):.0%}",
        ]
        # Queries 81-85%, refresh 12-15%.
        assert 0.7 < report.request_type_fraction("query") < 0.95
        assert 0.05 < report.request_type_fraction("refresh") < 0.25
        # Workstation/server names 63-71%, domain/browser 22-32%.
        assert report.name_type_fraction("host") > report.name_type_fraction("domain")
        # The headline: 36-50% of distinct queries fail (stale names).
        assert 0.25 < report.distinct_query_failure_rate() < 0.60
        # Requests spread across clients: top ten < ~40%.
        assert report.top_clients_share(10) < 0.6
        emit("\n".join(lines))

    def test_nbns_fails_more_than_dns(self, study, benchmark, emit):
        """Netbios/NS fails 2-3x more often than DNS (§5.1.3)."""
        dns_report = study.analyses["D3"].analyzer_results["dns"]
        nbns_report = study.analyses["D3"].analyzer_results["netbios"]
        dns_fail = dns_report.internal.rcode_fraction(RCODE_NXDOMAIN)
        nbns_fail = benchmark(nbns_report.distinct_query_failure_rate)
        emit(f"DNS NXDOMAIN {dns_fail:.0%} vs NBNS distinct-query failures {nbns_fail:.0%}")
        assert nbns_fail > 1.5 * dns_fail

    def test_dns_clients_led_by_smtp_servers(self, study, benchmark, emit):
        """A few clients (the main SMTP servers) issue most DNS requests."""
        report = study.analyses["D0"].analyzer_results["dns"]
        share = benchmark(lambda: report.top_client_share(2))
        emit(f"D0 top-2 DNS clients issue {share:.0%} of requests")
        assert share > 0.15
