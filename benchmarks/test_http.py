"""Benches for the HTTP analyses: Tables 6-7, Figures 3-4 (§5.1.1)."""

from repro.analysis.analyzers.http import AUTO_CLASSES
from repro.report import tables
from repro.report.figures import figure3, figure4

_FULL = ("D0", "D3", "D4")


class TestTable6:
    def test_table6(self, study, benchmark, emit):
        table = benchmark(lambda: tables.table6(study.analyses))
        emit(table.render())
        for name in _FULL:
            report = study.analyses[name].analyzer_results["http"]
            req_share = sum(report.auto_request_fraction(k) for k in AUTO_CLASSES)
            byte_share = sum(report.auto_bytes_fraction(k) for k in AUTO_CLASSES)
            # Paper: automated clients are 34-58% of internal requests and
            # 59-96% of internal bytes.
            assert 0.2 < req_share < 0.95, name
            assert byte_share > 0.35, name
        # The D3 scanning campaign (scan1 45% of D3 requests).
        d3 = study.analyses["D3"].analyzer_results["http"]
        assert d3.auto_request_fraction("scan1") > 0.15
        # Google bots dominate automated *bytes* wherever they crawl.
        d0 = study.analyses["D0"].analyzer_results["http"]
        google_bytes = d0.auto_bytes_fraction("google1") + d0.auto_bytes_fraction("google2")
        assert google_bytes > d0.auto_bytes_fraction("scan1")


class TestTable7:
    def test_table7(self, study, benchmark, emit):
        table = benchmark(lambda: tables.table7(study.analyses))
        emit(table.render())
        for name in _FULL:
            report = study.analyses[name].analyzer_results["http"]
            for side in (report.internal, report.wan):
                if side.requests < 120:
                    continue  # too few user requests for a stable mix
                # image outnumbers text in requests; application carries
                # the most bytes (Table 7's consistent pattern).
                assert side.content_fraction("image") > side.content_fraction("text")
                assert side.content_fraction("application", by="bytes") >= max(
                    side.content_fraction("text", by="bytes") - 0.15, 0
                )


class TestFigure3:
    def test_figure3(self, study, benchmark, emit):
        figure = benchmark(lambda: figure3(study.analyses))
        emit(figure.render())
        ent_all = []
        wan_all = []
        for name in _FULL:
            report = study.analyses[name].analyzer_results["http"]
            ent = report.fanout_cdf("ent")
            wan = report.fanout_cdf("wan")
            ent_all.extend(ent.samples())
            wan_all.extend(wan.samples())
            # Per dataset, WAN fan-out never loses; D0's ten-minute
            # windows leave too few browse sessions for a stable ratio.
            if len(ent) >= 30 and len(wan) >= 30:
                ent_mean = sum(ent.samples()) / len(ent)
                wan_mean = sum(wan.samples()) / len(wan)
                assert wan_mean >= ent_mean, name
        # Aggregated, clients visit several times more external servers
        # (the paper's "roughly an order of magnitude").
        assert wan_all and ent_all
        assert (sum(wan_all) / len(wan_all)) > 2 * (sum(ent_all) / len(ent_all))


class TestFigure4:
    def test_figure4(self, study, benchmark, emit):
        figure = benchmark(lambda: figure4(study.analyses))
        emit(figure.render() + "\n\n" + figure.render_plot())
        for name in _FULL:
            report = study.analyses[name].analyzer_results["http"]
            ent = report.reply_size_cdf("ent")
            wan = report.reply_size_cdf("wan")
            if len(ent) > 20 and len(wan) > 20:
                # No significant internal/WAN difference: medians within 4x.
                ratio = max(ent.median, wan.median) / max(min(ent.median, wan.median), 1)
                assert ratio < 4, name
                # Heavy upper tail: p99 well above the median.
                assert wan.quantile(0.99) > 10 * wan.median, name


class TestHttpFindings:
    def test_conditional_get_heavier_internally(self, study, benchmark, emit):
        benchmark(lambda: [
            study.analyses[n].analyzer_results["http"].conditional_fraction("ent")
            for n in _FULL
        ])
        lines = []
        for name in _FULL:
            report = study.analyses[name].analyzer_results["http"]
            ent = report.conditional_fraction("ent")
            wan = report.conditional_fraction("wan")
            lines.append(f"{name}: conditional GET ent={ent:.0%} wan={wan:.0%}")
            if report.internal.requests > 50 and report.wan.requests > 50:
                # Paper: 29-53% internally vs 12-21% across the WAN.
                assert ent > wan, name
                # Conditional requests carry few data bytes (1-9%).
                assert report.conditional_bytes_fraction("ent") < 0.25, name
        emit("\n".join(lines))

    def test_connection_success_rates(self, study, benchmark, emit):
        benchmark(lambda: [
            study.analyses[n].analyzer_results["http"].success_internal.success_rate
            for n in _FULL
        ])
        lines = []
        for name in _FULL:
            report = study.analyses[name].analyzer_results["http"]
            ent = report.success_internal
            wan = report.success_wan
            lines.append(
                f"{name}: success ent={ent.success_rate:.0%} ({ent.total} pairs) "
                f"wan={wan.success_rate:.0%} ({wan.total} pairs)"
            )
            if ent.total > 30 and wan.total > 30:
                # Paper: internal 72-92% vs WAN 95-99%.
                assert wan.success_rate > ent.success_rate, name
                assert 0.6 < ent.success_rate < 0.97, name
        emit("\n".join(lines))

    def test_request_success_over_90pct(self, study, benchmark, emit):
        report = study.analyses["D0"].analyzer_results["http"]
        frac = benchmark(lambda: report.request_success_fraction("ent"))
        emit(f"D0 internal HTTP request success: {frac:.1%}")
        assert frac > 0.85

    def test_web_session_object_counts(self, study, benchmark, emit):
        """§5.1.1: about half the web sessions consist of one object;
        10-20% include 10 or more."""
        counts = []
        for name in _FULL:
            counts.extend(
                study.analyses[name].analyzer_results["http"].session_object_counts
            )
        cdf = benchmark(lambda: study.analyses["D4"].analyzer_results["http"].session_objects_cdf())
        from repro.util.stats import Cdf

        combined = Cdf(counts)
        one = combined(1)
        ten_plus = 1.0 - combined(9)
        emit(f"web sessions with 1 object: {one:.0%}; with >=10 objects: {ten_plus:.0%} (n={len(combined)})")
        if len(combined) > 200:
            assert 0.3 < one < 0.7
            assert 0.03 < ten_plus < 0.30

    def test_https_short_connection_artifact(self, study, benchmark, emit):
        """The D4 host-pair with hundreds of short TLS connections."""
        report = study.analyses["D4"].analyzer_results["http"]
        top_pair, count = benchmark(lambda: report.https_pair_conns.most_common(1))[0]
        emit(f"busiest D4 HTTPS pair: {count} connections")
        assert count >= 3
        assert report.https_handshakes_ok > 0
