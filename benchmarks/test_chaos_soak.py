"""Crash-point soak: kill runs mid-publication, resume, compare digests.

Not a paper artifact — this drives whole CLI studies under the seeded
chaos fault plane (``repro.chaos``), kills them at scheduled I/O points
(mid-shard-publication, mid-checkpoint), then resumes against the same
store with honest I/O and asserts the resumed study's stdout is
**byte-identical** to a clean run's — at ``--jobs 1`` and ``--jobs 4``.
A post-soak ``store gc`` + scrub must come back clean: crashes may
strand temp files, but never corrupt published state.

Run via ``make chaos-soak``.  CI runs it as the chaos smoke job.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.chaos import CHAOS_ENV, FaultKind, FaultPlane, FaultRule
from repro.chaos.faults import CRASH_EXIT_CODE
from repro.core.cli import main as cli_main
from repro.store import ConnStore, StoreScrubber

_REPO = Path(__file__).resolve().parent.parent

#: One fixed seed for the whole soak: the acceptance bar is determinism.
_SEED = 7
_STUDY = [
    "--seed", str(_SEED), "--scale", "0.004", "--datasets", "D0",
    "--max-windows", "2", "--error-policy", "tolerant",
    "--tables", "2", "--figures",
]
_STREAM = ["stream"] + _STUDY + ["--checkpoint-every", "300"]


def _run(args: list[str], plane: FaultPlane | None = None):
    env = dict(os.environ, PYTHONPATH="src")
    env.pop(CHAOS_ENV, None)
    if plane is not None:
        env[CHAOS_ENV] = plane.to_env()
    return subprocess.run(
        [sys.executable, "-m", "repro.core.cli", *args],
        env=env, cwd=_REPO, capture_output=True, text=True, timeout=600,
    )


def _crash_on_first_shard() -> FaultPlane:
    """Kill the process (exit 137) at the first shard-object publication."""
    return FaultPlane(
        seed=_SEED,
        rules=[FaultRule(FaultKind.CRASH, op="publish", path="*.rcs", at=(1,))],
    )


def _assert_store_scrubs_clean(root: Path) -> None:
    """The crashed-and-resumed store holds only verifiable state."""
    store = ConnStore(root)
    # The daemon is dead by now: disable the in-flight grace so even
    # seconds-old kill debris is swept, then verify nothing remains.
    store.gc(tmp_grace_s=0.0)
    report = StoreScrubber(store).scrub(tmp_grace_s=0.0)
    assert report.ok, report.render()
    assert report.stale_tmp == 0


@pytest.fixture(scope="module")
def clean_stdout():
    """The reference output every resumed run must reproduce exactly."""
    proc = _run(_STUDY + ["--jobs", "1"])
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_kill_mid_publication_then_resume_jobs_1(tmp_path, clean_stdout, emit):
    store = tmp_path / "store"
    crashed = _run(_STUDY + ["--jobs", "1", "--store-dir", str(store)],
                   plane=_crash_on_first_shard())
    assert crashed.returncode == CRASH_EXIT_CODE
    resumed = _run(_STUDY + ["--jobs", "1", "--store-dir", str(store)])
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout == clean_stdout
    _assert_store_scrubs_clean(store)
    emit(
        "chaos soak: --jobs 1 killed mid-publication (exit "
        f"{crashed.returncode}); resumed stdout byte-identical, store clean"
    )


def test_worker_crashes_poison_unit_then_resume_jobs_4(
    tmp_path, clean_stdout, emit
):
    """At --jobs 4 the crash lands in a forked worker: the scheduler
    quarantines the poison unit (3 dead workers) instead of retrying
    forever, the tolerant run still completes, and a chaos-free rerun
    against the same store matches the clean digest byte for byte."""
    store = tmp_path / "store"
    crashed = _run(_STUDY + ["--jobs", "4", "--store-dir", str(store)],
                   plane=_crash_on_first_shard())
    assert crashed.returncode == 0, crashed.stderr  # tolerant: quarantined
    assert "poison unit quarantined" in crashed.stdout
    resumed = _run(_STUDY + ["--jobs", "4", "--store-dir", str(store)])
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout == clean_stdout
    _assert_store_scrubs_clean(store)
    emit(
        "chaos soak: --jobs 4 poison unit quarantined after 3 worker "
        "kills; resumed stdout byte-identical, store clean"
    )


def test_enospc_during_soak_is_absorbed_and_accounted(tmp_path, clean_stdout):
    """The write-fault leg: a full disk at first publication degrades
    the tolerant run (io_error row), never the results."""
    store = tmp_path / "store"
    plane = FaultPlane(
        seed=_SEED,
        rules=[FaultRule(FaultKind.ENOSPC, op="publish", path="*.rcs", at=(1,))],
    )
    faulted = _run(_STUDY + ["--jobs", "1", "--store-dir", str(store)],
                   plane=plane)
    assert faulted.returncode == 0, faulted.stderr
    assert "errors: io_error" in faulted.stdout
    resumed = _run(_STUDY + ["--jobs", "1", "--store-dir", str(store)])
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout == clean_stdout
    _assert_store_scrubs_clean(store)


def test_kill_mid_checkpoint_then_resume_stream(tmp_path, emit):
    """Kill the streaming engine at checkpoint publication; the resumed
    run picks up from the last durable checkpoint (or trace start) and
    renders the same bytes as an uninterrupted stream run."""
    clean = _run(_STREAM + ["--jobs", "1"])
    assert clean.returncode == 0, clean.stderr
    store = tmp_path / "store"
    plane = FaultPlane(
        seed=_SEED,
        rules=[FaultRule(FaultKind.CRASH, op="publish", path="*ckpt-*", at=(1,))],
    )
    crashed = _run(_STREAM + ["--jobs", "1", "--store-dir", str(store)],
                   plane=plane)
    assert crashed.returncode == CRASH_EXIT_CODE
    resumed = _run(_STREAM + ["--jobs", "1", "--store-dir", str(store)])
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout == clean.stdout
    _assert_store_scrubs_clean(store)
    emit(
        "chaos soak: stream run killed mid-checkpoint; resumed stdout "
        "byte-identical, store clean"
    )


def test_cli_scrub_passes_on_a_soaked_store(tmp_path):
    """The CI smoke contract in one test: ≥1 crash + ≥1 write fault,
    then ``store gc`` and ``repro store scrub`` assert a clean store."""
    store = tmp_path / "store"
    # Write-fault pass: ENOSPC degrades the run, store stays unpopulated
    # (a tolerant save aborts at the first failed object publication).
    enospc = FaultPlane(
        seed=_SEED,
        rules=[FaultRule(FaultKind.ENOSPC, op="publish", path="*.rcs", at=(1,))],
    )
    faulted = _run(_STUDY + ["--jobs", "1", "--store-dir", str(store)],
                   plane=enospc)
    assert faulted.returncode == 0, faulted.stderr
    # Crash pass against the same store: killed mid-publication.
    crashed = _run(_STUDY + ["--jobs", "1", "--store-dir", str(store)],
                   plane=_crash_on_first_shard())
    assert crashed.returncode == CRASH_EXIT_CODE
    resumed = _run(_STUDY + ["--jobs", "1", "--store-dir", str(store)])
    assert resumed.returncode == 0, resumed.stderr
    at = ["--store-dir", str(store)]
    assert cli_main(["store", "gc"] + at) == 0
    assert cli_main(["store", "scrub"] + at) == 0
