"""Batch vs streaming engine: throughput and peak memory (``make stream-bench``).

Not a paper artifact — this measures the resource claim the streaming
engine makes (``docs/streaming.md``): same products, peak memory bounded
by the live-flow population instead of the trace size.  Two synthetic
traces (4x apart in size, identical live-flow population) are pushed
through both engines; wall clock and ``tracemalloc`` peaks land in
``BENCH_stream.json``.  The sub-linearity bar: quadrupling the trace
must not double the streaming engine's peak, while the batch engine's
peak tracks the trace size.
"""

from __future__ import annotations

import json
import time
import tracemalloc

from repro.analysis.engine import DatasetAnalyzer
from repro.net.packet import make_udp_packet
from repro.pcap.writer import PcapWriter
from repro.stream.engine import StreamDatasetAnalyzer

_PAYLOAD = b"b" * 400
_HOSTS = 100  # constant live-flow population in both traces


def _write_trace(path, packets):
    """Dense UDP traffic over a fixed pool of flows: the live-flow
    population is ``_HOSTS`` regardless of how long the trace runs."""
    with PcapWriter.open(path) as writer:
        for i in range(packets):
            src = 0x0A000001 + (i % _HOSTS)
            writer.write(
                make_udp_packet(
                    i * 0.01, 1, 2, src, 0x0A00FF01,
                    40000 + (i % _HOSTS), 9999, _PAYLOAD,
                )
            )
    return path.stat().st_size


def _measure(make_analyzer, path):
    """(wall seconds, tracemalloc peak bytes, connection count)."""

    def run():
        analyzer = make_analyzer()
        analyzer.process_pcap(path)
        return len(analyzer.finish().conns)

    start = time.perf_counter()
    conns = run()
    wall_s = time.perf_counter() - start
    tracemalloc.start()
    try:
        run()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return wall_s, peak, conns


class TestStreamScaling:
    def test_stream_peak_sublinear_in_trace_size(self, output_dir, tmp_path):
        sizes = {"small": 6_000, "large": 24_000}
        report = {"hosts": _HOSTS, "traces": {}}
        peaks = {}
        for label, packets in sizes.items():
            path = tmp_path / f"{label}.pcap"
            file_bytes = _write_trace(path, packets)
            entry = {"packets": packets, "file_bytes": file_bytes}
            for engine, factory in (
                ("batch", lambda: DatasetAnalyzer("BENCH", full_payload=False)),
                ("stream", lambda: StreamDatasetAnalyzer("BENCH", full_payload=False)),
            ):
                wall_s, peak, conns = _measure(factory, path)
                entry[engine] = {
                    "wall_s": round(wall_s, 4),
                    "pkts_per_s": round(packets / wall_s) if wall_s else None,
                    "peak_bytes": peak,
                }
                peaks[(engine, label)] = peak
                assert conns == _HOSTS
            report["traces"][label] = entry
        (output_dir / "BENCH_stream.json").write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"\nstream scaling: {json.dumps(report, indent=2, sort_keys=True)}")
        # Sub-linearity: 4x the packets, < 2x the streaming peak ...
        assert peaks[("stream", "large")] < 2 * peaks[("stream", "small")]
        # ... while the batch peak grows with the trace and dwarfs
        # streaming on the large one.
        assert peaks[("batch", "large")] > 2 * peaks[("batch", "small")]
        assert peaks[("stream", "large")] < peaks[("batch", "large")] / 4
