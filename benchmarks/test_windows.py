"""Benches for the Windows services analyses: Tables 9, 10, 11 (§5.2.1)."""

from repro.report import tables

_FULL = ("D0", "D3", "D4")


class TestTable9:
    def test_table9(self, study, benchmark, emit):
        table = benchmark(lambda: tables.table9(study.analyses))
        emit(table.render())
        for name in _FULL:
            report = study.analyses[name].analyzer_results["windows"]
            ssn = report.success.get("Netbios/SSN")
            cifs = report.success.get("CIFS")
            epm = report.success.get("Endpoint Mapper")
            if not (ssn and cifs and epm and min(ssn.total, cifs.total) > 15):
                continue
            # The paper's striking ordering: EPM (99-100%) > SSN (82-92%)
            # > CIFS (46-68%), with CIFS failures dominated by rejections
            # from 139-only servers probed on 445 in parallel.
            assert epm.success_rate >= ssn.success_rate > cifs.success_rate, name
            assert cifs.success_rate < 0.85, name
            assert cifs.rejected_rate > cifs.unanswered_rate, name

    def test_nbss_handshake_success(self, study, benchmark, emit):
        benchmark(lambda: [
            study.analyses[n].analyzer_results["windows"].nbss_handshake_success_rate()
            for n in _FULL
        ])
        lines = []
        for name in _FULL:
            report = study.analyses[name].analyzer_results["windows"]
            rate = report.nbss_handshake_success_rate()
            lines.append(f"{name}: NBSS handshake success {rate:.0%}")
            if report.nbss_pairs:
                # Paper: 89-99% across datasets.
                assert rate > 0.8, name
        emit("\n".join(lines))


class TestTable10:
    def test_table10(self, study, benchmark, emit):
        table = benchmark(lambda: tables.table10(study.analyses))
        emit(table.render())
        for name in _FULL:
            report = study.analyses[name].analyzer_results["windows"]
            if sum(report.cifs_requests.values()) < 50:
                continue
            # DCE/RPC pipes beat Windows File Sharing in message counts
            # everywhere (Table 10: 33-48% vs 11-27%)...
            assert report.cifs_request_fraction("RPC Pipes") > report.cifs_request_fraction(
                "Windows File Sharing"
            ), name
            # ... and in bytes at the print-server vantage (D3/D4: 64-77%
            # vs 8-17%; in D0 file sharing legitimately wins bytes 43-32).
            if name in ("D3", "D4"):
                assert report.cifs_bytes_fraction("RPC Pipes") > report.cifs_bytes_fraction(
                    "Windows File Sharing"
                ), name
            # SMB Basic is numerous but byte-light.
            assert report.cifs_request_fraction("SMB Basic") > report.cifs_bytes_fraction(
                "SMB Basic"
            ), name


class TestTable11:
    def test_table11(self, study, benchmark, emit):
        table = benchmark(lambda: tables.table11(study.analyses))
        emit(table.render())
        d0 = study.analyses["D0"].analyzer_results["windows"]
        d0_auth = d0.rpc_request_fraction("NetLogon") + d0.rpc_request_fraction("LsaRPC")
        d0_print = d0.rpc_request_fraction("Spoolss/WritePrinter") + d0.rpc_request_fraction("Spoolss/other")
        for name in ("D3", "D4"):
            report = study.analyses[name].analyzer_results["windows"]
            auth = report.rpc_request_fraction("NetLogon") + report.rpc_request_fraction("LsaRPC")
            printing = report.rpc_request_fraction("Spoolss/WritePrinter") + report.rpc_request_fraction("Spoolss/other")
            # Printing dominates the D3/D4 vantage (major print server).
            assert printing > auth, name
            # ... and WritePrinter owns the bytes (94-99% in the paper).
            assert report.rpc_bytes_fraction("Spoolss/WritePrinter") > 0.6, name
        # Authentication is far heavier at the D0 vantage than at D3/D4.
        d3 = study.analyses["D3"].analyzer_results["windows"]
        d3_auth = d3.rpc_request_fraction("NetLogon") + d3.rpc_request_fraction("LsaRPC")
        assert d0_auth > d3_auth

    def test_endpoint_mapper_learning(self, study, benchmark, emit):
        """Stand-alone DCE/RPC endpoints are discovered via EPM."""
        total = benchmark(lambda: sum(
            len(study.analyses[name].windows_endpoints) for name in _FULL
        ))
        emit(f"EPM-learned endpoints across full-payload datasets: {total}")
        assert total > 0
