"""Benches for §3's scan filter and §4's origins/locality (Figure 2)."""

from repro.analysis.conn import Locality
from repro.analysis.locality import fan_stats, origin_breakdown
from repro.analysis.scanfilter import filter_scanners
from repro.report.figures import figure2


class TestScanFilter:
    def test_scanfilter(self, study, benchmark, emit):
        lines = []
        for name, analysis in study.analyses.items():
            result = benchmark.pedantic(
                filter_scanners, args=(analysis.conns,), rounds=1, iterations=1,
            ) if name == "D0" else filter_scanners(analysis.conns)
            fraction = result.removed_fraction
            lines.append(
                f"{name}: {len(result.scanners)} scanners, "
                f"{result.removed} conns removed ({fraction:.1%})"
            )
            # Paper: 4-18% of connections removed (wider band at small scale).
            assert 0.01 < fraction < 0.30, name
        emit("\n".join(lines))

    def test_known_internal_scanners_found(self, study, benchmark, emit):
        from repro.gen.topology import Role

        scanner_ips = {h.ip for h in study.enterprise.servers(Role.SCANNER)}

        def overlap():
            found = set()
            for analysis in study.analyses.values():
                found |= analysis.scanner_sources & scanner_ips
            return found

        found = benchmark(overlap)
        emit(f"internal scanners detected: {len(found)} of {len(scanner_ips)}")
        assert found  # the heuristic independently rediscovers them


class TestOrigins:
    def test_origins(self, study, benchmark, emit):
        lines = []
        for name, analysis in study.analyses.items():
            conns = analysis.filtered_conns()
            breakdown = (
                benchmark(lambda: origin_breakdown(conns, analysis.internal_net))
                if name == "D0"
                else origin_breakdown(conns, analysis.internal_net)
            )
            row = {loc.value: f"{breakdown.fraction(loc):.1%}" for loc in Locality}
            lines.append(f"{name}: {row}")
            # Paper §4: 71-79% ent-ent; multicast visible; wan flows present.
            assert breakdown.fraction(Locality.ENT_ENT) > 0.55, name
            mcast = breakdown.fraction(Locality.MCAST_INT) + breakdown.fraction(
                Locality.MCAST_EXT
            )
            assert 0.02 < mcast < 0.35, name
        emit("\n".join(lines))


class TestFigure2:
    def test_figure2(self, study, benchmark, emit):
        fan_in, fan_out = benchmark(lambda: figure2(study.analyses))
        emit(fan_in.render() + "\n\n" + fan_out.render())
        for name in ("D2", "D3"):
            analysis = study.analyses[name]
            stats = fan_stats(analysis.filtered_conns(), analysis.internal_net)
            # Hosts have more enterprise peers than WAN peers.
            assert stats.fan_out_ent.n > stats.fan_out_wan.n, name
            # >90% of hosts talk to at most a couple dozen peers ...
            assert stats.fan_out_ent.quantile(0.9) <= 40, name
            # ... but the tail reaches scores-to-hundreds (SrvLoc bursts,
            # busy servers).
            assert stats.fan_out_ent.max >= 50, name
            # A sizable share of hosts have only internal peers.
            assert stats.only_internal_fan_out > 0.4, name
