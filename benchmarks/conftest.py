"""Benchmark fixtures: one full-schedule study shared by every bench.

The study (all five datasets, full tap schedules) is generated and
analyzed once per benchmark session at ``REPRO_BENCH_SCALE`` of the
paper's traffic volume, then each benchmark regenerates its table or
figure from the analysis products, prints the same rows/series the paper
reports, and asserts the shape criteria recorded in
``repro.core.experiments``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.study import run_study

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.01"))
_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))

_OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def study():
    """The full five-dataset study."""
    return run_study(seed=_SEED, scale=_SCALE)


@pytest.fixture(scope="session")
def output_dir() -> Path:
    _OUTPUT_DIR.mkdir(exist_ok=True)
    return _OUTPUT_DIR


@pytest.fixture()
def emit(output_dir, request):
    """Print a rendered artifact and persist it under benchmarks/output/."""

    def _emit(text: str) -> None:
        print()
        print(text)
        path = output_dir / f"{request.node.name}.txt"
        path.write_text(text + "\n")

    return _emit
