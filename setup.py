"""Legacy setuptools shim.

Kept so ``pip install -e .`` works in offline environments that lack the
``wheel`` package required by PEP-517 editable installs; all metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
